"""CLI entry-point tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["shell", "--root", "/tmp/x", "-c", "pwd"])
    assert args.command == "shell"
    args = parser.parse_args(["server", "--root", "/tmp/x", "--port", "0"])
    assert args.command == "server"
    args = parser.parse_args(["bench", "fig11", "--rows", "128"])
    assert args.figure == "fig11" and args.rows == 128


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_shell_one_shot_command(tmp_path, capsys):
    root = tmp_path / "dpfs"
    rc = main(["shell", "--root", str(root), "-c", "mkdir /made"])
    assert rc == 0
    rc = main(["shell", "--root", str(root), "-c", "ls /"])
    assert rc == 0
    assert "made/" in capsys.readouterr().out


def test_shell_one_shot_error(tmp_path, capsys):
    rc = main(["shell", "--root", str(tmp_path / "d"), "-c", "rm /ghost"])
    assert rc == 1
    assert "error" in capsys.readouterr().err


def test_bench_small_fig13(capsys):
    rc = main(["bench", "fig13", "--rows", "256", "--cols", "1024"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 13" in out
    assert "greedy" in out and "round_robin" in out


def test_bench_small_fig11(capsys):
    rc = main(["bench", "fig11", "--rows", "256", "--cols", "2048"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Combined Multi-dim" in out
    assert "Class 1" in out and "Class 3" in out


def test_stats_subcommand(capsys):
    rc = main(["stats", "--size", "32768", "--servers", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    # Prometheus text populated by a real roundtrip over the TCP backend
    assert "# == client metrics ==" in out
    assert "# TYPE dpfs_dispatch_requests_total counter" in out
    assert 'dpfs_net_requests_total{op="write"}' in out
    assert "dpfs_cache_hits_total 8" in out  # second read hits all 8 bricks
    # both ephemeral servers report their own registries
    assert out.count("# == server dpfs://") == 2
    assert "dpfs_server_requests_total" in out


def test_trace_subcommand(capsys):
    rc = main(["trace", "--size", "32768", "--servers", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "handle.write" in out
    assert "handle.read" in out
    for phase in ("combine.plan", "dispatch.batch", "dispatch.request",
                  "net.rpc", "cache.lookup"):
        assert phase in out, f"missing span {phase}"
    assert "queue_wait_s=" in out and "service_s=" in out
    # server span log lines carry rids that appear in the client traces
    assert "# server span log (rid-matched)" in out
    log_lines = [ln for ln in out.splitlines() if "rid=" in ln and "server." in ln]
    assert log_lines, "no rid-matched server spans printed"
    for line in log_lines:
        rid = line.split("rid=")[1].split()[0]
        assert f"trace {rid}" in out


def test_parser_stats_trace_options():
    parser = build_parser()
    args = parser.parse_args(["stats", "--connect", "h1:7001", "h2:7002"])
    assert args.command == "stats"
    assert args.connect == ["h1:7001", "h2:7002"]
    args = parser.parse_args(["trace", "--size", "1024", "--cache-kib", "0"])
    assert args.command == "trace" and args.size == 1024


def test_fsck_subcommand(tmp_path, capsys):
    root = tmp_path / "dpfs"
    assert main(["shell", "--root", str(root), "-c", "mkdir /d"]) == 0
    capsys.readouterr()
    assert main(["fsck", "--root", str(root)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
    # introduce an orphan subfile, fsck non-zero, repair fixes it
    (root / "server_0" / "stray").write_bytes(b"junk")
    assert main(["fsck", "--root", str(root)]) == 1
    capsys.readouterr()
    assert main(["fsck", "--root", str(root), "--repair"]) == 0
    assert main(["fsck", "--root", str(root)]) == 0


def _make_replicated(root, data):
    from repro.core import DPFS, Hint

    fs = DPFS.local(root, n_servers=4)
    fs.write_file(
        "/f", data, Hint.linear(file_size=len(data), brick_size=4096, replicas=2)
    )
    fs.close()


def test_scrub_subcommand(tmp_path, capsys):
    from repro.backends.local import escape_subfile_name

    root = tmp_path / "dpfs"
    data = bytes(range(256)) * 64  # 4 bricks
    _make_replicated(root, data)
    assert main(["scrub", "--root", str(root)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out

    # garble one whole replica subfile: findings remain -> nonzero;
    # --repair rewrites every bad copy from the primaries -> zero
    rname = escape_subfile_name("/f//r")
    victim = next(
        p
        for i in range(4)
        for p in [(root / f"server_{i}" / rname)]
        if p.exists() and p.stat().st_size > 0
    )
    victim.write_bytes(b"\xaa" * victim.stat().st_size)
    assert main(["scrub", "--root", str(root)]) == 1
    capsys.readouterr()
    assert main(["scrub", "--root", str(root), "--repair"]) == 0
    assert "checksum-mismatch" in capsys.readouterr().out
    assert main(["scrub", "--root", str(root)]) == 0
    assert main(["fsck", "--root", str(root)]) == 0


def _crash_mid_rename(root):
    """Leave a half-renamed file + pending intent behind, like a dead
    client would."""
    from repro.core import DPFS, Hint
    from repro.core.crashpoints import SimulatedCrash, arm, disarm

    data = bytes(range(256)) * 16
    fs = DPFS.local(root, n_servers=4, io_workers=1)
    fs.write_file(
        "/f", data, Hint.linear(file_size=len(data), brick_size=1024)
    )
    arm("filesystem.rename.after_metadata")
    try:
        try:
            fs.rename("/f", "/g")
        except SimulatedCrash:
            pass
        else:  # pragma: no cover - arming failed
            raise AssertionError("crash point never fired")
    finally:
        disarm()
        fs.db.close()
        fs.dispatcher.shutdown()
    return data


def test_recover_subcommand_and_json_reports(tmp_path, capsys):
    import json

    root = tmp_path / "dpfs"
    data = _crash_mid_rename(root)

    # fsck --json surfaces the pending intent and exits nonzero
    assert main(["fsck", "--root", str(root), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["tool"] == "fsck" and not report["clean"]
    assert any(f["kind"] == "pending-intent" for f in report["findings"])

    # scrub --json reports it too (report-only)
    assert main(["scrub", "--root", str(root), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert any(f["kind"] == "pending-intent" for f in report["findings"])

    # recover rolls the rename forward and exits zero
    assert main(["recover", "--root", str(root), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["tool"] == "recover" and report["clean"]
    (action,) = report["actions"]
    assert action["op"] == "rename" and action["direction"] == "forward"
    assert action["ok"]

    # everything is clean afterwards and the file lives under /g
    assert main(["fsck", "--root", str(root), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["clean"]
    assert main(["scrub", "--root", str(root)]) == 0
    capsys.readouterr()

    from repro.core import DPFS

    fs = DPFS.local(root, n_servers=4)
    assert not fs.exists("/f")
    assert fs.read_file("/g") == data
    fs.close()


def test_recover_subcommand_plain_output_when_idle(tmp_path, capsys):
    root = tmp_path / "dpfs"
    assert main(["shell", "--root", str(root), "-c", "mkdir /d"]) == 0
    capsys.readouterr()
    assert main(["recover", "--root", str(root)]) == 0
    assert "0 pending intent(s)" in capsys.readouterr().out


def test_fsck_repair_exits_nonzero_when_findings_remain(tmp_path, capsys):
    from repro.metadb import Database

    root = tmp_path / "dpfs"
    data = bytes(range(256)) * 64
    _make_replicated(root, data)
    # break the brick map beyond repair: drop one distribution row
    db = Database(root / "dpfs.meta")
    name = db.execute(
        "SELECT server_name FROM dpfs_file_distribution "
        "WHERE filename = '/f' LIMIT 1"
    ).scalar()
    db.execute(
        "DELETE FROM dpfs_file_distribution WHERE filename = '/f' "
        "AND server_name = ?",
        [name],
    )
    db.close()
    assert main(["fsck", "--root", str(root)]) == 1
    capsys.readouterr()
    # --repair cannot fix a bad brick map; the exit code must say so
    assert main(["fsck", "--root", str(root), "--repair"]) == 1
    assert "bad-brick-map" in capsys.readouterr().out
