"""CLI entry-point tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["shell", "--root", "/tmp/x", "-c", "pwd"])
    assert args.command == "shell"
    args = parser.parse_args(["server", "--root", "/tmp/x", "--port", "0"])
    assert args.command == "server"
    args = parser.parse_args(["bench", "fig11", "--rows", "128"])
    assert args.figure == "fig11" and args.rows == 128


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_shell_one_shot_command(tmp_path, capsys):
    root = tmp_path / "dpfs"
    rc = main(["shell", "--root", str(root), "-c", "mkdir /made"])
    assert rc == 0
    rc = main(["shell", "--root", str(root), "-c", "ls /"])
    assert rc == 0
    assert "made/" in capsys.readouterr().out


def test_shell_one_shot_error(tmp_path, capsys):
    rc = main(["shell", "--root", str(tmp_path / "d"), "-c", "rm /ghost"])
    assert rc == 1
    assert "error" in capsys.readouterr().err


def test_bench_small_fig13(capsys):
    rc = main(["bench", "fig13", "--rows", "256", "--cols", "1024"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 13" in out
    assert "greedy" in out and "round_robin" in out


def test_bench_small_fig11(capsys):
    rc = main(["bench", "fig11", "--rows", "256", "--cols", "2048"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Combined Multi-dim" in out
    assert "Class 1" in out and "Class 3" in out


def test_fsck_subcommand(tmp_path, capsys):
    root = tmp_path / "dpfs"
    assert main(["shell", "--root", str(root), "-c", "mkdir /d"]) == 0
    capsys.readouterr()
    assert main(["fsck", "--root", str(root)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
    # introduce an orphan subfile, fsck non-zero, repair fixes it
    (root / "server_0" / "stray").write_bytes(b"junk")
    assert main(["fsck", "--root", str(root)]) == 1
    capsys.readouterr()
    assert main(["fsck", "--root", str(root), "--repair"]) == 0
    assert main(["fsck", "--root", str(root)]) == 0
