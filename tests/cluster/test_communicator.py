"""Mini-MPI runtime tests: collectives, point-to-point, failure handling."""

import numpy as np
import pytest

from repro.cluster import Communicator, ParallelError, run_parallel
from repro.core import DPFS, Hint
from repro.errors import DPFSError
from repro.hpf import decompose


def test_single_rank():
    assert run_parallel(lambda comm: comm.rank, 1) == [0]


def test_rank_and_size():
    results = run_parallel(lambda comm: (comm.rank, comm.size), 5)
    assert results == [(r, 5) for r in range(5)]


def test_bcast_from_each_root():
    def prog(comm):
        out = []
        for root in range(comm.size):
            value = f"from{root}" if comm.rank == root else None
            out.append(comm.bcast(value, root=root))
        return out

    results = run_parallel(prog, 3)
    for r in results:
        assert r == ["from0", "from1", "from2"]


def test_scatter_gather_roundtrip():
    def prog(comm):
        part = comm.scatter(
            [i * i for i in range(comm.size)] if comm.rank == 0 else None
        )
        return comm.gather(part + 1)

    results = run_parallel(prog, 4)
    assert results[0] == [1, 2, 5, 10]
    assert results[1] is None


def test_scatter_arity_checked():
    def prog(comm):
        return comm.scatter([1, 2] if comm.rank == 0 else None)

    with pytest.raises(ParallelError):
        run_parallel(prog, 3)


def test_allgather_and_allreduce():
    def prog(comm):
        everyone = comm.allgather(comm.rank)
        total = comm.allreduce(comm.rank)
        biggest = comm.allreduce(comm.rank, op=max)
        return everyone, total, biggest

    for everyone, total, biggest in run_parallel(prog, 6):
        assert everyone == list(range(6))
        assert total == 15
        assert biggest == 5


def test_repeated_collectives_no_crosstalk():
    """Back-to-back same-kind collectives must not mix values."""

    def prog(comm):
        outs = []
        for i in range(20):
            outs.append(comm.allgather((i, comm.rank)))
        return outs

    for rank_out in run_parallel(prog, 4):
        for i, row in enumerate(rank_out):
            assert row == [(i, r) for r in range(4)]


def test_send_recv_ring():
    def prog(comm):
        comm.send(f"token{comm.rank}", dest=(comm.rank + 1) % comm.size)
        return comm.recv(source=(comm.rank - 1) % comm.size, timeout=5)

    results = run_parallel(prog, 4)
    assert results == ["token3", "token0", "token1", "token2"]


def test_recv_filters_by_tag():
    def prog(comm):
        if comm.rank == 0:
            comm.send("a", dest=1, tag=7)
            comm.send("b", dest=1, tag=9)
            return None
        if comm.rank == 1:
            second = comm.recv(source=0, tag=9, timeout=5)
            first = comm.recv(source=0, tag=7, timeout=5)
            return (first, second)
        return None

    results = run_parallel(prog, 2)
    assert results[1] == ("a", "b")


def test_rank_failure_propagates():
    def prog(comm):
        if comm.rank == 2:
            raise ValueError("rank 2 exploded")
        comm.barrier()
        return "ok"

    with pytest.raises(ParallelError) as err:
        run_parallel(prog, 4)
    assert 2 in err.value.failures
    assert isinstance(err.value.failures[2], ValueError)


def test_invalid_nprocs():
    with pytest.raises(DPFSError):
        run_parallel(lambda comm: None, 0)


def test_parallel_dpfs_program():
    """A real SPMD program over DPFS: rank 0 scatters work, every rank
    writes its (BLOCK, *) piece, rank 0 validates the assembled file."""
    fs = DPFS.memory(4)
    shape = (32, 32)
    hint = Hint.multidim(shape, 8, (8, 8))
    expected = np.arange(32 * 32, dtype=np.float64).reshape(shape)

    def prog(comm, fs):
        regions = decompose(shape, "(BLOCK, *)", comm.size)
        if comm.rank == 0:
            with fs.open("/field", "w", hint=hint) as handle:
                handle.write_array((0, 0), np.zeros(shape))
            parts = [
                expected[r.starts[0] : r.stops[0], :] for r in regions
            ]
        else:
            parts = None
        mine = comm.scatter(parts)
        region = regions[comm.rank]
        with fs.open("/field", "r+", rank=comm.rank) as handle:
            handle.write_array(region.starts, mine)
        comm.barrier()
        if comm.rank == 0:
            with fs.open("/field", "r") as handle:
                got = handle.read_array((0, 0), shape, np.float64)
            return bool(np.array_equal(got, expected))
        return True

    assert all(run_parallel(prog, 8, fs))
