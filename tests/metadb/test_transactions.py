"""Transaction semantics: BEGIN/COMMIT/ROLLBACK, undo coverage, context
manager behaviour."""

import pytest

from repro.errors import ConstraintError, TransactionError
from repro.metadb import Database


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    d.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
    return d


def test_commit_persists(db):
    db.begin()
    db.execute("INSERT INTO t VALUES ('c', 3)")
    db.commit()
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 3


def test_rollback_insert(db):
    db.begin()
    db.execute("INSERT INTO t VALUES ('c', 3)")
    db.rollback()
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2


def test_rollback_update(db):
    db.begin()
    db.execute("UPDATE t SET v = 99")
    db.rollback()
    rows = db.execute("SELECT v FROM t ORDER BY k").rows
    assert [r["v"] for r in rows] == [1, 2]


def test_rollback_delete(db):
    db.begin()
    db.execute("DELETE FROM t")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0
    db.rollback()
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2


def test_rollback_create_table(db):
    db.begin()
    db.execute("CREATE TABLE fresh (x INTEGER)")
    db.rollback()
    assert "fresh" not in db.table_names()


def test_rollback_drop_table_restores_rows(db):
    db.begin()
    db.execute("DROP TABLE t")
    db.rollback()
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
    # unique index must be restored too
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO t VALUES ('a', 9)")


def test_rollback_mixed_operations_in_order(db):
    db.begin()
    db.execute("INSERT INTO t VALUES ('c', 3)")
    db.execute("UPDATE t SET v = v + 10 WHERE k = 'a'")
    db.execute("DELETE FROM t WHERE k = 'b'")
    db.rollback()
    rows = db.execute("SELECT k, v FROM t ORDER BY k").rows
    assert rows == [{"k": "a", "v": 1}, {"k": "b", "v": 2}]


def test_nested_begin_rejected(db):
    db.begin()
    with pytest.raises(TransactionError):
        db.begin()
    db.rollback()


def test_commit_without_begin_rejected(db):
    with pytest.raises(TransactionError):
        db.commit()


def test_rollback_without_begin_rejected(db):
    with pytest.raises(TransactionError):
        db.rollback()


def test_autocommit_failure_rolls_back_partial_multirow(db):
    # second row collides with PK 'a'; first row must not survive
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO t VALUES ('z', 9), ('a', 8)")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
    assert db.execute("SELECT v FROM t WHERE k = 'z'").scalar() is None


def test_transaction_context_commits(db):
    with db.transaction():
        db.execute("INSERT INTO t VALUES ('c', 3)")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 3


def test_transaction_context_rolls_back_on_error(db):
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("INSERT INTO t VALUES ('c', 3)")
            raise RuntimeError("abort")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
    assert not db.in_transaction


def test_nested_transaction_context_joins_outer(db):
    """A ``transaction()`` context opened inside another joins it: one
    atomic unit, committed (or rolled back) by the outermost context.
    This is what lets a metadata commit and the intent-journal mark of
    that commit share a single transaction even though each helper
    opens ``db.transaction()`` itself."""
    with db.transaction():
        db.execute("INSERT INTO t VALUES ('c', 3)")
        with db.transaction():
            db.execute("INSERT INTO t VALUES ('d', 4)")
        # inner exit must not have committed anything yet
        assert db.in_transaction
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 4


def test_nested_transaction_rolls_back_as_one_unit(db):
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("INSERT INTO t VALUES ('c', 3)")
            with db.transaction():
                db.execute("INSERT INTO t VALUES ('d', 4)")
            raise RuntimeError("abort after inner exit")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
    assert not db.in_transaction


def test_inner_transaction_failure_rolls_back_outer_work(db):
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("INSERT INTO t VALUES ('c', 3)")
            with db.transaction():
                db.execute("INSERT INTO t VALUES ('d', 4)")
                raise RuntimeError("abort inside inner")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
    assert not db.in_transaction


def test_reads_inside_transaction_see_own_writes(db):
    with db.transaction():
        db.execute("UPDATE t SET v = 100 WHERE k = 'a'")
        assert db.execute("SELECT v FROM t WHERE k = 'a'").scalar() == 100


def test_pk_free_after_rollback_of_delete_insert(db):
    db.begin()
    db.execute("DELETE FROM t WHERE k = 'a'")
    db.execute("INSERT INTO t VALUES ('a', 42)")
    db.rollback()
    assert db.execute("SELECT v FROM t WHERE k = 'a'").scalar() == 1
