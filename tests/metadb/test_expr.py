"""Unit tests for SQL expression evaluation (incl. NULL semantics)."""

import pytest

from repro.errors import MetaDBError, SchemaError
from repro.metadb import parse_expression
from repro.metadb.expr import evaluate, expr_columns, truthy


def ev(sql, row=None, params=()):
    return evaluate(parse_expression(sql), row or {}, params)


def test_arithmetic():
    assert ev("1 + 2 * 3") == 7
    assert ev("10 / 4") == 2.5
    assert ev("10 / 5") == 2          # exact integer division stays int
    assert ev("2 - 5") == -3
    assert ev("-(3)") == -3


def test_division_by_zero_rejected():
    with pytest.raises(MetaDBError):
        ev("1 / 0")


def test_comparisons_return_int_bool():
    assert ev("3 > 2") == 1
    assert ev("3 < 2") == 0
    assert ev("'abc' = 'abc'") == 1
    assert ev("2 >= 2") == 1
    assert ev("2 != 2") == 0


def test_column_reference():
    assert ev("v * 2", {"v": 21}) == 42


def test_unknown_column_rejected():
    with pytest.raises(SchemaError):
        ev("nope", {"v": 1})


def test_params_positional():
    assert ev("? + ?", params=[1, 2]) == 3


def test_missing_param_rejected():
    with pytest.raises(MetaDBError):
        ev("? + ?", params=[1])


def test_null_propagates_through_comparison():
    assert ev("v = 1", {"v": None}) is None
    assert ev("v + 1", {"v": None}) is None


def test_three_valued_and_or():
    # NULL AND FALSE = FALSE ; NULL AND TRUE = NULL
    assert ev("v = 1 AND 0 = 1", {"v": None}) == 0
    assert ev("v = 1 AND 1 = 1", {"v": None}) is None
    # NULL OR TRUE = TRUE ; NULL OR FALSE = NULL
    assert ev("v = 1 OR 1 = 1", {"v": None}) == 1
    assert ev("v = 1 OR 0 = 1", {"v": None}) is None


def test_not_semantics():
    assert ev("NOT 0") == 1
    assert ev("NOT 3") == 0
    assert ev("NOT v", {"v": None}) is None


def test_is_null():
    assert ev("v IS NULL", {"v": None}) == 1
    assert ev("v IS NOT NULL", {"v": None}) == 0
    assert ev("v IS NULL", {"v": 5}) == 0


def test_in_list():
    assert ev("v IN (1, 2, 3)", {"v": 2}) == 1
    assert ev("v IN (1, 2, 3)", {"v": 9}) == 0
    assert ev("v NOT IN (1, 2)", {"v": 9}) == 1
    assert ev("v IN (1, 2)", {"v": None}) is None


def test_like_patterns():
    assert ev("'hello' LIKE 'he%'") == 1
    assert ev("'hello' LIKE 'h_llo'") == 1
    assert ev("'hello' LIKE 'x%'") == 0
    assert ev("'hello' NOT LIKE 'x%'") == 1
    # regex metacharacters in the pattern are literal
    assert ev("'a.b' LIKE 'a.b'") == 1
    assert ev("'axb' LIKE 'a.b'") == 0


def test_concat():
    assert ev("'a' || 'b' || 1") == "ab1"
    assert ev("'a' || v", {"v": None}) is None


def test_truthy():
    assert truthy(1) and truthy("x") and truthy(2.5)
    assert not truthy(0) and not truthy(None) and not truthy("")


def test_expr_columns_collects_references():
    expr = parse_expression("a + b > c AND d IN (e, 1) AND f IS NULL")
    assert expr_columns(expr) == {"a", "b", "c", "d", "e", "f"}


def test_type_error_surfaces_as_metadb_error():
    with pytest.raises(MetaDBError):
        ev("'a' + 1")
    with pytest.raises(MetaDBError):
        ev("'a' < 1")
