"""Unit tests for the SQL parser (AST construction)."""

import pytest

from repro.errors import SQLSyntaxError
from repro.metadb import parse, parse_expression
from repro.metadb.ast_nodes import (
    Begin,
    Binary,
    ColumnRef,
    Commit,
    CreateTable,
    Delete,
    DropTable,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    Param,
    Rollback,
    Select,
    Unary,
    Update,
)


def test_create_table():
    stmt = parse(
        "CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER NOT NULL, "
        "w REAL DEFAULT 1.5, x JSON, y TEXT UNIQUE)"
    )
    assert isinstance(stmt, CreateTable)
    assert stmt.table == "t"
    names = [c.name for c in stmt.columns]
    assert names == ["k", "v", "w", "x", "y"]
    assert stmt.columns[0].primary_key
    assert stmt.columns[1].not_null
    assert stmt.columns[2].has_default and stmt.columns[2].default == 1.5
    assert stmt.columns[4].unique


def test_create_if_not_exists():
    stmt = parse("CREATE TABLE IF NOT EXISTS t (a INTEGER)")
    assert isinstance(stmt, CreateTable) and stmt.if_not_exists


def test_drop_table():
    stmt = parse("DROP TABLE IF EXISTS t")
    assert isinstance(stmt, DropTable) and stmt.if_exists


def test_insert_multi_row():
    stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (?, ?)")
    assert isinstance(stmt, Insert)
    assert stmt.columns == ("a", "b")
    assert len(stmt.rows) == 2
    assert stmt.rows[0] == (Literal(1), Literal("x"))
    assert stmt.rows[1] == (Param(0), Param(1))


def test_insert_without_columns():
    stmt = parse("INSERT INTO t VALUES (1, 2)")
    assert isinstance(stmt, Insert) and stmt.columns is None


def test_select_star():
    stmt = parse("SELECT * FROM t")
    assert isinstance(stmt, Select) and stmt.columns is None


def test_select_full_clause_set():
    stmt = parse(
        "SELECT a, b AS bee FROM t WHERE a > 1 AND b LIKE 'x%' "
        "ORDER BY a DESC, b LIMIT 5"
    )
    assert isinstance(stmt, Select)
    assert stmt.columns is not None and len(stmt.columns) == 2
    assert stmt.columns[1][1] == "bee"
    assert isinstance(stmt.where, Binary) and stmt.where.op == "AND"
    assert stmt.order_by[0].descending and not stmt.order_by[1].descending
    assert stmt.limit == 5


def test_select_distinct_and_count():
    stmt = parse("SELECT DISTINCT a FROM t")
    assert isinstance(stmt, Select) and stmt.distinct
    stmt = parse("SELECT COUNT(*) FROM t")
    assert isinstance(stmt.columns[0][0], FuncCall)
    stmt = parse("SELECT COUNT(DISTINCT a) AS n FROM t")
    fn = stmt.columns[0][0]
    assert isinstance(fn, FuncCall) and fn.distinct and fn.argument == ColumnRef("a")


def test_update():
    stmt = parse("UPDATE t SET a = a + 1, b = ? WHERE k = 'x'")
    assert isinstance(stmt, Update)
    assert stmt.assignments[0][0] == "a"
    assert isinstance(stmt.assignments[0][1], Binary)
    assert stmt.assignments[1] == ("b", Param(0))


def test_delete():
    stmt = parse("DELETE FROM t WHERE a IS NOT NULL")
    assert isinstance(stmt, Delete)
    assert isinstance(stmt.where, IsNull) and stmt.where.negated


def test_transaction_statements():
    assert isinstance(parse("BEGIN"), Begin)
    assert isinstance(parse("COMMIT"), Commit)
    assert isinstance(parse("ROLLBACK"), Rollback)


def test_trailing_semicolon_ok():
    assert isinstance(parse("SELECT * FROM t;"), Select)


def test_trailing_garbage_rejected():
    with pytest.raises(SQLSyntaxError):
        parse("SELECT * FROM t garbage here")


def test_unsupported_statement_rejected():
    with pytest.raises(SQLSyntaxError):
        parse("VACUUM")
    with pytest.raises(SQLSyntaxError):
        parse("t = 1")


# -- expression grammar -------------------------------------------------------

def test_precedence_or_and():
    expr = parse_expression("a = 1 OR b = 2 AND c = 3")
    assert isinstance(expr, Binary) and expr.op == "OR"
    assert isinstance(expr.right, Binary) and expr.right.op == "AND"


def test_precedence_arithmetic():
    expr = parse_expression("1 + 2 * 3")
    assert isinstance(expr, Binary) and expr.op == "+"
    assert isinstance(expr.right, Binary) and expr.right.op == "*"


def test_parentheses_override():
    expr = parse_expression("(1 + 2) * 3")
    assert isinstance(expr, Binary) and expr.op == "*"
    assert isinstance(expr.left, Binary) and expr.left.op == "+"


def test_not_and_unary_minus():
    expr = parse_expression("NOT a = -1")
    assert isinstance(expr, Unary) and expr.op == "NOT"
    inner = expr.operand
    assert isinstance(inner, Binary)
    assert inner.right == Unary("-", Literal(1))


def test_in_list():
    expr = parse_expression("a IN (1, 2, 3)")
    assert isinstance(expr, InList) and len(expr.items) == 3
    expr = parse_expression("a NOT IN (1)")
    assert isinstance(expr, InList) and expr.negated


def test_like_and_not_like():
    expr = parse_expression("name LIKE '/home/%'")
    assert isinstance(expr, Like) and not expr.negated
    expr = parse_expression("name NOT LIKE 'x'")
    assert isinstance(expr, Like) and expr.negated


def test_concat_operator():
    expr = parse_expression("a || b")
    assert isinstance(expr, Binary) and expr.op == "||"


def test_param_indices_increment():
    expr = parse_expression("? + ? + ?")
    # leftmost-deep: ((p0 + p1) + p2)
    assert isinstance(expr, Binary)
    assert expr.right == Param(2)


def test_expression_trailing_garbage_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_expression("1 + 2 extra")
