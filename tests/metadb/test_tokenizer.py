"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.metadb import Token, TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]  # drop EOF


def test_keywords_uppercased():
    assert kinds("select from where")[0] == (TokenType.KEYWORD, "SELECT")
    assert all(t[0] is TokenType.KEYWORD for t in kinds("select from where"))


def test_identifiers_preserve_case():
    toks = kinds("SELECT server_name FROM dpfs_server")
    assert (TokenType.IDENTIFIER, "server_name") in toks
    assert (TokenType.IDENTIFIER, "dpfs_server") in toks


def test_string_literal_with_escaped_quote():
    toks = kinds("SELECT 'it''s fine'")
    assert (TokenType.STRING, "it's fine") in toks


def test_unterminated_string_rejected():
    with pytest.raises(SQLSyntaxError):
        tokenize("SELECT 'oops")


def test_numbers_int_float_exponent():
    toks = kinds("SELECT 42, 3.14, 1e3, 2.5E-2")
    values = [v for t, v in toks if t is TokenType.NUMBER]
    assert values == ["42", "3.14", "1e3", "2.5E-2"]


def test_params():
    toks = kinds("INSERT INTO t VALUES (?, ?)")
    assert sum(1 for t, _v in toks if t is TokenType.PARAM) == 2


def test_compound_operators():
    toks = kinds("a <= b >= c != d <> e")
    ops = [v for t, v in toks if t is TokenType.OPERATOR]
    assert ops == ["<=", ">=", "!=", "!="]  # <> canonicalised


def test_comments_skipped():
    toks = kinds("SELECT 1 -- a comment\n+ 2")
    values = [v for _t, v in toks]
    assert values == ["SELECT", "1", "+", "2"]


def test_quoted_identifier():
    toks = kinds('SELECT "weird name" FROM t')
    assert (TokenType.IDENTIFIER, "weird name") in toks


def test_unexpected_character_rejected():
    with pytest.raises(SQLSyntaxError):
        tokenize("SELECT @foo")


def test_eof_token_present():
    toks = tokenize("SELECT 1")
    assert toks[-1].type is TokenType.EOF


def test_token_matches_helper():
    tok = Token(TokenType.KEYWORD, "SELECT", 0)
    assert tok.matches(TokenType.KEYWORD)
    assert tok.matches(TokenType.KEYWORD, "SELECT")
    assert not tok.matches(TokenType.KEYWORD, "FROM")
    assert not tok.matches(TokenType.IDENTIFIER)


def test_positions_recorded():
    toks = tokenize("SELECT  abc")
    assert toks[0].pos == 0
    assert toks[1].pos == 8
