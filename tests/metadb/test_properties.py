"""Property-based tests for the embedded database (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadb import Database

keys = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
values = st.integers(min_value=-(2**31), max_value=2**31)


@given(st.dictionaries(keys, values, max_size=30))
@settings(max_examples=50, deadline=None)
def test_insert_then_select_roundtrips_dict(mapping):
    """A table behaves like a dict: inserted pairs come back exactly."""
    db = Database()
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    for k, v in mapping.items():
        db.execute("INSERT INTO t VALUES (?, ?)", [k, v])
    got = {
        row["k"]: row["v"] for row in db.execute("SELECT k, v FROM t").rows
    }
    assert got == mapping


@given(
    st.dictionaries(keys, values, min_size=1, max_size=20),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_delete_is_exact(mapping, data):
    db = Database()
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    for k, v in mapping.items():
        db.execute("INSERT INTO t VALUES (?, ?)", [k, v])
    victim = data.draw(st.sampled_from(sorted(mapping)))
    db.execute("DELETE FROM t WHERE k = ?", [victim])
    got = {row["k"] for row in db.execute("SELECT k FROM t").rows}
    assert got == set(mapping) - {victim}


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=25))
@settings(max_examples=50, deadline=None)
def test_rollback_restores_exact_state(pairs):
    """Arbitrary mutation batches inside BEGIN..ROLLBACK leave no trace."""
    db = Database()
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    baseline = {}
    for k, v in pairs:
        if k not in baseline:
            db.execute("INSERT INTO t VALUES (?, ?)", [k, v])
            baseline[k] = v

    db.begin()
    for i, (k, v) in enumerate(pairs):
        if i % 3 == 0:
            db.execute("UPDATE t SET v = ? WHERE k = ?", [v + 1, k])
        elif i % 3 == 1:
            db.execute("DELETE FROM t WHERE k = ?", [k])
        else:
            db.execute(
                "INSERT INTO t VALUES (?, ?)", [k + "_new" + str(i), v]
            )
    db.rollback()

    got = {
        row["k"]: row["v"] for row in db.execute("SELECT k, v FROM t").rows
    }
    assert got == baseline


@given(st.dictionaries(keys, values, max_size=20))
@settings(max_examples=30, deadline=None)
def test_wal_reopen_equals_live_state(tmp_path_factory, mapping):
    """Close + reopen from snapshot/WAL reproduces the live table."""
    path = tmp_path_factory.mktemp("db") / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    for k, v in mapping.items():
        db.execute("INSERT INTO t VALUES (?, ?)", [k, v])
    live = {
        row["k"]: row["v"] for row in db.execute("SELECT k, v FROM t").rows
    }
    db.close()

    db2 = Database(path)
    recovered = {
        row["k"]: row["v"] for row in db2.execute("SELECT k, v FROM t").rows
    }
    db2.close()
    assert recovered == live == mapping


@given(
    st.lists(values, min_size=0, max_size=30),
    st.integers(min_value=-(2**31), max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_where_filter_matches_python_filter(numbers, threshold):
    db = Database()
    db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, v INTEGER)")
    for i, v in enumerate(numbers):
        db.execute("INSERT INTO t VALUES (?, ?)", [i, v])
    rows = db.execute("SELECT v FROM t WHERE v > ?", [threshold]).rows
    assert sorted(r["v"] for r in rows) == sorted(
        v for v in numbers if v > threshold
    )


@given(st.lists(st.tuples(values, values), max_size=25))
@settings(max_examples=50, deadline=None)
def test_order_by_matches_python_sort(pairs):
    db = Database()
    db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
    for i, (a, b) in enumerate(pairs):
        db.execute("INSERT INTO t VALUES (?, ?, ?)", [i, a, b])
    rows = db.execute("SELECT a, b FROM t ORDER BY a, b DESC").rows
    got = [(r["a"], r["b"]) for r in rows]
    assert got == sorted(
        ((a, b) for a, b in pairs), key=lambda p: (p[0], -p[1])
    )
