"""GROUP BY / HAVING / SUM / MIN / MAX / AVG tests."""

import pytest

from repro.errors import MetaDBError, SQLSyntaxError
from repro.metadb import Database


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE files (name TEXT PRIMARY KEY, level TEXT, size INTEGER)")
    d.execute(
        "INSERT INTO files VALUES "
        "('/a', 'linear', 100), ('/b', 'linear', 300), "
        "('/c', 'multidim', 200), ('/d', 'multidim', 400), "
        "('/e', 'array', 50), ('/f', 'array', NULL)"
    )
    return d


def test_group_by_count(db):
    rows = db.execute(
        "SELECT level, COUNT(*) AS n FROM files GROUP BY level ORDER BY level"
    ).rows
    assert rows == [
        {"level": "array", "n": 2},
        {"level": "linear", "n": 2},
        {"level": "multidim", "n": 2},
    ]


def test_sum_min_max_avg(db):
    rows = db.execute(
        "SELECT level, SUM(size) AS total, MIN(size) AS lo, MAX(size) AS hi, "
        "AVG(size) AS mean FROM files GROUP BY level ORDER BY level"
    ).rows
    assert rows[1] == {
        "level": "linear", "total": 400, "lo": 100, "hi": 300, "mean": 200.0,
    }
    # NULL sizes are ignored: the 'array' group aggregates only 50
    assert rows[0]["total"] == 50 and rows[0]["mean"] == 50.0


def test_aggregate_without_group_by(db):
    assert db.execute("SELECT SUM(size) FROM files").scalar() == 1050
    assert db.execute("SELECT MIN(size) FROM files").scalar() == 50
    assert db.execute("SELECT AVG(size) FROM files").scalar() == 210.0


def test_aggregate_over_empty_is_null(db):
    assert db.execute(
        "SELECT SUM(size) FROM files WHERE level = 'zzz'"
    ).scalar() is None
    # but COUNT over empty is 0, and an empty table still yields one row
    assert db.execute(
        "SELECT COUNT(*) FROM files WHERE level = 'zzz'"
    ).scalar() == 0


def test_having_filters_groups(db):
    rows = db.execute(
        "SELECT level, SUM(size) AS s FROM files "
        "GROUP BY level HAVING SUM(size) > 100 ORDER BY s DESC"
    ).rows
    assert [r["level"] for r in rows] == ["multidim", "linear"]


def test_having_with_count(db):
    db.execute("INSERT INTO files VALUES ('/g', 'linear', 10)")
    rows = db.execute(
        "SELECT level FROM files GROUP BY level HAVING COUNT(*) >= 3"
    ).rows
    assert rows == [{"level": "linear"}]


def test_aggregate_in_arithmetic(db):
    value = db.execute(
        "SELECT MAX(size) - MIN(size) AS spread FROM files"
    ).scalar()
    assert value == 350


def test_sum_distinct(db):
    db.execute("INSERT INTO files VALUES ('/dup', 'linear', 100)")
    assert db.execute("SELECT SUM(size) FROM files").scalar() == 1150
    assert db.execute("SELECT SUM(DISTINCT size) FROM files").scalar() == 1050


def test_group_by_expression(db):
    rows = db.execute(
        "SELECT size / 100 AS bucket, COUNT(*) AS n FROM files "
        "WHERE size IS NOT NULL GROUP BY size / 100 ORDER BY bucket"
    ).rows
    assert rows[0]["bucket"] == 0.5 and rows[0]["n"] == 1


def test_group_by_with_where(db):
    rows = db.execute(
        "SELECT level, COUNT(*) AS n FROM files WHERE size >= 200 "
        "GROUP BY level ORDER BY level"
    ).rows
    assert rows == [
        {"level": "linear", "n": 1},
        {"level": "multidim", "n": 2},
    ]


def test_limit_applies_to_groups(db):
    rows = db.execute(
        "SELECT level, COUNT(*) AS n FROM files GROUP BY level "
        "ORDER BY level LIMIT 2"
    ).rows
    assert len(rows) == 2


def test_select_star_with_group_by_rejected(db):
    with pytest.raises(MetaDBError):
        db.execute("SELECT * FROM files GROUP BY level")


def test_sum_star_rejected(db):
    with pytest.raises(SQLSyntaxError):
        db.execute("SELECT SUM(*) FROM files")


def test_min_max_on_text(db):
    assert db.execute("SELECT MIN(name) FROM files").scalar() == "/a"
    assert db.execute("SELECT MAX(name) FROM files").scalar() == "/f"
