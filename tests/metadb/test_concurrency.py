"""Thread-safety of the embedded database and the metadata layer."""

import threading

import pytest

from repro.core import DPFS
from repro.metadb import Database


def test_concurrent_single_statements():
    db = Database()
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    errors = []

    def work(n):
        try:
            for i in range(50):
                db.execute("INSERT INTO t VALUES (?, ?)", [f"{n}-{i}", i])
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(n,)) for n in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 400


def test_transactions_are_atomic_under_concurrency():
    """Interleaved transactions from many threads never observe or
    produce partial multi-row updates."""
    db = Database()
    db.execute("CREATE TABLE acct (k TEXT PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO acct VALUES ('a', 1000), ('b', 1000)")
    errors = []

    def transfer(n):
        try:
            for _ in range(40):
                with db.transaction():
                    a = db.execute("SELECT v FROM acct WHERE k = 'a'").scalar()
                    b = db.execute("SELECT v FROM acct WHERE k = 'b'").scalar()
                    db.execute("UPDATE acct SET v = ? WHERE k = 'a'", [a - 10])
                    db.execute("UPDATE acct SET v = ? WHERE k = 'b'", [b + 10])
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=transfer, args=(n,)) for n in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    a = db.execute("SELECT v FROM acct WHERE k = 'a'").scalar()
    b = db.execute("SELECT v FROM acct WHERE k = 'b'").scalar()
    # conservation: the 'money' moved, none was lost to lost updates
    assert a + b == 2000
    assert a == 1000 - 4 * 40 * 10


def test_rollback_under_concurrency_restores_state():
    db = Database()
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY)")
    stop = threading.Event()
    errors = []

    def churn():
        i = 0
        try:
            while not stop.is_set():
                db.begin()
                db.execute("INSERT INTO t VALUES (?)", [f"tmp{i}"])
                db.rollback()
                i += 1
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    def insert_real():
        try:
            for i in range(100):
                db.execute("INSERT INTO t VALUES (?)", [f"real{i}"])
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    churner = threading.Thread(target=churn)
    inserter = threading.Thread(target=insert_real)
    churner.start()
    inserter.start()
    inserter.join()
    stop.set()
    churner.join()
    assert not errors
    rows = [r["k"] for r in db.execute("SELECT k FROM t").rows]
    assert len(rows) == 100
    assert all(k.startswith("real") for k in rows)


def test_concurrent_namespace_operations():
    """Many threads creating files in the same directory — every file
    ends up linked exactly once (the §5 multi-table updates stay
    consistent)."""
    fs = DPFS.memory(4)
    fs.makedirs("/shared")
    errors = []

    def create(n):
        try:
            for i in range(10):
                fs.write_file(f"/shared/f{n}_{i}", b"x")
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=create, args=(n,)) for n in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    _dirs, files = fs.listdir("/shared")
    assert len(files) == 80
    assert len(set(files)) == 80
    # consistency double-check
    from repro.core import fsck

    assert fsck(fs).clean
