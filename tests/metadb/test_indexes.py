"""Secondary index tests: DDL, maintenance, planner use, durability."""

import pytest

from repro.errors import SchemaError
from repro.metadb import Database


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE t (k TEXT PRIMARY KEY, grp TEXT, v INTEGER)")
    d.execute(
        "INSERT INTO t VALUES ('a','x',1), ('b','y',2), ('c','x',3), "
        "('d', NULL, 4)"
    )
    d.execute("CREATE INDEX t_by_grp ON t (grp)")
    return d


def test_index_lookup_matches_scan(db):
    by_index = db.execute("SELECT k FROM t WHERE grp = 'x' ORDER BY k").rows
    by_scan = db.execute(
        "SELECT k FROM t WHERE grp || '' = 'x' ORDER BY k"
    ).rows
    assert by_index == by_scan == [{"k": "a"}, {"k": "c"}]


def test_null_values_not_indexed(db):
    # WHERE grp = NULL matches nothing (SQL semantics)
    rows = db.execute("SELECT k FROM t WHERE grp = ?", [None]).rows
    assert rows == []


def test_index_maintained_on_insert_update_delete(db):
    db.execute("INSERT INTO t VALUES ('e', 'x', 5)")
    assert db.execute("SELECT COUNT(*) FROM t WHERE grp = 'x'").scalar() == 3
    db.execute("UPDATE t SET grp = 'y' WHERE k = 'a'")
    assert db.execute("SELECT COUNT(*) FROM t WHERE grp = 'x'").scalar() == 2
    assert db.execute("SELECT COUNT(*) FROM t WHERE grp = 'y'").scalar() == 2
    db.execute("DELETE FROM t WHERE grp = 'x'")
    assert db.execute("SELECT COUNT(*) FROM t WHERE grp = 'x'").scalar() == 0


def test_duplicate_index_name_rejected(db):
    with pytest.raises(SchemaError):
        db.execute("CREATE INDEX t_by_grp ON t (v)")
    db.execute("CREATE INDEX IF NOT EXISTS t_by_grp ON t (v)")  # no-op


def test_index_on_unknown_column_rejected(db):
    with pytest.raises(SchemaError):
        db.execute("CREATE INDEX bad ON t (nosuch)")
    with pytest.raises(SchemaError):
        db.execute("CREATE INDEX bad ON missing_table (grp)")


def test_drop_index(db):
    db.execute("DROP INDEX t_by_grp")
    # queries still work (scan path)
    assert db.execute("SELECT COUNT(*) FROM t WHERE grp = 'x'").scalar() == 2
    with pytest.raises(SchemaError):
        db.execute("DROP INDEX t_by_grp")
    db.execute("DROP INDEX IF EXISTS t_by_grp")


def test_index_rollback(db):
    db.begin()
    db.execute("CREATE INDEX t_by_v ON t (v)")
    db.rollback()
    with pytest.raises(SchemaError):
        db.execute("DROP INDEX t_by_v")
    db.begin()
    db.execute("DROP INDEX t_by_grp")
    db.rollback()
    # restored: still answers correctly
    assert db.execute("SELECT COUNT(*) FROM t WHERE grp = 'x'").scalar() == 2


def test_index_survives_reopen(tmp_path):
    path = tmp_path / "meta.db"
    d = Database(path)
    d.execute("CREATE TABLE t (k TEXT PRIMARY KEY, grp TEXT)")
    d.execute("INSERT INTO t VALUES ('a', 'x')")
    d.execute("CREATE INDEX t_by_grp ON t (grp)")
    d.execute("INSERT INTO t VALUES ('b', 'x')")
    d.close()

    d2 = Database(path)
    table = d2.tables["t"]
    assert "t_by_grp" in table.secondary
    assert d2.execute("SELECT COUNT(*) FROM t WHERE grp = 'x'").scalar() == 2
    d2.close()


def test_index_survives_checkpoint(tmp_path):
    path = tmp_path / "meta.db"
    d = Database(path)
    d.execute("CREATE TABLE t (k TEXT PRIMARY KEY, grp TEXT)")
    d.execute("CREATE INDEX t_by_grp ON t (grp)")
    d.checkpoint()
    d.execute("INSERT INTO t VALUES ('a', 'q')")
    d.close()
    d2 = Database(path)
    assert d2.execute("SELECT k FROM t WHERE grp = 'q'").rows == [{"k": "a"}]
    d2.close()


def test_metadata_layer_uses_distribution_index():
    """The DPFS metadata schema creates dist_by_filename automatically."""
    from repro.backends import MemoryBackend
    from repro.core.metadata import MetadataManager

    manager = MetadataManager(Database())
    manager.register_servers(MemoryBackend(2).servers)
    table = manager.db.tables["dpfs_file_distribution"]
    assert "dist_by_filename" in table.secondary
