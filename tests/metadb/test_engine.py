"""Unit tests for the database engine: DDL, DML, SELECT features."""

import pytest

from repro.errors import ConstraintError, SchemaError
from repro.metadb import Database


@pytest.fixture
def db():
    d = Database()
    d.execute(
        "CREATE TABLE files (name TEXT PRIMARY KEY, size INTEGER NOT NULL, "
        "level TEXT DEFAULT 'linear', meta JSON)"
    )
    d.execute("INSERT INTO files (name, size) VALUES ('a', 10), ('b', 20), ('c', 30)")
    return d


def test_create_duplicate_table_rejected(db):
    with pytest.raises(SchemaError):
        db.execute("CREATE TABLE files (x INTEGER)")
    db.execute("CREATE TABLE IF NOT EXISTS files (x INTEGER)")  # no-op


def test_drop_table(db):
    db.execute("DROP TABLE files")
    with pytest.raises(SchemaError):
        db.execute("SELECT * FROM files")
    with pytest.raises(SchemaError):
        db.execute("DROP TABLE files")
    db.execute("DROP TABLE IF EXISTS files")  # no-op


def test_insert_and_select_star(db):
    rows = db.execute("SELECT * FROM files ORDER BY name").rows
    assert [r["name"] for r in rows] == ["a", "b", "c"]
    assert rows[0]["level"] == "linear"  # default applied
    assert rows[0]["meta"] is None


def test_insert_arity_mismatch_rejected(db):
    with pytest.raises(SchemaError):
        db.execute("INSERT INTO files (name, size) VALUES (1, 2, 3)")


def test_primary_key_duplicate_rejected(db):
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO files (name, size) VALUES ('a', 99)")
    # table unchanged
    assert db.execute("SELECT COUNT(*) FROM files").scalar() == 3


def test_not_null_enforced(db):
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO files (name) VALUES ('d')")


def test_type_coercion():
    db = Database()
    db.execute("CREATE TABLE t (i INTEGER, r REAL, s TEXT)")
    db.execute("INSERT INTO t VALUES (?, ?, ?)", ["42", 1, 99])
    row = db.execute("SELECT * FROM t").rows[0]
    assert row == {"i": 42, "r": 1.0, "s": "99"}
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO t (i) VALUES ('abc')")


def test_json_column_roundtrip():
    db = Database()
    db.execute("CREATE TABLE t (k TEXT, payload JSON)")
    value = {"bricks": [0, 4, 8], "nested": {"x": 1}}
    db.execute("INSERT INTO t VALUES ('a', ?)", [value])
    assert db.execute("SELECT payload FROM t").scalar() == value


def test_where_with_params(db):
    rows = db.execute("SELECT name FROM files WHERE size >= ?", [20]).rows
    assert sorted(r["name"] for r in rows) == ["b", "c"]


def test_update_with_expression(db):
    n = db.execute("UPDATE files SET size = size * 2 WHERE name != 'a'").rowcount
    assert n == 2
    assert db.execute("SELECT size FROM files WHERE name = 'b'").scalar() == 40
    assert db.execute("SELECT size FROM files WHERE name = 'a'").scalar() == 10


def test_update_unknown_column_rejected(db):
    with pytest.raises(SchemaError):
        db.execute("UPDATE files SET nosuch = 1")


def test_update_pk_collision_rolls_back_row(db):
    with pytest.raises(ConstraintError):
        db.execute("UPDATE files SET name = 'a' WHERE name = 'b'")
    assert db.execute("SELECT COUNT(*) FROM files").scalar() == 3


def test_delete(db):
    assert db.execute("DELETE FROM files WHERE size < 25").rowcount == 2
    assert db.execute("SELECT COUNT(*) FROM files").scalar() == 1


def test_order_by_desc_and_limit(db):
    rows = db.execute("SELECT name FROM files ORDER BY size DESC LIMIT 2").rows
    assert [r["name"] for r in rows] == ["c", "b"]


def test_order_by_nulls():
    db = Database()
    db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
    db.execute("INSERT INTO t VALUES ('a', 2), ('b', NULL), ('c', 1)")
    # POSTGRES convention (the paper's metadata DB): NULLs sort largest —
    # last ascending, first descending.
    asc = [r["k"] for r in db.execute("SELECT k FROM t ORDER BY v").rows]
    assert asc == ["c", "a", "b"]
    desc = [r["k"] for r in db.execute("SELECT k FROM t ORDER BY v DESC").rows]
    assert desc == ["b", "a", "c"]


def test_projection_with_alias_and_expression(db):
    rows = db.execute(
        "SELECT name, size * 2 AS double FROM files WHERE name = 'a'"
    ).rows
    assert rows == [{"name": "a", "double": 20}]


def test_distinct():
    db = Database()
    db.execute("CREATE TABLE t (v INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2), (1), (2), (3)")
    rows = db.execute("SELECT DISTINCT v FROM t ORDER BY v").rows
    assert [r["v"] for r in rows] == [1, 2, 3]


def test_count_star_and_count_column():
    db = Database()
    db.execute("CREATE TABLE t (v INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (NULL), (2), (NULL), (2)")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 5
    assert db.execute("SELECT COUNT(v) FROM t").scalar() == 3
    assert db.execute("SELECT COUNT(DISTINCT v) FROM t").scalar() == 2


def test_count_with_where(db):
    assert db.execute("SELECT COUNT(*) FROM files WHERE size > 15").scalar() == 2


def test_like_on_paths():
    db = Database()
    db.execute("CREATE TABLE d (p TEXT)")
    db.execute(
        "INSERT INTO d VALUES ('/home/a'), ('/home/b/c'), ('/tmp/x')"
    )
    rows = db.execute("SELECT p FROM d WHERE p LIKE '/home/%' ORDER BY p").rows
    assert [r["p"] for r in rows] == ["/home/a", "/home/b/c"]


def test_index_probe_matches_scan(db):
    # name is the PK → index path; result must equal a full scan
    by_index = db.execute("SELECT size FROM files WHERE name = 'b'").rows
    by_scan = db.execute("SELECT size FROM files WHERE name || '' = 'b'").rows
    assert by_index == by_scan == [{"size": 20}]


def test_index_probe_param(db):
    rows = db.execute("SELECT size FROM files WHERE name = ?", ["c"]).rows
    assert rows == [{"size": 30}]


def test_unique_constraint_via_index():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER UNIQUE, b TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'x')")
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO t VALUES (1, 'y')")
    # NULLs are not constrained
    db.execute("INSERT INTO t VALUES (NULL, 'y')")
    db.execute("INSERT INTO t VALUES (NULL, 'z')")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 3


def test_scalar_on_empty_result(db):
    assert db.execute("SELECT size FROM files WHERE name = 'zzz'").scalar() is None


def test_resultset_iteration(db):
    result = db.execute("SELECT name FROM files ORDER BY name")
    assert len(result) == 3
    assert [r["name"] for r in result] == ["a", "b", "c"]


def test_table_names(db):
    assert db.table_names() == ["files"]
