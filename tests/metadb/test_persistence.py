"""Durability tests: WAL replay, checkpoints, torn-tail recovery."""

import json

import pytest

from repro.errors import TransactionError
from repro.metadb import Database


def reopen(path):
    return Database(path)


def test_basic_reopen(tmp_path):
    path = tmp_path / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO t VALUES ('a', 1)")
    db.close()

    db2 = reopen(path)
    assert db2.execute("SELECT v FROM t WHERE k = 'a'").scalar() == 1
    db2.close()


def test_wal_replays_updates_and_deletes(tmp_path):
    path = tmp_path / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3)")
    db.execute("UPDATE t SET v = 20 WHERE k = 'b'")
    db.execute("DELETE FROM t WHERE k = 'c'")
    db.close()

    db2 = reopen(path)
    rows = db2.execute("SELECT k, v FROM t ORDER BY k").rows
    assert rows == [{"k": "a", "v": 1}, {"k": "b", "v": 20}]
    db2.close()


def test_rolled_back_transaction_not_replayed(tmp_path):
    path = tmp_path / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY)")
    db.begin()
    db.execute("INSERT INTO t VALUES ('gone')")
    db.rollback()
    db.execute("INSERT INTO t VALUES ('kept')")
    db.close()

    db2 = reopen(path)
    rows = db2.execute("SELECT k FROM t").rows
    assert rows == [{"k": "kept"}]
    db2.close()


def test_checkpoint_truncates_wal_and_preserves_data(tmp_path):
    path = tmp_path / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v JSON)")
    db.execute("INSERT INTO t VALUES ('a', ?)", [[1, 2, 3]])
    db.checkpoint()
    wal = tmp_path / "meta.db.wal"
    assert not wal.exists() or wal.stat().st_size == 0
    db.execute("INSERT INTO t VALUES ('b', ?)", [{"x": 1}])
    db.close()

    db2 = reopen(path)
    assert db2.execute("SELECT v FROM t WHERE k = 'a'").scalar() == [1, 2, 3]
    assert db2.execute("SELECT v FROM t WHERE k = 'b'").scalar() == {"x": 1}
    db2.close()


def test_checkpoint_inside_transaction_rejected(tmp_path):
    db = Database(tmp_path / "meta.db")
    db.begin()
    with pytest.raises(TransactionError):
        db.checkpoint()
    db.rollback()
    db.close()


def test_torn_wal_tail_discarded(tmp_path):
    path = tmp_path / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY)")
    db.execute("INSERT INTO t VALUES ('committed')")
    db.close()

    wal = tmp_path / "meta.db.wal"
    with open(wal, "a", encoding="utf-8") as fh:
        fh.write('{"txn": 99, "ops": [["insert", "t", 7,')  # crash mid-write

    db2 = reopen(path)
    rows = db2.execute("SELECT k FROM t").rows
    assert rows == [{"k": "committed"}]
    db2.close()


def test_checkpoint_race_stale_wal_not_replayed(tmp_path):
    """Crash between the snapshot rewrite and the WAL truncation in
    checkpoint(): recovery sees a fresh snapshot *and* the full stale
    log.  Replaying the stale records would resurrect the table's
    creation-time (empty) image; the snapshot's last_txn must filter
    them out."""
    path = tmp_path / "meta.db"
    wal = tmp_path / "meta.db.wal"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO t VALUES ('a', 1)")
    db.execute("UPDATE t SET v = 2 WHERE k = 'a'")
    stale = wal.read_bytes()
    db.checkpoint()
    db.close()
    wal.write_bytes(stale)  # the truncation "never happened"

    db2 = reopen(path)
    assert db2.execute("SELECT v FROM t WHERE k = 'a'").scalar() == 2
    db2.close()


def test_checkpoint_race_does_not_resurrect_deleted_rows(tmp_path):
    path = tmp_path / "meta.db"
    wal = tmp_path / "meta.db.wal"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY)")
    db.execute("INSERT INTO t VALUES ('doomed')")
    db.execute("DELETE FROM t WHERE k = 'doomed'")
    stale = wal.read_bytes()
    db.checkpoint()
    db.close()
    wal.write_bytes(stale)

    db2 = reopen(path)
    assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 0
    db2.close()


def test_checkpoint_race_with_torn_tail(tmp_path):
    """The stale log may itself end in a torn line (crash mid-append
    racing the checkpoint); both defenses must compose."""
    path = tmp_path / "meta.db"
    wal = tmp_path / "meta.db.wal"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY)")
    db.execute("INSERT INTO t VALUES ('kept')")
    stale = wal.read_bytes()
    db.checkpoint()
    db.close()
    wal.write_bytes(stale + b'{"txn": 99, "ops": [["insert", "t", 7,')

    db2 = reopen(path)
    assert db2.execute("SELECT k FROM t").rows == [{"k": "kept"}]
    db2.close()


def test_txn_ids_stay_monotone_after_checkpoint_crash(tmp_path):
    """Recovery must advance the txn counter past the snapshot's
    last_txn even when the stale log is filtered out — otherwise new
    appends reuse covered ids and the *next* recovery drops them."""
    path = tmp_path / "meta.db"
    wal = tmp_path / "meta.db.wal"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO t VALUES ('a', 1)")
    stale = wal.read_bytes()
    db.checkpoint()
    db.close()
    wal.write_bytes(stale)

    db2 = reopen(path)
    db2.execute("INSERT INTO t VALUES ('b', 2)")
    db2.close()

    db3 = reopen(path)
    rows = db3.execute("SELECT k, v FROM t ORDER BY k").rows
    assert rows == [{"k": "a", "v": 1}, {"k": "b", "v": 2}]
    db3.close()


def test_snapshot_without_last_txn_still_loads(tmp_path):
    """Snapshots written before last_txn existed default to covering
    nothing — the whole WAL replays, matching the old behavior."""
    path = tmp_path / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY)")
    db.checkpoint()
    db.execute("INSERT INTO t VALUES ('after')")
    db.close()

    snap = tmp_path / "meta.db.snapshot.json"
    data = json.loads(snap.read_text())
    del data["last_txn"]
    snap.write_text(json.dumps(data))

    db2 = reopen(path)
    assert db2.execute("SELECT k FROM t").rows == [{"k": "after"}]
    db2.close()


def test_reopen_after_checkpoint_then_more_writes(tmp_path):
    path = tmp_path / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (n INTEGER PRIMARY KEY)")
    for i in range(5):
        db.execute("INSERT INTO t VALUES (?)", [i])
    db.checkpoint()
    for i in range(5, 10):
        db.execute("INSERT INTO t VALUES (?)", [i])
    db.close()

    db2 = reopen(path)
    assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 10
    db2.close()


def test_drop_table_survives_reopen(tmp_path):
    path = tmp_path / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT)")
    db.execute("CREATE TABLE u (k TEXT)")
    db.execute("DROP TABLE t")
    db.close()

    db2 = reopen(path)
    assert db2.table_names() == ["u"]
    db2.close()


def test_snapshot_is_valid_json(tmp_path):
    path = tmp_path / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY)")
    db.execute("INSERT INTO t VALUES ('x')")
    db.checkpoint()
    db.close()
    snapshot = json.loads((tmp_path / "meta.db.snapshot.json").read_text())
    assert snapshot["format"] == 1
    assert snapshot["tables"][0]["name"] == "t"


def test_open_transaction_rolled_back_on_close(tmp_path):
    path = tmp_path / "meta.db"
    db = Database(path)
    db.execute("CREATE TABLE t (k TEXT)")
    db.begin()
    db.execute("INSERT INTO t VALUES ('uncommitted')")
    db.close()  # implicit rollback

    db2 = reopen(path)
    assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 0
    db2.close()


def test_context_manager_closes(tmp_path):
    path = tmp_path / "meta.db"
    with Database(path) as db:
        db.execute("CREATE TABLE t (k TEXT)")
    with Database(path) as db2:
        assert db2.table_names() == ["t"]
