"""MetricsRegistry: thread safety, bucket edges, cardinality, export."""

import threading

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry
from repro.obs.registry import DEFAULT_BUCKETS


# -- counters ---------------------------------------------------------------
def test_counter_basics():
    reg = MetricsRegistry()
    c = reg.counter("dpfs_test_total", "help text")
    c.inc()
    c.inc(2.5)
    assert c.value() == 3.5
    assert c.total() == 3.5


def test_counter_rejects_negative():
    c = MetricsRegistry().counter("c")
    with pytest.raises(ConfigError):
        c.inc(-1)


def test_counter_labels_are_independent_series():
    c = MetricsRegistry().counter("c")
    c.inc(1, server=0)
    c.inc(2, server=1)
    c.inc(4, server=1)
    assert c.value(server=0) == 1
    assert c.value(server=1) == 6
    assert c.total() == 7
    assert c.by_label("server") == {"0": 1, "1": 6}


def test_bound_counter_matches_unbound():
    c = MetricsRegistry().counter("c")
    bound = c.labels(server=3)
    bound.inc()
    c.inc(1, server=3)
    bound.inc(2)
    assert bound.value() == 4
    assert c.value(server=3) == 4


def test_concurrent_increments_from_8_threads():
    """The headline thread-safety contract: no lost updates."""
    reg = MetricsRegistry()
    c = reg.counter("c")
    h = reg.histogram("h")
    per_thread = 5_000

    def hammer(tid: int) -> None:
        bound = c.labels(thread=tid)
        hb = h.labels(thread=tid)
        for _ in range(per_thread):
            c.inc()
            bound.inc()
            hb.observe(0.001)

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.total() == 8 * per_thread * 2
    assert h.total_count() == 8 * per_thread
    for tid in range(8):
        assert c.value(thread=tid) == per_thread


# -- gauges -----------------------------------------------------------------
def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("g")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value() == 12


# -- histograms -------------------------------------------------------------
def test_histogram_bucket_edges_are_le():
    """An observation equal to an edge lands in that edge's bucket."""
    h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
    h.observe(1.0)   # == first edge -> le="1" bucket
    h.observe(1.5)   # -> le="2"
    h.observe(2.0)   # == second edge -> le="2"
    h.observe(9.0)   # -> +Inf
    counts = h.bucket_counts()
    assert counts == {"1": 1, "2": 3, "4": 3, "+Inf": 4}
    assert h.count() == 4
    assert h.sum() == pytest.approx(13.5)


def test_histogram_cumulative_render():
    h = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    text = h.render()
    assert 'h_bucket{le="0.1"} 1' in text
    assert 'h_bucket{le="1"} 2' in text
    assert 'h_bucket{le="+Inf"} 3' in text
    assert "h_count 3" in text


def test_histogram_default_buckets_sorted():
    assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


def test_histogram_rejects_bad_buckets():
    reg = MetricsRegistry()
    with pytest.raises(ConfigError):
        reg.histogram("h1", buckets=())
    with pytest.raises(ConfigError):
        reg.histogram("h2", buckets=(1.0, 1.0))


def test_bound_histogram_matches_unbound():
    h = MetricsRegistry().histogram("h", buckets=(1.0,))
    bound = h.labels(server=0)
    bound.observe(0.5)
    h.observe(2.0, server=0)
    assert h.count(server=0) == 2
    assert h.sum(server=0) == pytest.approx(2.5)


# -- label cardinality -------------------------------------------------------
def test_label_cardinality_cap_collapses_to_overflow():
    c = MetricsRegistry().counter("c", max_series=4)
    for i in range(100):
        c.inc(1, client=i)
    # four real series plus everything else in the overflow bucket
    assert c.total() == 100
    text = c.render()
    assert 'overflow="true"' in text
    # admitted series keep exact values
    assert c.value(client=0) == 1


def test_bound_series_created_before_cap_still_works_after():
    c = MetricsRegistry().counter("c", max_series=2)
    early = c.labels(k="early")
    early.inc()
    for i in range(10):
        c.inc(1, k=i)
    early.inc()
    assert early.value() == 2
    assert c.total() == 12


# -- registry ---------------------------------------------------------------
def test_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")


def test_type_mismatch_is_config_error():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ConfigError):
        reg.histogram("x")


def test_render_is_prometheus_text():
    reg = MetricsRegistry()
    reg.counter("b_total", "second").inc(2)
    reg.gauge("a_gauge", "first").set(1)
    text = reg.render()
    # name-sorted, HELP/TYPE headers present, trailing newline
    assert text.index("a_gauge") < text.index("b_total")
    assert "# HELP a_gauge first" in text
    assert "# TYPE b_total counter" in text
    assert text.endswith("\n")
    assert "b_total 2" in text


def test_snapshot_roundtrips_through_json():
    import json

    reg = MetricsRegistry()
    reg.counter("c").inc(1, server=0)
    reg.histogram("h").observe(0.01)
    reg.gauge("g").set(7)
    snap = json.loads(json.dumps(reg.snapshot()))
    assert snap["c"]["series"][0]["value"] == 1
    assert snap["h"]["series"][0]["count"] == 1
    assert snap["g"]["series"][0]["value"] == 7
