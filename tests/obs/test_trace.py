"""Tracing: span nesting, contextvar propagation, worker-thread adoption."""

import threading

from repro.obs import Tracer, current_span, current_trace_id, span, use_span
from repro.obs.trace import NOOP_SPAN


def test_disabled_tracer_is_noop():
    tracer = Tracer(enabled=False)
    with tracer.trace("op") as root:
        assert root is NOOP_SPAN
        assert current_span() is None
        assert current_trace_id() is None
        # nested spans short-circuit too
        assert span("child") is NOOP_SPAN
    assert tracer.traces() == []


def test_span_outside_any_trace_is_noop():
    assert span("orphan") is NOOP_SPAN
    with span("orphan"):
        pass  # must not raise


def test_nesting_builds_a_tree():
    tracer = Tracer(enabled=True)
    with tracer.trace("root", kind="demo") as root:
        assert current_span() is root
        with span("child_a") as a:
            with span("grandchild") as g:
                assert g.parent_id == a.span_id
        with span("child_b") as b:
            pass
    trace = tracer.last()
    assert trace is not None
    names = [s.name for s in trace.spans]
    assert names == ["root", "child_a", "grandchild", "child_b"]
    assert trace.spans[0].parent_id is None
    assert a.parent_id == root.span_id
    assert b.parent_id == root.span_id
    assert all(s.end_s is not None for s in trace.spans)


def test_trace_id_is_request_id():
    tracer = Tracer(enabled=True)
    with tracer.trace("op"):
        rid = current_trace_id()
        assert rid == tracer.last().trace_id
    assert current_trace_id() is None


def test_exception_is_tagged_and_context_restored():
    tracer = Tracer(enabled=True)
    try:
        with tracer.trace("op"):
            with span("failing"):
                raise ValueError("boom")
    except ValueError:
        pass
    assert current_span() is None
    failing = tracer.last().spans[-1]
    assert "ValueError" in failing.tags["error"]


def test_use_span_adopts_across_threads():
    """Pool workers join the submitting thread's trace via use_span."""
    tracer = Tracer(enabled=True)
    seen = {}

    def worker(parent):
        with use_span(parent):
            with span("in_worker", thread=threading.current_thread().name) as s:
                seen["parent_id"] = s.parent_id
                seen["rid"] = current_trace_id()
        # adoption is scoped: after the block the worker has no context
        seen["after"] = current_span()

    with tracer.trace("root") as root:
        t = threading.Thread(target=worker, args=(current_span(),))
        t.start()
        t.join()
    assert seen["parent_id"] == root.span_id
    assert seen["rid"] == tracer.last().trace_id
    assert seen["after"] is None


def test_use_span_none_is_noop():
    with use_span(None) as adopted:
        assert adopted is None
        assert current_span() is None


def test_tracer_ring_is_bounded():
    tracer = Tracer(enabled=True, keep=3)
    for i in range(10):
        with tracer.trace(f"op{i}"):
            pass
    kept = tracer.traces()
    assert len(kept) == 3
    assert [t.name for t in kept] == ["op7", "op8", "op9"]


def test_render_shows_tree_and_tags():
    tracer = Tracer(enabled=True)
    with tracer.trace("root"):
        with span("child", server=3):
            pass
    text = tracer.last().render()
    assert "root" in text
    assert "child" in text
    assert "server=3" in text
    assert text.startswith("trace ")


def test_dispatcher_pool_workers_land_in_one_trace():
    """End to end: spans from dispatcher worker threads join the trace."""
    from repro.core.dispatch import Dispatcher, DispatchPolicy

    tracer = Tracer(enabled=True)
    with Dispatcher(DispatchPolicy(max_workers=4)) as dispatcher:
        with tracer.trace("io"):
            dispatcher.run(
                list(range(6)),
                lambda item: item * 2,
                server_of=lambda item: item % 3,
            )
    trace = tracer.last()
    requests = [s for s in trace.spans if s.name == "dispatch.request"]
    assert len(requests) == 6
    batch = next(s for s in trace.spans if s.name == "dispatch.batch")
    assert all(s.parent_id == batch.span_id for s in requests)
    # per-request timing tags recorded by the dispatcher
    for s in requests:
        assert "service_s" in s.tags
        assert "queue_wait_s" in s.tags
