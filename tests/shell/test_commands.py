"""Shell command tests (§7)."""

import numpy as np
import pytest

from repro.core import DPFS
from repro.errors import DPFSError
from repro.shell import CommandError, Shell


@pytest.fixture
def sh(fs):
    return Shell(fs)


def test_pwd_and_cd(sh):
    assert sh.run_line("pwd") == "/"
    sh.run_line("mkdir /home")
    sh.run_line("cd /home")
    assert sh.run_line("pwd") == "/home"
    sh.run_line("cd ..")
    assert sh.run_line("pwd") == "/"
    with pytest.raises(CommandError):
        sh.run_line("cd /nope")


def test_relative_paths_resolved(sh):
    sh.run_line("mkdir -p /a/b")
    sh.run_line("cd /a")
    sh.run_line("mkdir c")
    assert sh.state.fs.isdir("/a/c")


def test_mkdir_p_and_rmdir(sh):
    sh.run_line("mkdir -p /x/y/z")
    assert sh.state.fs.isdir("/x/y/z")
    sh.run_line("rmdir /x/y/z")
    assert not sh.state.fs.exists("/x/y/z")
    with pytest.raises(DPFSError):
        sh.run_line("rmdir /x")  # not empty


def test_mkdir_missing_operand(sh):
    with pytest.raises(CommandError):
        sh.run_line("mkdir")


def test_ls_short_and_long(sh, fs):
    fs.makedirs("/d")
    fs.write_file("/f", b"hello")
    short = sh.run_line("ls /")
    assert "d/" in short and "f" in short
    long = sh.run_line("ls -l /")
    assert "linear" in long
    assert "5" in long


def test_ls_on_file(sh, fs):
    fs.write_file("/f", b"hello")
    out = sh.run_line("ls -l /f")
    assert "f" in out


def test_rm(sh, fs):
    fs.write_file("/f", b"x")
    sh.run_line("rm /f")
    assert not fs.exists("/f")
    with pytest.raises(DPFSError):
        sh.run_line("rm /f")


def test_chmod_and_stat(sh, fs):
    fs.write_file("/f", b"x")
    sh.run_line("chmod 600 /f")
    out = sh.run_line("stat /f")
    assert "permission: 600" in out
    with pytest.raises(CommandError):
        sh.run_line("chmod banana /f")


def test_stat_directory(sh, fs):
    fs.mkdir("/d")
    assert "directory" in sh.run_line("stat /d")


def test_cat(sh, fs):
    fs.write_file("/f", "grüße\n".encode())
    assert sh.run_line("cat /f") == "grüße\n"


def test_put_get_roundtrip(sh, tmp_path):
    src = tmp_path / "in.bin"
    src.write_bytes(b"payload" * 100)
    out = sh.run_line(f"put {src} /data")
    assert "imported" in out
    dst = tmp_path / "out.bin"
    sh.run_line(f"get /data {dst}")
    assert dst.read_bytes() == src.read_bytes()


def test_put_with_multidim_flags(sh, tmp_path, fs):
    arr = np.arange(16 * 16, dtype=np.float64)
    src = tmp_path / "a.bin"
    src.write_bytes(arr.tobytes())
    sh.run_line(
        f"put --level multidim --shape 16x16 --brick-shape 4x4 "
        f"--element-size 8 {src} /array"
    )
    st = fs.stat("/array")
    assert st["filelevel"] == "multidim"
    assert st["geometry"]["brick_shape"] == [4, 4]


def test_cp_plain_and_restriped(sh, fs):
    fs.write_file("/a", bytes(range(256)))
    sh.run_line("cp /a /b")
    assert fs.read_file("/b") == bytes(range(256))
    sh.run_line(
        "cp --level multidim --shape 16x16 --brick-shape 8x8 "
        "--element-size 1 /a /c"
    )
    assert fs.stat("/c")["filelevel"] == "multidim"
    assert fs.read_file("/c") == bytes(range(256))


def test_cp_array_level_flags(sh, fs):
    fs.write_file("/a", bytes(256))
    sh.run_line(
        "cp --level array --shape 16x16 --pattern '(BLOCK, *)' "
        "--nprocs 4 --element-size 1 /a /b"
    )
    assert fs.stat("/b")["geometry"]["pattern"] == "(BLOCK, *)"


def test_flag_validation(sh):
    with pytest.raises(CommandError):
        sh.run_line("cp --level multidim /a /b")  # missing shape
    with pytest.raises(CommandError):
        sh.run_line("cp --level wat /a /b")
    with pytest.raises(CommandError):
        sh.run_line("cp --level")  # missing value
    with pytest.raises(CommandError):
        sh.run_line("cp onlyone")


def test_df_lists_servers(sh):
    out = sh.run_line("df")
    assert "mem0" in out and "mem3" in out


def test_bricks_command(sh, fs):
    fs.write_file("/f", b"z" * 1000)
    out = sh.run_line("bricks /f")
    assert "server 0" in out


def test_help(sh):
    out = sh.run_line("help")
    for name in ("ls", "cp", "mkdir", "rm", "pwd", "put", "get"):
        assert name in out
    assert "cp" in sh.run_line("help cp")
    with pytest.raises(CommandError):
        sh.run_line("help nosuch")


def test_unknown_command(sh):
    with pytest.raises(CommandError):
        sh.run_line("frobnicate")


def test_empty_and_comment_lines(sh):
    assert sh.run_line("") == ""
    assert sh.run_line("   # just a comment") == ""


def test_run_script(sh, fs):
    outputs = sh.run_script(["mkdir /s", "cd /s", "pwd"])
    assert outputs[-1] == "/s"


def test_repl_loop(fs):
    import io

    shell = Shell(fs)
    stdin = io.StringIO("mkdir /via-repl\nbadcmd\nls /\nexit\n")
    stdout = io.StringIO()
    shell.repl(stdin=stdin, stdout=stdout)
    text = stdout.getvalue()
    assert "via-repl/" in text
    assert "error:" in text
    assert fs.isdir("/via-repl")


def test_mv(sh, fs):
    fs.write_file("/a", b"data")
    sh.run_line("mv /a /b")
    assert fs.read_file("/b") == b"data"
    with pytest.raises(CommandError):
        sh.run_line("mv /only-one")


def test_du_command(sh, fs):
    fs.makedirs("/d")
    fs.write_file("/d/f", b"x" * 123)
    out = sh.run_line("du /d")
    assert out.startswith("123\t")


def test_df_shows_usage(sh, fs):
    fs.write_file("/f", b"x" * 5000)
    out = sh.run_line("df")
    assert "used" in out or "avail" in out
