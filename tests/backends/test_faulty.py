"""Fault injection: errors surface cleanly, metadata stays consistent,
and transient faults are absorbed by the dispatch layer's retry budget."""

import numpy as np
import pytest

from repro.backends import MemoryBackend
from repro.backends.faulty import FaultyBackend, InjectedFault, TransientFault
from repro.core import DPFS, Hint
from repro.core.fsck import fsck
from repro.errors import MultiServerError, RetryExhausted


@pytest.fixture
def faulty():
    return FaultyBackend(MemoryBackend(4))


@pytest.fixture
def fs(faulty):
    return DPFS(faulty)


def test_fail_next_fires_once(faulty):
    faulty.create_subfile(0, "/f")
    faulty.fail_next("read")
    with pytest.raises(InjectedFault):
        faulty.read_extents(0, "/f", [(0, 1)])
    assert faulty.read_extents(0, "/f", [(0, 1)]) == b"\x00"
    assert faulty.faults_fired["read"] == 1


def test_fail_on_until_heal(faulty):
    faulty.create_subfile(1, "/f")
    faulty.fail_on("write", server=1)
    for _ in range(3):
        with pytest.raises(InjectedFault):
            faulty.write_extents(1, "/f", [(0, 1)], b"x")
    # other servers unaffected
    faulty.create_subfile(0, "/f")
    faulty.write_extents(0, "/f", [(0, 1)], b"x")
    faulty.heal()
    faulty.write_extents(1, "/f", [(0, 1)], b"x")


def test_read_fault_propagates_through_handle(fs, faulty):
    fs.write_file("/f", b"payload" * 100)
    faulty.fail_next("read")
    with fs.open("/f", "r") as handle:
        with pytest.raises(InjectedFault):
            handle.read(0, 100)
        # retryable: the next read succeeds and is correct
        assert handle.read(0, 7) == b"payload"


def test_write_fault_leaves_metadata_consistent(fs, faulty):
    """A mid-write storage fault must not corrupt the namespace: the
    file stays readable and its metadata loads."""
    hint = Hint.multidim((32, 32), 8, (8, 8))
    data = np.zeros((32, 32))
    with fs.open("/f", "w", hint=hint) as handle:
        handle.write_array((0, 0), data)
    faulty.fail_next("write")
    with fs.open("/f", "r+") as handle:
        with pytest.raises(InjectedFault):
            handle.write_array((0, 0), np.ones((32, 32)))
    # metadata still loads; file still readable (possibly partially new)
    record, bmap = fs.meta.load_file("/f")
    assert record.size == 32 * 32 * 8
    with fs.open("/f", "r") as handle:
        got = handle.read_array((0, 0), (32, 32), np.float64)
    assert got.shape == (32, 32)


def test_create_fault_aborts_cleanly(fs, faulty):
    """If subfile creation fails mid-fan-out, the create rolls back
    completely: every reachable server was still attempted, the failure
    surfaces as one aggregate error, and the namespace stays reusable."""
    faulty.fail_next("create")
    with pytest.raises(MultiServerError) as excinfo:
        fs.write_file("/doomed", b"x" * 10)
    assert any(isinstance(e, InjectedFault) for _s, e in excinfo.value.errors)
    # metadata never committed and the orphan subfiles were undone
    assert not fs.exists("/doomed")
    assert fsck(fs).clean
    # and the namespace is reusable
    fs.write_file("/doomed", b"fresh")
    assert fs.read_file("/doomed") == b"fresh"


def test_per_server_fault_with_combination(fs, faulty):
    """Only requests hitting the broken server fail; stats still sane."""
    fs.write_file(
        "/f", bytes(4096), hint=Hint.linear(file_size=4096, brick_size=256)
    )
    faulty.fail_on("read", server=2)
    with fs.open("/f", "r", combine=False) as handle:
        with pytest.raises(InjectedFault):
            handle.read(0, 4096)
        # requests to servers before the failure were recorded
        assert handle.stats.requests >= 1
    faulty.heal()
    assert fs.read_file("/f") == bytes(4096)


# ---------------------------------------------------------------------------
# transient faults × the dispatch retry budget
# ---------------------------------------------------------------------------

def _parallel_fs(faulty, retries=3):
    return DPFS(faulty, io_workers=4, io_retries=retries, io_backoff_s=0.0001)


def test_transient_fault_classes():
    t = TransientFault("x")
    assert isinstance(t, InjectedFault)
    assert t.transient
    assert not getattr(InjectedFault("x"), "transient", False)


def test_transient_read_fault_retried_to_success(faulty):
    fs = _parallel_fs(faulty)
    payload = b"payload" * 100
    fs.write_file("/f", payload)
    faulty.fail_next("read", times=2, transient=True)
    assert fs.read_file("/f") == payload
    assert faulty.faults_fired["read"] == 2


def test_transient_write_fault_retried_to_success(faulty):
    fs = _parallel_fs(faulty)
    fs.write_file(
        "/f", bytes(4096), hint=Hint.linear(file_size=4096, brick_size=256)
    )
    faulty.fail_next("write", times=1, transient=True)
    payload = bytes(range(256)) * 16
    with fs.open("/f", "r+") as handle:
        handle.write(0, payload)
        assert handle.stats.retries >= 1
    assert fs.read_file("/f") == payload


def test_retry_counters_land_on_the_faulting_server(faulty):
    fs = _parallel_fs(faulty)
    fs.write_file(
        "/f", bytes(4096), hint=Hint.linear(file_size=4096, brick_size=256)
    )
    faulty.fail_next("read", times=1, server=1, transient=True)
    with fs.open("/f", "r") as handle:
        handle.read(0, 4096)
        assert handle.stats.per_server_retries.get(1, 0) >= 1
        assert handle.stats.retries == sum(
            handle.stats.per_server_retries.values()
        )


def test_permanent_transient_fault_exhausts_budget_and_names_server(faulty):
    """A fault that keeps firing past the retry budget surfaces as
    RetryExhausted carrying the failing server's id."""
    fs = _parallel_fs(faulty, retries=2)
    fs.write_file(
        "/f", bytes(4096), hint=Hint.linear(file_size=4096, brick_size=256)
    )
    faulty.fail_on("read", server=2, transient=True)
    with pytest.raises(RetryExhausted) as excinfo:
        fs.read_file("/f")
    assert "server 2" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, TransientFault)
    # the budget was actually consumed: 1 try + 2 retries
    assert faulty.faults_fired["read"] == 3
    faulty.heal()
    assert fs.read_file("/f") == bytes(4096)


def test_non_transient_fault_bypasses_retry_budget(faulty):
    """Plain InjectedFault must propagate unchanged on first occurrence
    even when the dispatcher has retries available."""
    fs = _parallel_fs(faulty, retries=5)
    fs.write_file("/f", b"x" * 1024)
    faulty.fail_next("read")
    with pytest.raises(InjectedFault):
        fs.read_file("/f")
    assert faulty.faults_fired["read"] == 1
