"""Local-directory backend tests (incl. subfile-name escaping)."""

import pytest

from repro.backends import LocalBackend
from repro.backends.local import escape_subfile_name
from repro.errors import FileSystemError


@pytest.fixture
def backend(tmp_path):
    b = LocalBackend(tmp_path, 2)
    b.create_subfile(0, "/home/user/f")
    return b


def test_escape_injective_and_flat():
    cases = ["/a/b", "/a__b", "a%2Fb", "%", "/", "plain"]
    escaped = [escape_subfile_name(c) for c in cases]
    assert len(set(escaped)) == len(cases)
    for e in escaped:
        assert "/" not in e
    with pytest.raises(FileSystemError):
        escape_subfile_name("bad\x00name")


def test_server_directories_created(tmp_path):
    LocalBackend(tmp_path, 3)
    for i in range(3):
        assert (tmp_path / f"server_{i}").is_dir()


def test_write_read_roundtrip(backend):
    backend.write_extents(0, "/home/user/f", [(0, 5), (100, 3)], b"hellobye")
    assert backend.read_extents(0, "/home/user/f", [(0, 5)]) == b"hello"
    assert backend.read_extents(0, "/home/user/f", [(100, 3)]) == b"bye"
    assert backend.read_extents(0, "/home/user/f", [(50, 4)]) == b"\x00" * 4


def test_subfile_size_grows(backend):
    assert backend.subfile_size(0, "/home/user/f") == 0
    backend.write_extents(0, "/home/user/f", [(64, 4)], b"data")
    assert backend.subfile_size(0, "/home/user/f") == 68


def test_read_past_physical_end(backend):
    backend.write_extents(0, "/home/user/f", [(0, 2)], b"ab")
    assert backend.read_extents(0, "/home/user/f", [(0, 6)]) == b"ab\x00\x00\x00\x00"


def test_missing_subfile_rejected(backend):
    with pytest.raises(FileSystemError):
        backend.read_extents(1, "/home/user/f", [(0, 1)])
    with pytest.raises(FileSystemError):
        backend.write_extents(0, "/ghost", [(0, 1)], b"x")


def test_delete(backend):
    backend.delete_subfile(0, "/home/user/f")
    assert not backend.subfile_exists(0, "/home/user/f")
    backend.delete_subfile(0, "/home/user/f")  # idempotent


def test_wipe(tmp_path):
    b = LocalBackend(tmp_path / "x", 2)
    b.create_subfile(0, "/a")
    b.create_subfile(1, "/b")
    b.wipe()
    assert not b.subfile_exists(0, "/a")
    assert not b.subfile_exists(1, "/b")


def test_persists_across_instances(tmp_path):
    b1 = LocalBackend(tmp_path, 1)
    b1.create_subfile(0, "/f")
    b1.write_extents(0, "/f", [(0, 4)], b"keep")
    b2 = LocalBackend(tmp_path, 1)
    assert b2.read_extents(0, "/f", [(0, 4)]) == b"keep"


def test_performance_numbers(tmp_path):
    b = LocalBackend(tmp_path, 2, performance=[1.0, 3.0])
    assert [s.performance for s in b.servers] == [1.0, 3.0]
    with pytest.raises(FileSystemError):
        LocalBackend(tmp_path, 2, performance=[1.0])
