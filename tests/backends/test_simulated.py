"""Simulated backend tests: functional correctness + clock advance."""

import numpy as np
import pytest

from repro.backends.simulated import SimulatedBackend
from repro.core import DPFS, Hint
from repro.errors import FileSystemError
from repro.netsim import CLASS1, CLASS2


@pytest.fixture
def backend():
    return SimulatedBackend([CLASS1] * 3)


def test_construction_requires_servers():
    with pytest.raises(FileSystemError):
        SimulatedBackend([])


def test_clock_starts_at_zero(backend):
    assert backend.clock == 0.0


def test_io_advances_clock(backend):
    backend.create_subfile(0, "/f")
    t0 = backend.clock
    backend.write_extents(0, "/f", [(0, 1024)], b"x" * 1024)
    t1 = backend.clock
    assert t1 > t0
    backend.read_extents(0, "/f", [(0, 1024)])
    assert backend.clock > t1


def test_metadata_ops_free(backend):
    backend.create_subfile(0, "/f")
    backend.subfile_exists(0, "/f")
    backend.subfile_size(0, "/f")
    backend.delete_subfile(0, "/f")
    assert backend.clock == 0.0


def test_data_still_correct(backend):
    backend.create_subfile(1, "/f")
    backend.write_extents(1, "/f", [(10, 4)], b"data")
    assert backend.read_extents(1, "/f", [(10, 4)]) == b"data"


def test_bigger_transfer_costs_more():
    a = SimulatedBackend([CLASS1])
    b = SimulatedBackend([CLASS1])
    for backend in (a, b):
        backend.create_subfile(0, "/f")
    a.write_extents(0, "/f", [(0, 1024)], b"x" * 1024)
    b.write_extents(0, "/f", [(0, 1024 * 256)], b"x" * (1024 * 256))
    assert b.clock > a.clock


def test_slow_class_costs_more_per_read():
    fast = SimulatedBackend([CLASS1])
    slow = SimulatedBackend([CLASS2])
    for backend in (fast, slow):
        backend.create_subfile(0, "/f")
        backend.write_extents(0, "/f", [(0, 65536)], b"x" * 65536)
    t_fast, t_slow = fast.clock, slow.clock
    fast.read_extents(0, "/f", [(0, 65536)])
    slow.read_extents(0, "/f", [(0, 65536)])
    assert (slow.clock - t_slow) > (fast.clock - t_fast)


def test_scattered_extents_cost_more_than_contiguous():
    """More seeks → more simulated time (the §4.2 coalescing effect)."""
    scattered = SimulatedBackend([CLASS1])
    contiguous = SimulatedBackend([CLASS1])
    for backend in (scattered, contiguous):
        backend.create_subfile(0, "/f")
        backend.write_extents(0, "/f", [(0, 1 << 20)], b"x" * (1 << 20))
    t0s, t0c = scattered.clock, contiguous.clock
    many = [(i * 8192, 4096) for i in range(64)]
    scattered.read_extents(0, "/f", many)
    contiguous.read_extents(0, "/f", [(0, 64 * 4096)])
    assert (scattered.clock - t0s) > (contiguous.clock - t0c)


def test_full_dpfs_stack_on_simulated_backend():
    fs = DPFS(SimulatedBackend([CLASS1] * 4))
    hint = Hint.multidim((32, 32), 8, (8, 8))
    data = np.arange(1024, dtype=np.float64).reshape(32, 32)
    with fs.open("/f", "w", hint=hint) as handle:
        handle.write_array((0, 0), data)
    elapsed_write = fs.backend.clock
    assert elapsed_write > 0
    with fs.open("/f", "r") as handle:
        got = handle.read_array((0, 8), (32, 8), np.float64)
    assert np.array_equal(got, data[:, 8:16])
    assert fs.backend.clock > elapsed_write
