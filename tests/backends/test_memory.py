"""Memory backend tests."""

import pytest

from repro.backends import MemoryBackend
from repro.errors import FileSystemError


@pytest.fixture
def backend():
    b = MemoryBackend(3)
    b.create_subfile(0, "/f")
    return b


def test_server_info_defaults():
    b = MemoryBackend(2, performance=[1.0, 2.5])
    assert b.n_servers == 2
    assert [s.performance for s in b.servers] == [1.0, 2.5]
    assert b.servers[0].name == "mem0"


def test_bad_construction():
    with pytest.raises(FileSystemError):
        MemoryBackend(0)
    with pytest.raises(FileSystemError):
        MemoryBackend(2, performance=[1.0])
    with pytest.raises(FileSystemError):
        MemoryBackend(2, names=["only-one"])


def test_create_idempotent(backend):
    backend.create_subfile(0, "/f")
    assert backend.subfile_exists(0, "/f")
    assert backend.subfile_size(0, "/f") == 0


def test_write_then_read_extents(backend):
    backend.write_extents(0, "/f", [(0, 3), (10, 2)], b"abcXY")
    assert backend.read_extents(0, "/f", [(0, 3)]) == b"abc"
    assert backend.read_extents(0, "/f", [(10, 2)]) == b"XY"
    # gap is zero-filled
    assert backend.read_extents(0, "/f", [(3, 7)]) == b"\x00" * 7


def test_read_past_end_zero_filled(backend):
    backend.write_extents(0, "/f", [(0, 2)], b"hi")
    assert backend.read_extents(0, "/f", [(0, 5)]) == b"hi\x00\x00\x00"


def test_extent_order_preserved(backend):
    backend.write_extents(0, "/f", [(5, 2), (0, 2)], b"BBAA")
    assert backend.read_extents(0, "/f", [(0, 2), (5, 2)]) == b"AABB"


def test_payload_length_checked(backend):
    with pytest.raises(FileSystemError):
        backend.write_extents(0, "/f", [(0, 4)], b"xy")


def test_missing_subfile_rejected(backend):
    with pytest.raises(FileSystemError):
        backend.read_extents(1, "/f", [(0, 1)])
    with pytest.raises(FileSystemError):
        backend.write_extents(1, "/f", [(0, 1)], b"x")
    with pytest.raises(FileSystemError):
        backend.subfile_size(1, "/f")


def test_bad_server_index(backend):
    with pytest.raises(FileSystemError):
        backend.create_subfile(3, "/f")


def test_delete_idempotent(backend):
    backend.delete_subfile(0, "/f")
    assert not backend.subfile_exists(0, "/f")
    backend.delete_subfile(0, "/f")


def test_servers_isolated(backend):
    backend.create_subfile(1, "/f")
    backend.write_extents(0, "/f", [(0, 1)], b"a")
    backend.write_extents(1, "/f", [(0, 1)], b"b")
    assert backend.read_extents(0, "/f", [(0, 1)]) == b"a"
    assert backend.read_extents(1, "/f", [(0, 1)]) == b"b"
