"""Shared fixtures for the DPFS test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DPFS, Hint


@pytest.fixture
def fs() -> DPFS:
    """Fresh in-memory DPFS with 4 equal servers."""
    return DPFS.memory(n_servers=4)


@pytest.fixture
def fs_hetero() -> DPFS:
    """In-memory DPFS with heterogeneous performance numbers (1,1,3,3)."""
    return DPFS.memory(n_servers=4, performance=[1.0, 1.0, 3.0, 3.0])


@pytest.fixture
def local_fs(tmp_path) -> DPFS:
    """Directory-backed DPFS with a durable metadata database."""
    instance = DPFS.local(tmp_path / "dpfs", n_servers=3)
    yield instance
    instance.close()


@pytest.fixture
def small_array() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.random((64, 64))


@pytest.fixture
def multidim_hint() -> Hint:
    return Hint.multidim((64, 64), 8, (16, 16))
