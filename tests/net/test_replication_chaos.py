"""Acceptance scenario for replicated DPFS over the real TCP transport:
3 servers behind chaos proxies, ``replicas=2`` — killing one server
mid-workload and corrupting one subfile on disk both yield byte-correct
reads, nonzero repair/failover counters, and a clean fsck after
``scrub --repair``."""

import pytest

from repro.backends.local import escape_subfile_name
from repro.core import DPFS, Hint, fsck, scrub
from repro.core.brick import replica_subfile
from repro.net import ChaosProxy, DPFSServer

BRICK = 8 * 1024
N = 3


@pytest.fixture
def cluster(tmp_path):
    servers = [DPFSServer(tmp_path / f"srv{i}").start() for i in range(N)]
    proxies = [ChaosProxy(s.address).start() for s in servers]
    fs = DPFS.remote(
        [p.address for p in proxies],
        timeout=5.0,
        reconnect_attempts=0,
        down_after=1,
        busy_retries=0,
        io_retries=1,
        io_backoff_s=0.001,
    )
    yield fs, servers, proxies, tmp_path
    fs.close()
    for p in proxies:
        p.stop()
    for s in servers:
        s.stop()


def rhint(size, replicas=2):
    return Hint.linear(file_size=size, brick_size=BRICK, replicas=replicas)


def payload(n, seed=0):
    return bytes((5 * i + seed) % 256 for i in range(n))


def kill(proxy):
    """Make one server unreachable: refuse new dials, cut live pipes."""
    proxy.drop_next(times=None)
    proxy.sever_all()


def test_kill_one_server_mid_workload(cluster):
    fs, _servers, proxies, _tmp = cluster
    data = payload(6 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    assert fs.read_file("/f") == data

    kill(proxies[0])

    # workload continues: overwrite half the file, then read everything
    fresh = payload(6 * BRICK, seed=77)
    with fs.open("/f", "r+") as h:
        h.write(0, fresh[: 3 * BRICK])
    assert fs.read_file("/f") == fresh[: 3 * BRICK] + data[3 * BRICK :]

    m = fs.metrics
    assert m.counter("dpfs_read_failovers_total").total() >= 1
    assert m.counter("dpfs_write_degraded_total").total() >= 1

    # server comes back with stale copies; scrub repairs them from the
    # surviving replicas and fsck agrees everything is consistent again
    proxies[0].heal()
    report = scrub(fs, repair=True)
    assert not report.unrepaired
    assert fsck(fs).clean
    assert fs.read_file("/f") == fresh[: 3 * BRICK] + data[3 * BRICK :]


def test_corrupt_subfile_on_disk(cluster):
    fs, servers, _proxies, tmp_path = cluster
    data = payload(4 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))

    # garble the primary copy of brick 1 in the server's backing file
    _record, bmap = fs.meta.load_file("/f")
    loc = bmap.location(1)
    disk = tmp_path / f"srv{loc.server}" / escape_subfile_name("/f")
    raw = bytearray(disk.read_bytes())
    raw[loc.local_offset : loc.local_offset + loc.size] = b"\xee" * loc.size
    disk.write_bytes(bytes(raw))

    assert fs.read_file("/f") == data  # byte-correct via the replica
    m = fs.metrics
    assert m.counter("dpfs_repairs_total").total() >= 1
    assert m.counter("dpfs_checksum_errors_total").total() >= 1
    assert (
        m.counter("dpfs_read_failovers_total").by_label("reason")["checksum"]
        >= 1
    )

    # inline read-repair already rewrote the copy: nothing left to find
    assert scrub(fs, repair=True).clean
    assert fsck(fs).clean


def test_corrupt_replica_on_disk_found_by_scrub(cluster):
    fs, _servers, _proxies, tmp_path = cluster
    data = payload(3 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))

    record, _bmap = fs.meta.load_file("/f")
    rmap = fs.meta.load_replica_map("/f", record)
    rloc = rmap.locations(0)[0]
    disk = tmp_path / f"srv{rloc.server}" / escape_subfile_name(
        replica_subfile("/f")
    )
    raw = bytearray(disk.read_bytes())
    raw[rloc.local_offset] ^= 0xFF
    disk.write_bytes(bytes(raw))

    # reads prefer the intact primary; only the scrubber sees the damage
    assert fs.read_file("/f") == data
    report = scrub(fs)
    assert report.by_kind("checksum-mismatch")
    assert not scrub(fs, repair=True).unrepaired
    assert scrub(fs).clean and fsck(fs).clean


def test_wire_corruption_detected_and_retried(cluster):
    fs, _servers, proxies, _tmp = cluster
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))

    for p in proxies:
        p.corrupt_next(times=1)  # flip a byte in the next data reply

    # the flipped frame fails the wire checksum, the socket is discarded,
    # and the dispatcher's transient retry re-reads clean bytes
    assert fs.read_file("/f") == data
    assert sum(p.faults_fired.get("corrupt", 0) for p in proxies) >= 1


def test_replicated_write_fans_to_both_copies(cluster):
    fs, servers, _proxies, tmp_path = cluster
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    record, bmap = fs.meta.load_file("/f")
    rmap = fs.meta.load_replica_map("/f", record)
    for brick_id in range(len(bmap)):
        loc = bmap.location(brick_id)
        rloc = rmap.locations(brick_id)[0]
        primary = (tmp_path / f"srv{loc.server}" / escape_subfile_name("/f")).read_bytes()
        replica = (
            tmp_path
            / f"srv{rloc.server}"
            / escape_subfile_name(replica_subfile("/f"))
        ).read_bytes()
        want = data[brick_id * BRICK : (brick_id + 1) * BRICK]
        assert primary[loc.local_offset : loc.local_offset + loc.size] == want
        assert replica[rloc.local_offset : rloc.local_offset + rloc.size] == want
