"""Integration tests for the real TCP server/client transport (§2)."""

import threading

import numpy as np
import pytest

from repro.core import DPFS, Hint
from repro.errors import FileSystemError, TransportError
from repro.net import DPFSServer, RemoteBackend, ServerConnection


@pytest.fixture
def server(tmp_path):
    with DPFSServer(tmp_path / "srv", performance=2.0, capacity=123456) as s:
        yield s


@pytest.fixture
def conn(server):
    c = ServerConnection(*server.address)
    yield c
    c.close()


def test_ping_reports_identity(conn):
    assert conn.info.performance == 2.0
    assert conn.info.capacity == 123456
    assert conn.info.name.startswith("dpfs://")


def test_create_exists_delete(conn):
    assert not conn.exists("/f")
    conn.create("/f")
    assert conn.exists("/f")
    assert conn.size("/f") == 0
    conn.delete("/f")
    assert not conn.exists("/f")


def test_write_read_extents(conn):
    conn.create("/f")
    conn.write("/f", [(0, 5), (100, 3)], b"hellobye")
    assert conn.read("/f", [(0, 5)]) == b"hello"
    assert conn.read("/f", [(100, 3)]) == b"bye"
    assert conn.read("/f", [(50, 2)]) == b"\x00\x00"
    assert conn.size("/f") == 103


def test_server_error_propagates_as_exception(conn):
    with pytest.raises(FileSystemError):
        conn.size("/missing")
    with pytest.raises(FileSystemError):
        conn.read("/missing", [(0, 1)])


def test_connection_survives_error(conn):
    with pytest.raises(FileSystemError):
        conn.size("/missing")
    conn.create("/ok")
    assert conn.exists("/ok")


def test_connect_refused_raises_transport_error():
    with pytest.raises(TransportError):
        ServerConnection("127.0.0.1", 1, timeout=0.5)


def test_concurrent_clients(server):
    """Several client threads against one server — the paper's
    concurrent-handler model."""
    errors = []

    def work(n):
        try:
            c = ServerConnection(*server.address)
            name = f"/t{n}"
            c.create(name)
            payload = bytes([n]) * 1000
            c.write(name, [(0, 1000)], payload)
            assert c.read(name, [(0, 1000)]) == payload
            c.close()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert server.requests_served >= 8 * 4


def test_remote_backend_full_stack(tmp_path):
    """The whole DPFS stack over three real TCP servers."""
    servers = [
        DPFSServer(tmp_path / f"s{i}", performance=1.0 + i).start()
        for i in range(3)
    ]
    try:
        backend = RemoteBackend([s.address for s in servers])
        fs = DPFS(backend)
        assert [row["performance"] for row in fs.servers()] == [1.0, 2.0, 3.0]

        hint = Hint.multidim((32, 32), 8, (8, 8))
        data = np.arange(1024, dtype=np.float64).reshape(32, 32)
        with fs.open("/grid", "w", hint=hint) as handle:
            handle.write_array((0, 0), data)
        with fs.open("/grid", "r") as handle:
            col = handle.read_array((0, 16), (32, 8), np.float64)
        assert np.array_equal(col, data[:, 16:24])

        # subfiles really live on the servers' local directories
        sizes = [
            backend.subfile_size(i, "/grid")
            for i in range(3)
            if backend.subfile_exists(i, "/grid")
        ]
        assert sum(sizes) >= data.nbytes

        fs.remove("/grid")
        assert not backend.subfile_exists(0, "/grid")
        fs.close()
    finally:
        for s in servers:
            s.stop()


def test_remote_backend_needs_addresses():
    with pytest.raises(TransportError):
        RemoteBackend([])


def test_rename_over_tcp(conn):
    conn.create("/old")
    conn.write("/old", [(0, 4)], b"data")
    conn.rename("/old", "/new")
    assert not conn.exists("/old")
    assert conn.read("/new", [(0, 4)]) == b"data"


def test_rename_missing_subfile_raises(conn):
    """A silent ok would let metadata and storage diverge — the server
    must report the missing subfile the same way ``size`` does, and the
    client maps it to FileSystemError like the other ops."""
    with pytest.raises(FileSystemError):
        conn.rename("/ghost", "/elsewhere")
    # the connection survives the error (no desync, no discard)
    conn.create("/ok")
    assert conn.exists("/ok")
