"""Server overload and client retry (§4.2: un-handled requests "have to
try again later"), including busy storms under the parallel dispatch
layer's pool fan-out."""

import threading
import time

import pytest

from repro.core import DPFS, Hint
from repro.errors import ServerBusyError, ServerError
from repro.net import DPFSServer, RemoteBackend, ServerConnection


@pytest.fixture
def busy_server(tmp_path):
    # the artificial I/O delay guarantees concurrent arrivals overlap,
    # making rejection deterministic
    with DPFSServer(
        tmp_path / "srv", max_concurrent=1, io_delay_s=0.005
    ) as server:
        yield server


def test_unlimited_server_never_rejects(tmp_path):
    with DPFSServer(tmp_path / "s") as server:
        conn = ServerConnection(*server.address)
        conn.create("/f")
        for _ in range(10):
            conn.write("/f", [(0, 10)], b"0123456789")
        assert server.requests_rejected == 0
        conn.close()


def test_flood_triggers_rejection_and_retry(busy_server):
    """Many concurrent connections against max_concurrent=1: rejections
    happen, retries recover, every request eventually succeeds."""
    n_threads = 8
    per_thread = 5
    payload = b"x" * 4096
    errors = []
    retried = []

    def work(n):
        try:
            conn = ServerConnection(
                *busy_server.address, busy_retries=50, busy_backoff_s=0.002
            )
            name = f"/t{n}"
            conn.create(name)
            for _ in range(per_thread):
                conn.write(name, [(0, len(payload))], payload)
                assert conn.read(name, [(0, 16)]) == payload[:16]
            retried.append(conn.retried_requests)
            conn.close()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # with 8 writers against a 1-slot server, rejections are certain
    assert busy_server.requests_rejected > 0
    assert sum(retried) > 0


def test_retries_exhausted_surface_as_server_error(tmp_path):
    with DPFSServer(tmp_path / "s", max_concurrent=1) as server:
        blocker = ServerConnection(*server.address)
        blocker.create("/big")
        victim = ServerConnection(
            *server.address, busy_retries=1, busy_backoff_s=0.001
        )
        victim.create("/v")

        hold = threading.Event()
        release = threading.Event()

        # occupy the only slot with a long write from another thread
        def occupy():
            hold.set()
            blocker.write("/big", [(0, 1 << 22)], b"z" * (1 << 22))
            release.set()

        t = threading.Thread(target=occupy)
        t.start()
        hold.wait()
        # hammer until we observe the busy error (the blocker may finish
        # fast, so loop a few times)
        saw_busy = False
        for _ in range(50):
            if release.is_set():
                break
            try:
                victim.write("/v", [(0, 4)], b"abcd")
            except ServerError as exc:
                assert "ServerBusy" in str(exc)
                saw_busy = True
                break
        t.join()
        blocker.close()
        victim.close()
        # whether we caught it depends on timing; the rejection counter
        # is the reliable signal when we did
        if saw_busy:
            assert server.requests_rejected > 0


def test_metadata_ops_not_throttled(busy_server):
    """Only read/write are admission-controlled; create/exists/ping pass."""
    conn = ServerConnection(*busy_server.address)
    conn.create("/meta")
    assert conn.exists("/meta")
    assert conn.size("/meta") == 0
    conn.close()
    assert busy_server.requests_rejected == 0


# ---------------------------------------------------------------------------
# busy rejections × the parallel dispatch layer
# ---------------------------------------------------------------------------

def test_busy_rejection_is_typed_and_transient(tmp_path):
    """With the connection-level retry disabled, a busy rejection
    surfaces as ServerBusyError — marked transient for the dispatcher."""
    with DPFSServer(tmp_path / "s", max_concurrent=1) as server:
        blocker = ServerConnection(*server.address)
        blocker.create("/big")
        victim = ServerConnection(*server.address, busy_retries=0)
        victim.create("/v")

        hold = threading.Event()
        release = threading.Event()

        def occupy():
            hold.set()
            blocker.write("/big", [(0, 1 << 22)], b"z" * (1 << 22))
            release.set()

        t = threading.Thread(target=occupy)
        t.start()
        hold.wait()
        saw_busy = None
        for _ in range(50):
            if release.is_set():
                break
            try:
                victim.write("/v", [(0, 4)], b"abcd")
            except ServerBusyError as exc:
                saw_busy = exc
                break
        t.join()
        blocker.close()
        victim.close()
        if saw_busy is not None:
            assert isinstance(saw_busy, ServerError)
            assert saw_busy.transient
            assert "ServerBusy" in str(saw_busy)


def test_pool_fanout_drains_busy_cluster_without_deadlock(tmp_path):
    """Several DPFS clients (each with an 8-way dispatch pool) hammer
    two 1-slot servers: rejections fire, retries drain every request,
    nothing deadlocks and every byte lands."""
    n_clients = 4
    size = 64 * 1024
    with DPFSServer(
        tmp_path / "s0", max_concurrent=1, io_delay_s=0.003
    ) as s0, DPFSServer(
        tmp_path / "s1", max_concurrent=1, io_delay_s=0.003
    ) as s1:
        addresses = [s0.address, s1.address]
        clients = [
            DPFS(
                RemoteBackend(addresses, busy_retries=50, busy_backoff_s=0.001),
                io_workers=8,
            )
            for _ in range(n_clients)
        ]
        payloads = [bytes([i + 1]) * size for i in range(n_clients)]
        errors = []
        barrier = threading.Barrier(n_clients)

        def work(i):
            try:
                barrier.wait(timeout=30)
                clients[i].write_file(
                    f"/c{i}",
                    payloads[i],
                    hint=Hint.linear(file_size=size, brick_size=4096),
                )
                assert clients[i].read_file(f"/c{i}") == payloads[i]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "fan-out deadlocked"
        assert not errors
        # 4 clients × 8 workers against two 1-slot servers with a per-op
        # delay: overlapping arrivals are guaranteed, so the admission
        # gate must have fired and the retries must have drained it
        assert s0.requests_rejected + s1.requests_rejected > 0
        for fs in clients:
            fs.close()


def test_dispatcher_budget_covers_busy_when_connection_does_not(tmp_path):
    """busy_retries=0 delegates §4.2 retrying entirely to the dispatch
    layer: a read issued while a blocker provably holds the single slot
    is rejected, absorbed by the dispatcher's budget, and still returns
    the right bytes."""
    size = 16 * 1024
    with DPFSServer(tmp_path / "s", max_concurrent=1, io_delay_s=0.05) as server:
        victim_fs = DPFS(
            RemoteBackend([server.address], busy_retries=0),
            io_workers=4,
            io_retries=500,
            io_backoff_s=0.001,
        )
        payload = bytes(range(256)) * (size // 256)
        victim_fs.write_file(
            "/f", payload, hint=Hint.linear(file_size=size, brick_size=1024)
        )
        blocker = ServerConnection(*server.address)
        blocker.create("/slab")
        retries = 0
        # a couple of rounds as a safety margin: each round waits until
        # the blocker's write is *admitted* (observable server state,
        # not a timing guess), so the victim's read — arriving within
        # the >=50ms the slot stays held — is all but certain to be
        # rejected on its first attempt
        for _ in range(5):
            t = threading.Thread(
                target=blocker.write, args=("/slab", [(0, 1 << 20)], b"z" * (1 << 20))
            )
            t.start()
            deadline = time.monotonic() + 10
            while server._inflight == 0 and time.monotonic() < deadline:
                time.sleep(0.0005)
            assert server._inflight == 1, "blocker never occupied the slot"
            with victim_fs.open("/f", "r") as handle:
                assert handle.read(0, size) == payload
                retries += handle.stats.retries
            t.join(timeout=30)
            if retries > 0:
                break
        blocker.close()
        assert retries > 0, "victim never hit the admission gate"
        assert server.requests_rejected > 0
        assert victim_fs.dispatcher.stats.retries == retries
        victim_fs.close()
