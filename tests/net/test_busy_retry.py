"""Server overload and client retry (§4.2: un-handled requests "have to
try again later")."""

import threading
import time

import pytest

from repro.errors import ServerError
from repro.net import DPFSServer, ServerConnection


@pytest.fixture
def busy_server(tmp_path):
    # the artificial I/O delay guarantees concurrent arrivals overlap,
    # making rejection deterministic
    with DPFSServer(
        tmp_path / "srv", max_concurrent=1, io_delay_s=0.005
    ) as server:
        yield server


def test_unlimited_server_never_rejects(tmp_path):
    with DPFSServer(tmp_path / "s") as server:
        conn = ServerConnection(*server.address)
        conn.create("/f")
        for _ in range(10):
            conn.write("/f", [(0, 10)], b"0123456789")
        assert server.requests_rejected == 0
        conn.close()


def test_flood_triggers_rejection_and_retry(busy_server):
    """Many concurrent connections against max_concurrent=1: rejections
    happen, retries recover, every request eventually succeeds."""
    n_threads = 8
    per_thread = 5
    payload = b"x" * 4096
    errors = []
    retried = []

    def work(n):
        try:
            conn = ServerConnection(
                *busy_server.address, busy_retries=50, busy_backoff_s=0.002
            )
            name = f"/t{n}"
            conn.create(name)
            for _ in range(per_thread):
                conn.write(name, [(0, len(payload))], payload)
                assert conn.read(name, [(0, 16)]) == payload[:16]
            retried.append(conn.retried_requests)
            conn.close()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # with 8 writers against a 1-slot server, rejections are certain
    assert busy_server.requests_rejected > 0
    assert sum(retried) > 0


def test_retries_exhausted_surface_as_server_error(tmp_path):
    with DPFSServer(tmp_path / "s", max_concurrent=1) as server:
        blocker = ServerConnection(*server.address)
        blocker.create("/big")
        victim = ServerConnection(
            *server.address, busy_retries=1, busy_backoff_s=0.001
        )
        victim.create("/v")

        hold = threading.Event()
        release = threading.Event()

        # occupy the only slot with a long write from another thread
        def occupy():
            hold.set()
            blocker.write("/big", [(0, 1 << 22)], b"z" * (1 << 22))
            release.set()

        t = threading.Thread(target=occupy)
        t.start()
        hold.wait()
        # hammer until we observe the busy error (the blocker may finish
        # fast, so loop a few times)
        saw_busy = False
        for _ in range(50):
            if release.is_set():
                break
            try:
                victim.write("/v", [(0, 4)], b"abcd")
            except ServerError as exc:
                assert "ServerBusy" in str(exc)
                saw_busy = True
                break
        t.join()
        blocker.close()
        victim.close()
        # whether we caught it depends on timing; the rejection counter
        # is the reliable signal when we did
        if saw_busy:
            assert server.requests_rejected > 0


def test_metadata_ops_not_throttled(busy_server):
    """Only read/write are admission-controlled; create/exists/ping pass."""
    conn = ServerConnection(*busy_server.address)
    conn.create("/meta")
    assert conn.exists("/meta")
    assert conn.size("/meta") == 0
    conn.close()
    assert busy_server.requests_rejected == 0
