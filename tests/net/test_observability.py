"""Wire-level observability: the stats op, rid propagation, net metrics."""

import pytest

from repro.core import DPFS, Hint
from repro.net import DPFSServer, RemoteBackend

SIZE = 32 * 1024


@pytest.fixture
def cluster(tmp_path):
    with DPFSServer(tmp_path / "s0") as s0, DPFSServer(tmp_path / "s1") as s1:
        yield [s0, s1]


def _traced_fs(cluster, **kwargs):
    backend = RemoteBackend([s.address for s in cluster])
    return DPFS(backend, tracing=True, **kwargs)


def _roundtrip(fs):
    data = bytes(range(256)) * (SIZE // 256)
    hint = Hint(file_size=SIZE, brick_size=SIZE // 4)
    with fs.open("/f", "w", hint) as h:
        h.write(0, data)
    with fs.open("/f") as h:
        assert bytes(h.read(0, SIZE)) == data


def test_stats_op_returns_metrics_and_spans(cluster):
    fs = _traced_fs(cluster)
    _roundtrip(fs)
    for entry in fs.backend.server_stats():
        assert entry["name"].startswith("dpfs://")
        assert "dpfs_server_requests_total" in entry["metrics"]
        assert 'op="read"' in entry["metrics"]
        assert 'op="write"' in entry["metrics"]
    fs.close()


def test_rid_matches_client_trace_on_every_server(cluster):
    fs = _traced_fs(cluster)
    _roundtrip(fs)
    rids = {t.trace_id for t in fs.tracer.traces()}
    assert len(rids) == 2  # one write trace, one read trace
    for entry in fs.backend.server_stats():
        server_rids = {rec["rid"] for rec in entry["spans"]}
        # every logged server span belongs to a client trace
        assert server_rids
        assert server_rids <= rids
        for rec in entry["spans"]:
            assert rec["name"] in ("server.read", "server.write")
            assert rec["duration_s"] >= 0.0
            assert rec["nbytes"] > 0
    fs.close()


def test_no_rid_without_tracing(cluster):
    backend = RemoteBackend([s.address for s in cluster])
    fs = DPFS(backend)  # tracing disabled
    _roundtrip(fs)
    for entry in fs.backend.server_stats():
        assert entry["spans"] == []  # span log needs a rid to record
        assert "dpfs_server_requests_total" in entry["metrics"]
    fs.close()


def test_client_net_metrics_recorded(cluster):
    fs = _traced_fs(cluster)
    _roundtrip(fs)
    text = fs.metrics.render()
    assert 'dpfs_net_requests_total{op="write"}' in text
    assert 'dpfs_net_requests_total{op="read"}' in text
    assert "dpfs_net_roundtrip_seconds_count" in text
    sent = fs.metrics.get("dpfs_net_bytes_sent_total")
    received = fs.metrics.get("dpfs_net_bytes_received_total")
    assert sent.total() >= SIZE
    assert received.total() >= SIZE
    fs.close()


def test_trace_tree_spans_all_phases(cluster):
    fs = _traced_fs(cluster, cache_bytes=1 << 20)
    _roundtrip(fs)
    read_trace = fs.tracer.last()
    assert read_trace.name == "handle.read"
    names = {s.name for s in read_trace.spans}
    assert {
        "handle.read",
        "cache.lookup",
        "combine.plan",
        "dispatch.batch",
        "dispatch.request",
        "net.rpc",
    } <= names
    # net.rpc spans sit under their dispatch.request parents
    by_id = {s.span_id: s for s in read_trace.spans}
    for s in read_trace.spans:
        if s.name == "net.rpc":
            assert by_id[s.parent_id].name == "dispatch.request"
    fs.close()
