"""Wire protocol framing tests over a socketpair."""

import socket
import struct
import threading

import pytest

from repro.errors import ProtocolError
from repro.net.protocol import MAX_HEADER, recv_message, send_message


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def test_roundtrip_header_only(pair):
    a, b = pair
    send_message(a, {"op": "ping"})
    header, payload = recv_message(b)
    assert header == {"op": "ping"}
    assert payload == b""


def test_roundtrip_with_payload(pair):
    a, b = pair
    blob = bytes(range(256)) * 10
    send_message(a, {"op": "write", "extents": [[0, len(blob)]]}, blob)
    header, payload = recv_message(b)
    assert header["op"] == "write"
    assert payload == blob


def test_multiple_messages_in_sequence(pair):
    a, b = pair
    for i in range(5):
        send_message(a, {"seq": i}, bytes([i]))
    for i in range(5):
        header, payload = recv_message(b)
        assert header["seq"] == i
        assert payload == bytes([i])


def test_large_payload_chunked_delivery(pair):
    a, b = pair
    blob = b"z" * (1 << 20)

    def sender():
        send_message(a, {"op": "read"}, blob)

    t = threading.Thread(target=sender)
    t.start()
    header, payload = recv_message(b)
    t.join()
    assert payload == blob


def test_eof_mid_message_raises(pair):
    a, b = pair
    a.sendall(struct.pack("!II", 100, 0))  # promises 100-byte header
    a.close()
    with pytest.raises(ProtocolError):
        recv_message(b)


def test_oversized_header_rejected(pair):
    a, b = pair
    a.sendall(struct.pack("!II", MAX_HEADER + 1, 0))
    with pytest.raises(ProtocolError):
        recv_message(b)


def test_malformed_json_rejected(pair):
    a, b = pair
    garbage = b"not json!!"
    a.sendall(struct.pack("!II", len(garbage), 0) + garbage)
    with pytest.raises(ProtocolError):
        recv_message(b)


def test_non_object_header_rejected(pair):
    a, b = pair
    body = b"[1, 2, 3]"
    a.sendall(struct.pack("!II", len(body), 0) + body)
    with pytest.raises(ProtocolError):
        recv_message(b)


def test_send_oversized_header_rejected(pair):
    a, _b = pair
    with pytest.raises(ProtocolError):
        send_message(a, {"x": "y" * (MAX_HEADER + 1)})


def test_send_oversized_payload_rejected(pair, monkeypatch):
    import repro.net.protocol as protocol

    monkeypatch.setattr(protocol, "MAX_PAYLOAD", 1024)
    a, _b = pair
    with pytest.raises(ProtocolError, match="payload too large"):
        send_message(a, {"op": "write"}, b"x" * 2048)


def test_oversized_declared_payload_rejected(pair):
    from repro.net.protocol import MAX_PAYLOAD

    a, b = pair
    a.sendall(struct.pack("!II", 2, MAX_PAYLOAD + 1))
    with pytest.raises(ProtocolError):
        recv_message(b)


def test_payload_crc_attached_and_verified(pair):
    a, b = pair
    send_message(a, {"op": "write"}, b"hello")
    header, payload = recv_message(b)
    assert "crc" in header and "crc_algo" in header
    assert payload == b"hello"


def test_payload_crc_mismatch_rejected(pair):
    a, b = pair
    raw = b'{"op":"read","crc":1,"crc_algo":"crc32"}'
    a.sendall(struct.pack("!II", len(raw), 5) + raw + b"hello")
    with pytest.raises(ProtocolError, match="checksum"):
        recv_message(b)


def test_unknown_crc_algo_skips_verification(pair):
    a, b = pair
    raw = b'{"op":"read","crc":1,"crc_algo":"sha999"}'
    a.sendall(struct.pack("!II", len(raw), 5) + raw + b"hello")
    _header, payload = recv_message(b)
    assert payload == b"hello"


def test_header_only_frames_carry_no_crc(pair):
    a, b = pair
    send_message(a, {"op": "ping"})
    header, _ = recv_message(b)
    assert "crc" not in header
