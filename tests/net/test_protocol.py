"""Wire protocol framing tests over a socketpair."""

import socket
import struct
import threading

import pytest

from repro.errors import ProtocolError
from repro.net.protocol import MAX_HEADER, recv_message, send_message


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def test_roundtrip_header_only(pair):
    a, b = pair
    send_message(a, {"op": "ping"})
    header, payload = recv_message(b)
    assert header == {"op": "ping"}
    assert payload == b""


def test_roundtrip_with_payload(pair):
    a, b = pair
    blob = bytes(range(256)) * 10
    send_message(a, {"op": "write", "extents": [[0, len(blob)]]}, blob)
    header, payload = recv_message(b)
    assert header["op"] == "write"
    assert payload == blob


def test_multiple_messages_in_sequence(pair):
    a, b = pair
    for i in range(5):
        send_message(a, {"seq": i}, bytes([i]))
    for i in range(5):
        header, payload = recv_message(b)
        assert header["seq"] == i
        assert payload == bytes([i])


def test_large_payload_chunked_delivery(pair):
    a, b = pair
    blob = b"z" * (1 << 20)

    def sender():
        send_message(a, {"op": "read"}, blob)

    t = threading.Thread(target=sender)
    t.start()
    header, payload = recv_message(b)
    t.join()
    assert payload == blob


def test_eof_mid_message_raises(pair):
    a, b = pair
    a.sendall(struct.pack("!II", 100, 0))  # promises 100-byte header
    a.close()
    with pytest.raises(ProtocolError):
        recv_message(b)


def test_oversized_header_rejected(pair):
    a, b = pair
    a.sendall(struct.pack("!II", MAX_HEADER + 1, 0))
    with pytest.raises(ProtocolError):
        recv_message(b)


def test_malformed_json_rejected(pair):
    a, b = pair
    garbage = b"not json!!"
    a.sendall(struct.pack("!II", len(garbage), 0) + garbage)
    with pytest.raises(ProtocolError):
        recv_message(b)


def test_non_object_header_rejected(pair):
    a, b = pair
    body = b"[1, 2, 3]"
    a.sendall(struct.pack("!II", len(body), 0) + body)
    with pytest.raises(ProtocolError):
        recv_message(b)


def test_send_oversized_header_rejected(pair):
    a, _b = pair
    with pytest.raises(ProtocolError):
        send_message(a, {"x": "y" * (MAX_HEADER + 1)})
