"""Property-based fuzzing of the wire protocol.

Invariants: any (header, payload) pair we can send is received intact;
arbitrary garbage bytes never hang the receiver — they either parse or
raise :class:`ProtocolError` promptly.
"""

import json
import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.protocol import MAX_HEADER, MAX_PAYLOAD, recv_message, send_message

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=64),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=16), children, max_size=4),
    ),
    max_leaves=16,
)
headers = st.dictionaries(st.text(min_size=1, max_size=32), json_values, max_size=8)


def _without_crc(header):
    return {k: v for k, v in header.items() if k not in ("crc", "crc_algo")}


@given(headers, st.binary(max_size=4096))
@settings(max_examples=75, deadline=None)
def test_roundtrip_arbitrary_header_and_payload(header, payload):
    a, b = socket.socketpair()
    try:
        send_message(a, header, payload)
        got_header, got_payload = recv_message(b)
        # the wire adds (and verifies) crc/crc_algo on any payload-carrying
        # frame; everything the caller put in the header survives untouched
        assert _without_crc(got_header) == _without_crc(header)
        if payload:
            assert "crc" in got_header
        assert got_payload == payload
    finally:
        a.close()
        b.close()


@given(st.binary(min_size=1, max_size=4096), st.integers(min_value=0))
@settings(max_examples=75, deadline=None)
def test_corrupt_payload_byte_always_detected(payload, seed):
    """Flipping any single payload bit must raise ProtocolError."""
    pos = seed % len(payload)
    bit = 1 << (seed % 8)
    a, b = socket.socketpair()
    try:
        send_message(a, {"op": "read"}, payload)
        # re-frame with one bit flipped, keeping the original header
        frame_header, _ = recv_message(b)
        mutated = bytearray(payload)
        mutated[pos] ^= bit
        raw = json.dumps(frame_header).encode()
        a.sendall(struct.pack("!II", len(raw), len(mutated)) + raw + mutated)
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        a.close()
        b.close()


@given(st.binary(min_size=8, max_size=256))
@settings(max_examples=75, deadline=None)
def test_garbage_never_hangs(blob):
    """Random bytes with a self-consistent length prefix either parse or
    raise ProtocolError — never block or crash differently."""
    header_len, payload_len = struct.unpack("!II", blob[:8])
    body = blob[8:]
    # make the declared lengths consistent with what we actually send so
    # recv doesn't (correctly) block waiting for more bytes
    header_len = min(header_len % 64, len(body))
    payload_len = len(body) - header_len
    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack("!II", header_len, payload_len) + body)
        a.close()
        try:
            header, payload = recv_message(b)
        except ProtocolError:
            pass
        else:
            assert isinstance(header, dict)
            assert len(payload) == payload_len
    finally:
        b.close()


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=75, deadline=None)
def test_garbage_prefix_lengths_rejected_before_allocation(header_len, payload_len):
    """A prefix declaring absurd lengths must raise promptly from the
    prefix alone — no body is ever sent, so passing proves the receiver
    neither waited for it nor tried to allocate it."""
    if header_len <= MAX_HEADER and payload_len <= MAX_PAYLOAD:
        return
    a, b = socket.socketpair()
    try:
        b.settimeout(5.0)
        a.sendall(struct.pack("!II", header_len, payload_len))
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        a.close()
        b.close()


@given(headers, st.binary(min_size=2, max_size=4096), st.integers(min_value=0))
@settings(max_examples=50, deadline=None)
def test_truncated_frame_raises(header, payload, seed):
    """A frame cut anywhere mid-body (then closed) raises ProtocolError."""
    raw = json.dumps(header).encode()
    frame = struct.pack("!II", len(raw), len(payload)) + raw + payload
    cut = 8 + seed % (len(frame) - 8 - 1)  # keep the full prefix, lose body
    a, b = socket.socketpair()
    try:
        a.sendall(frame[:cut])
        a.close()
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        b.close()


@given(st.binary(max_size=7))
@settings(max_examples=30, deadline=None)
def test_truncated_prefix_raises(blob):
    a, b = socket.socketpair()
    try:
        a.sendall(blob)
        a.close()
        try:
            recv_message(b)
        except ProtocolError:
            pass
        else:  # pragma: no cover
            raise AssertionError("short prefix must not parse")
    finally:
        b.close()
