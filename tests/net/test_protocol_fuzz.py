"""Property-based fuzzing of the wire protocol.

Invariants: any (header, payload) pair we can send is received intact;
arbitrary garbage bytes never hang the receiver — they either parse or
raise :class:`ProtocolError` promptly.
"""

import socket
import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.protocol import recv_message, send_message

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=64),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=16), children, max_size=4),
    ),
    max_leaves=16,
)
headers = st.dictionaries(st.text(min_size=1, max_size=32), json_values, max_size=8)


@given(headers, st.binary(max_size=4096))
@settings(max_examples=75, deadline=None)
def test_roundtrip_arbitrary_header_and_payload(header, payload):
    a, b = socket.socketpair()
    try:
        send_message(a, header, payload)
        got_header, got_payload = recv_message(b)
        assert got_header == header
        assert got_payload == payload
    finally:
        a.close()
        b.close()


@given(st.binary(min_size=8, max_size=256))
@settings(max_examples=75, deadline=None)
def test_garbage_never_hangs(blob):
    """Random bytes with a self-consistent length prefix either parse or
    raise ProtocolError — never block or crash differently."""
    header_len, payload_len = struct.unpack("!II", blob[:8])
    body = blob[8:]
    # make the declared lengths consistent with what we actually send so
    # recv doesn't (correctly) block waiting for more bytes
    header_len = min(header_len % 64, len(body))
    payload_len = len(body) - header_len
    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack("!II", header_len, payload_len) + body)
        a.close()
        try:
            header, payload = recv_message(b)
        except ProtocolError:
            pass
        else:
            assert isinstance(header, dict)
            assert len(payload) == payload_len
    finally:
        b.close()


@given(st.binary(max_size=7))
@settings(max_examples=30, deadline=None)
def test_truncated_prefix_raises(blob):
    a, b = socket.socketpair()
    try:
        a.sendall(blob)
        a.close()
        try:
            recv_message(b)
        except ProtocolError:
            pass
        else:  # pragma: no cover
            raise AssertionError("short prefix must not parse")
    finally:
        b.close()
