"""Chaos-proxy fault injection: every schedule of
:class:`repro.net.chaos.ChaosProxy`, the socket-desync repro, and the
acceptance scenario — a server killed and restarted mid-workload with
zero data corruption and an observable DOWN → UP transition."""

import threading
import time

import pytest

from repro.core import DPFS, Hint
from repro.errors import ConnectionLost, TransportError
from repro.net import ChaosProxy, DPFSServer, ServerConnection, ServerHealth


@pytest.fixture
def server(tmp_path):
    with DPFSServer(tmp_path / "srv") as s:
        yield s


@pytest.fixture
def proxy(server):
    with ChaosProxy(server.address) as p:
        yield p


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------

def test_proxy_passthrough(proxy):
    conn = ServerConnection(*proxy.address)
    conn.create("/f")
    conn.write("/f", [(0, 5)], b"hello")
    assert conn.read("/f", [(0, 5)]) == b"hello"
    assert conn.health is ServerHealth.UP
    conn.close()


def test_drop_schedule_fails_one_connection(proxy):
    conn = ServerConnection(*proxy.address, reconnect_attempts=0)
    conn.create("/f")
    proxy.sever_all()       # kill the idle socket…
    proxy.drop_next(times=1)  # …and drop the replacement connection
    with pytest.raises(TransportError):
        conn.exists("/f")   # strike 1: dead idle socket
    # rule exhausted after one dropped dial: the pool reconnects and
    # the server answers again
    assert wait_until(lambda: _recovers(conn, "/f"))
    assert proxy.faults_fired["drop"] == 1
    conn.close()


def _recovers(conn, name):
    """True once a request makes it through the transport at all."""
    try:
        conn.exists(name)
    except TransportError:
        return False
    return True


def test_delay_schedule_holds_a_reply(proxy):
    conn = ServerConnection(*proxy.address)
    conn.create("/f")
    proxy.delay_messages(0.25, times=1)
    start = time.perf_counter()
    assert conn.exists("/f")
    assert time.perf_counter() - start >= 0.25
    assert proxy.faults_fired["delay"] == 1
    conn.close()


def test_truncate_mid_frame_is_transient_and_discards_socket(proxy):
    conn = ServerConnection(*proxy.address)
    conn.create("/f")
    conn.write("/f", [(0, 1024)], b"y" * 1024)
    proxy.truncate_next(times=1)
    with pytest.raises(ConnectionLost) as excinfo:
        conn.read("/f", [(0, 1024)])
    assert excinfo.value.transient
    snap = conn.health_snapshot()
    assert snap["discarded"] == 1
    assert snap["health"] == "DEGRADED"
    # the very next request runs on a fresh socket and sees clean bytes
    assert conn.read("/f", [(0, 1024)]) == b"y" * 1024
    assert conn.health is ServerHealth.UP
    conn.close()


def test_sever_after_n_messages_kills_one_connection(proxy):
    conn = ServerConnection(*proxy.address, pool_size=1)
    # constructor ping relayed 2 frames on the live pipe; the next
    # request's reply is frame 4 — sever right before forwarding it
    proxy.sever_after(4, times=1)
    with pytest.raises(ConnectionLost):
        conn.exists("/whatever")
    assert proxy.faults_fired["sever"] == 1
    assert wait_until(lambda: _recovers(conn, "/whatever"))
    conn.close()


# ---------------------------------------------------------------------------
# the desync repro
# ---------------------------------------------------------------------------

def test_timeout_mid_exchange_does_not_desync_the_pool(proxy, server):
    """A reply held past the client's socket timeout must never be read
    by a later request: the timed-out socket is discarded, so request 2
    gets *its* answer, not request 1's stale reply."""
    conn = ServerConnection(*proxy.address, timeout=0.2, pool_size=1)
    conn.create("/a")            # exists("/a") -> True
    proxy.delay_messages(0.6, times=1)
    with pytest.raises(ConnectionLost):
        conn.exists("/a")        # reply arrives 0.4s after the timeout
    # old single-socket behavior: this would read the stale
    # exists("/a")=True frame and answer True for a missing name
    assert conn.exists("/missing") is False
    assert conn.health_snapshot()["discarded"] == 1
    conn.close()


# ---------------------------------------------------------------------------
# kill & recover
# ---------------------------------------------------------------------------

def test_kill_mid_read_dispatcher_recovers(tmp_path):
    """A connection severed mid-read under a live DPFS mount: the
    transient ConnectionLost is absorbed by the dispatcher's budget and
    the read completes with intact bytes."""
    size = 64 * 1024
    with DPFSServer(tmp_path / "srv") as server, ChaosProxy(server.address) as proxy:
        fs = DPFS.remote(
            [proxy.address], pool_size=2, io_workers=4, io_retries=20,
            io_backoff_s=0.01,
        )
        payload = bytes(range(256)) * (size // 256)
        fs.write_file(
            "/f", payload, hint=Hint.linear(file_size=size, brick_size=4096)
        )
        proxy.sever_after(3, times=1)   # kill one live pipe mid-workload
        assert fs.read_file("/f") == payload
        assert proxy.faults_fired["sever"] >= 1
        assert fs.dispatcher.stats.retries >= 1
        fs.close()


def test_server_killed_and_restarted_mid_workload(tmp_path):
    """The acceptance scenario: the (only) server dies mid-workload and
    comes back; reads issued during the outage complete after recovery,
    no byte is corrupted, and the DOWN → UP transition is visible in the
    mount's metrics (what ``dpfs stats`` renders)."""
    size = 128 * 1024
    root = tmp_path / "srv"
    server = DPFSServer(root).start()
    proxy = ChaosProxy(server.address).start()
    fs = DPFS.remote(
        [proxy.address],
        pool_size=2,
        io_workers=4,
        io_retries=200,
        io_backoff_s=0.01,
        down_after=2,
        reconnect_attempts=1,
        reconnect_backoff_s=0.005,
    )
    try:
        payload = bytes((i * 7) % 256 for i in range(size))
        fs.write_file(
            "/data", payload, hint=Hint.linear(file_size=size, brick_size=8192)
        )

        # kill the server mid-workload
        server.stop()
        proxy.sever_all()
        conn = fs.backend.connections[0]

        results = []
        errors = []

        def read_through_outage():
            try:
                results.append(bytes(fs.read_file("/data")))
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        reader = threading.Thread(target=read_through_outage)
        reader.start()
        # let the reader bang its head against the dead server until the
        # client marks it DOWN
        assert wait_until(lambda: conn.health is ServerHealth.DOWN, timeout=10)

        # restart on the same storage root, retarget the proxy
        server = DPFSServer(root).start()
        proxy.retarget(server.address)

        reader.join(timeout=30)
        assert not reader.is_alive(), "read never recovered after restart"
        assert not errors, f"read failed across the outage: {errors}"
        assert results and results[0] == payload, "bytes corrupted by the outage"
        assert wait_until(lambda: conn.health is ServerHealth.UP, timeout=5)

        rendered = fs.metrics.render()
        assert 'dpfs_net_server_health{server="0"} 2' in rendered
        assert 'dpfs_net_health_transitions_total{server="0",to="DOWN"}' in rendered
        assert 'dpfs_net_health_transitions_total{server="0",to="UP"}' in rendered
    finally:
        fs.close()
        proxy.stop()
        server.stop()


def test_background_probe_drives_down_to_up_without_traffic(tmp_path):
    """With ``ping_interval_s`` set, a DOWN server recovers to UP purely
    through background probes — no user request needed."""
    root = tmp_path / "srv"
    server = DPFSServer(root).start()
    proxy = ChaosProxy(server.address).start()
    from repro.net import RemoteBackend

    backend = RemoteBackend(
        [proxy.address],
        pool_size=1,
        ping_interval_s=0.05,
        down_after=1,
        reconnect_attempts=0,
    )
    conn = backend.connections[0]
    try:
        server.stop()
        proxy.sever_all()
        with pytest.raises(TransportError):
            conn.exists("/x")    # dead idle socket -> failure -> DOWN
        assert conn.health is ServerHealth.DOWN

        server = DPFSServer(root).start()
        proxy.retarget(server.address)
        # no traffic from here on: the prober alone must flip the state
        assert wait_until(lambda: conn.health is ServerHealth.UP, timeout=5)
        assert conn.health_snapshot()["consecutive_failures"] == 0
    finally:
        backend.close()
        proxy.stop()
        server.stop()
