"""Per-server connection pool: lazy growth, same-server overlap on the
wire, broken-socket discard, health bookkeeping, and the regressions of
the fault-tolerance PR (unsynchronized retry counter, handler-thread
death on connection reset)."""

import socket
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import DPFS, Hint
from repro.errors import TransportError
from repro.net import DPFSServer, RemoteBackend, ServerConnection, ServerHealth


@pytest.fixture
def server(tmp_path):
    with DPFSServer(tmp_path / "srv") as s:
        yield s


def test_pool_starts_with_one_socket(server):
    conn = ServerConnection(*server.address, pool_size=4)
    snap = conn.health_snapshot()
    assert snap["open"] == 1          # only the constructor's ping socket
    assert snap["idle"] == 1
    assert snap["health"] == "UP"
    conn.close()


def test_pool_grows_lazily_and_respects_cap(server):
    conn = ServerConnection(*server.address, pool_size=3)
    conn.create("/f")
    conn.write("/f", [(0, 64)], b"x" * 64)

    def hammer(_):
        for _i in range(20):
            assert conn.read("/f", [(0, 64)]) == b"x" * 64

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(hammer, range(8)))
    snap = conn.health_snapshot()
    assert 1 <= snap["open"] <= 3     # grown, but never past pool_size
    assert snap["idle"] == snap["open"]  # everything checked back in
    assert snap["health"] == "UP"
    conn.close()


def test_pooled_requests_overlap_on_the_wire(tmp_path):
    """Four concurrent reads against a server with a 80 ms per-I/O delay:
    pool_size=4 pays ~one delay, pool_size=1 pays the serialized sum."""
    with DPFSServer(
        tmp_path / "srv", max_concurrent=32, io_delay_s=0.08
    ) as server:

        def timed(pool_size):
            conn = ServerConnection(*server.address, pool_size=pool_size)
            conn.create("/f")
            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=4) as pool:
                list(
                    pool.map(
                        lambda _i: conn.read("/f", [(0, 8)]), range(4)
                    )
                )
            wall = time.perf_counter() - start
            conn.close()
            return wall

        serialized = timed(1)
        pooled = timed(4)
    assert serialized >= 4 * 0.08 * 0.9
    assert pooled < 0.6 * serialized, (
        f"pooled {pooled:.3f}s should beat single-socket {serialized:.3f}s"
    )


def test_closed_pool_rejects_requests(server):
    conn = ServerConnection(*server.address)
    conn.close()
    with pytest.raises(TransportError):
        conn.exists("/f")


def test_retried_requests_counter_is_thread_safe(server):
    """The old ``retried_requests += 1`` was an unsynchronized
    read-modify-write shared by every dispatch-pool thread."""
    conn = ServerConnection(*server.address)
    n_threads, per_thread = 8, 2000

    def bump():
        for _ in range(per_thread):
            conn._note_busy_retry()

    threads = [threading.Thread(target=bump) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert conn.retried_requests == n_threads * per_thread
    conn.close()


def test_connection_reset_does_not_kill_handler_thread(tmp_path, capfd):
    """A mid-frame RST used to escape ``_Handler.handle`` as an OSError
    and socketserver printed a handler traceback; now the connection is
    dropped quietly and the server keeps serving."""
    with DPFSServer(tmp_path / "srv") as server:
        raw = socket.create_connection(server.address)
        # half a frame, so the handler blocks inside _recv_exact...
        raw.sendall(struct.pack("!II", 64, 0) + b"partial")
        time.sleep(0.05)
        # ...then a hard reset (SO_LINGER 0 turns close() into RST)
        raw.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        raw.close()
        time.sleep(0.2)

        conn = ServerConnection(*server.address)
        conn.create("/after")
        assert conn.exists("/after")
        conn.close()
    err = capfd.readouterr().err
    assert "Traceback" not in err


def test_health_starts_up_and_metrics_export(server):
    from repro.obs import MetricsRegistry

    backend = RemoteBackend([server.address], pool_size=2)
    registry = MetricsRegistry()
    backend.bind_metrics(registry)
    assert backend.connections[0].health is ServerHealth.UP
    gauge = registry.get("dpfs_net_server_health")
    assert gauge is not None
    assert gauge.value(server=0) == ServerHealth.UP.value
    rows = backend.health()
    assert rows[0]["health"] == "UP"
    assert rows[0]["pool_size"] == 2
    backend.close()


def test_dpfs_remote_constructor_threads_knobs(tmp_path):
    with DPFSServer(tmp_path / "s0") as s0, DPFSServer(tmp_path / "s1") as s1:
        fs = DPFS.remote(
            [s0.address, s1.address],
            pool_size=2,
            busy_retries=3,
            down_after=5,
            io_workers=4,
        )
        conn = fs.backend.connections[0]
        assert conn.pool_size == 2
        assert conn.busy_retries == 3
        assert conn.down_after == 5
        payload = bytes(range(256)) * 64
        fs.write_file(
            "/f", payload, hint=Hint.linear(file_size=len(payload), brick_size=4096)
        )
        assert fs.read_file("/f") == payload
        # the mount's registry carries the health gauge for both servers
        rendered = fs.metrics.render()
        assert 'dpfs_net_server_health{server="0"} 2' in rendered
        assert 'dpfs_net_server_health{server="1"} 2' in rendered
        fs.close()
