"""Kill-9 acceptance: a real client process, talking to real TCP
servers through the chaos proxy, is murdered mid-rename with
``os._exit`` (no cleanup, no flush).  Remounting the same metadata
database against the same servers must recover without manual
intervention: intent rolled forward, fsck/scrub clean, the file
readable under exactly one name.

The child is armed through the environment
(``DPFS_CRASHPOINT=... DPFS_CRASHPOINT_MODE=exit``) and dies with
:data:`repro.core.crashpoints.CRASH_EXIT_CODE`, so the parent can tell
a simulated crash from any ordinary failure.
"""

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.core import DPFS, fsck, scrub
from repro.core.crashpoints import CRASH_EXIT_CODE
from repro.metadb import Database
from repro.net import ChaosProxy, DPFSServer

PAYLOAD_LEN = 8 * 1024

CHILD = """
import sys
from repro.core import DPFS, Hint
from repro.metadb import Database

meta = sys.argv[1]
addrs = []
for spec in sys.argv[2:]:
    host, _, port = spec.rpartition(":")
    addrs.append((host, int(port)))
payload = (bytes(range(256)) * 33)[: {payload_len}]
fs = DPFS.remote(addrs, db=Database(meta), io_workers=1)
fs.makedirs("/d")
fs.write_file(
    "/d/f", payload, Hint.linear(file_size=len(payload), brick_size=1024)
)
fs.rename("/d/f", "/d/g")   # the armed crash point kills us in here
raise SystemExit("crash point never fired")
""".format(payload_len=PAYLOAD_LEN)


def test_kill9_mid_rename_recovers_on_remount(tmp_path):
    meta = tmp_path / "client.meta"
    payload = (bytes(range(256)) * 33)[:PAYLOAD_LEN]
    with DPFSServer(tmp_path / "srv0") as s0, DPFSServer(tmp_path / "srv1") as s1:
        with ChaosProxy(s0.address) as proxy:
            addrs = [proxy.address, s1.address]
            specs = [f"{h}:{p}" for h, p in addrs]
            env = dict(
                os.environ,
                PYTHONPATH=str(Path(repro.__file__).resolve().parents[1]),
                DPFS_CRASHPOINT="filesystem.rename.after_metadata",
                DPFS_CRASHPOINT_MODE="exit",
            )
            proc = subprocess.run(
                [sys.executable, "-c", CHILD, str(meta), *specs],
                env=env,
                capture_output=True,
                text=True,
                timeout=45,
            )
            assert proc.returncode == CRASH_EXIT_CODE, (
                f"child exited {proc.returncode}, not the crash code "
                f"{CRASH_EXIT_CODE}\nstdout: {proc.stdout}\n"
                f"stderr: {proc.stderr}"
            )

            # the dead client committed the metadata re-key but never
            # touched the subfiles; mounting the same database recovers
            # (grace 0: the operator remounting here knows the previous
            # client is dead, so the live-mount grace period is waived)
            fs = DPFS.remote(
                addrs, db=Database(meta), io_workers=1, recover_grace_s=0.0
            )
            try:
                assert fs.last_recovery is not None
                assert fs.last_recovery.clean, str(fs.last_recovery)
                (action,) = fs.last_recovery.recovered
                assert action.op == "rename"
                assert action.direction == "forward"
                assert fs.intents.pending() == []
                assert not fs.exists("/d/f")
                assert fs.read_file("/d/g") == payload
                freport = fsck(fs)
                assert freport.clean, str(freport)
                sreport = scrub(fs)
                assert sreport.clean, str(sreport)
            finally:
                fs.close()
