"""The paper's qualitative performance claims, verified at reduced scale.

These are the §8 *shape* assertions — who wins and by roughly what
factor — run on a scaled-down workload so the whole module stays fast.
EXPERIMENTS.md records the full-scale numbers.
"""

import pytest

from repro.core import FileLevel, Greedy, RoundRobin
from repro.netsim import CLASS1, CLASS2, CLASS3
from repro.perf import WorkloadSpec, build_workload, run_workload

#: scaled-down §8 geometry: 8 MiB array, row bricks, 32x32 multidim tiles
GEOM = dict(array_shape=(512, 2048), element_size=8, brick_shape=(32, 32))


def bandwidth(level, combine, *, nprocs=8, nservers=4, topology=None,
              pattern="(*, BLOCK)", is_read=True, policy=None):
    spec = WorkloadSpec(
        level=level,
        combine=combine,
        nprocs=nprocs,
        nservers=nservers,
        access_pattern=pattern,
        is_read=is_read,
        **GEOM,
    )
    workload = build_workload(spec, policy or RoundRobin(nservers))
    result = run_workload(workload, topology or [CLASS1] * nservers)
    return result.bandwidth_mbps


@pytest.fixture(scope="module")
def class1_levels():
    return {
        (level, combine): bandwidth(level, combine)
        for level in (FileLevel.LINEAR, FileLevel.MULTIDIM, FileLevel.ARRAY)
        for combine in (False, True)
    }


def test_multidim_beats_linear_by_large_factor(class1_levels):
    """§8.1: 'The performance can be improved 10 to 20 times' (we assert
    ≥ 4x at this reduced scale; the full-scale harness lands ~5-11x)."""
    ratio = (
        class1_levels[(FileLevel.MULTIDIM, False)]
        / class1_levels[(FileLevel.LINEAR, False)]
    )
    assert ratio >= 4.0


def test_array_beats_multidim(class1_levels):
    """§8.1: array-level improvement 'nearly doubles' over multidim."""
    ratio = (
        class1_levels[(FileLevel.ARRAY, False)]
        / class1_levels[(FileLevel.MULTIDIM, False)]
    )
    assert ratio >= 1.3


def test_level_ordering_monotone(class1_levels):
    """linear < multidim < array, combined or not."""
    for combine in (False, True):
        lin = class1_levels[(FileLevel.LINEAR, combine)]
        mdim = class1_levels[(FileLevel.MULTIDIM, combine)]
        arr = class1_levels[(FileLevel.ARRAY, combine)]
        assert lin < mdim <= arr


def test_combination_helps_linear(class1_levels):
    assert (
        class1_levels[(FileLevel.LINEAR, True)]
        > class1_levels[(FileLevel.LINEAR, False)]
    )


def test_combination_does_not_hurt_multidim(class1_levels):
    assert (
        class1_levels[(FileLevel.MULTIDIM, True)]
        >= 0.95 * class1_levels[(FileLevel.MULTIDIM, False)]
    )


def test_combination_no_effect_on_array(class1_levels):
    """§8.1: 'Request combination can not further improve performance'
    at the array level — chunks are single requests already."""
    assert class1_levels[(FileLevel.ARRAY, True)] == pytest.approx(
        class1_levels[(FileLevel.ARRAY, False)], rel=0.01
    )


def test_linear_poor_even_combined_on_wan_class():
    """§8.1: linear striping gives 'very poor I/O bandwidth even if
    request combination is used' — on the WAN-attached class 3 the
    wasted transfer volume dominates."""
    plain = bandwidth(FileLevel.LINEAR, False, topology=[CLASS3] * 4)
    combined = bandwidth(FileLevel.LINEAR, True, topology=[CLASS3] * 4)
    mdim = bandwidth(FileLevel.MULTIDIM, False, topology=[CLASS3] * 4)
    assert combined < 0.5 * mdim
    assert plain <= combined


def test_class_ordering():
    """Class 1 (local LAN) fastest; class 2 (shared 10 Mb) slowest."""
    results = {
        cls.class_id: bandwidth(
            FileLevel.MULTIDIM, True, topology=[cls] * 4
        )
        for cls in (CLASS1, CLASS2, CLASS3)
    }
    assert results[1] > results[3] > results[2]


def test_scaling_with_more_nodes():
    """Fig. 11 → Fig. 12: doubling compute and I/O nodes raises
    aggregate array-level bandwidth."""
    small = bandwidth(FileLevel.ARRAY, True, nprocs=8, nservers=4)
    large = bandwidth(FileLevel.ARRAY, True, nprocs=16, nservers=8)
    assert large > 1.5 * small


# ---------------------------------------------------------------------------
# §8.2 — greedy vs round-robin on heterogeneous storage
# ---------------------------------------------------------------------------

MIXED = [CLASS1] * 4 + [CLASS3] * 4
PERF = [p.performance for p in MIXED]


def _placement_bw(policy_name, combine, is_read):
    policy = (
        RoundRobin(8) if policy_name == "rr" else Greedy(PERF)
    )
    return bandwidth(
        FileLevel.MULTIDIM,
        combine,
        nprocs=8,
        nservers=8,
        topology=MIXED,
        pattern="(BLOCK, *)",
        is_read=is_read,
        policy=policy,
    )


@pytest.mark.parametrize("combine", [False, True])
@pytest.mark.parametrize("is_read", [False, True])
def test_greedy_beats_round_robin(combine, is_read):
    """Figs. 13/14: greedy placement beats round-robin for reads and
    writes, combined or not."""
    rr = _placement_bw("rr", combine, is_read)
    greedy = _placement_bw("greedy", combine, is_read)
    assert greedy > rr


def test_greedy_advantage_larger_when_combined():
    """With combination the device imbalance dominates, so greedy's
    advantage grows (visible in Figs. 13/14)."""
    plain_gain = _placement_bw("greedy", False, True) / _placement_bw(
        "rr", False, True
    )
    combined_gain = _placement_bw("greedy", True, True) / _placement_bw(
        "rr", True, True
    )
    assert combined_gain > plain_gain > 1.0
