"""Workload generator tests: request streams for the §8 experiments."""

import pytest

from repro.core import FileLevel, Greedy, RoundRobin
from repro.errors import ConfigError
from repro.perf import WorkloadSpec, build_workload

SMALL = dict(array_shape=(256, 1024), element_size=8, brick_shape=(32, 32))


def spec(level, combine, nprocs=4, nservers=4, **kw):
    merged = {**SMALL, **kw}
    return WorkloadSpec(
        level=level, combine=combine, nprocs=nprocs, nservers=nservers, **merged
    )


def test_validation():
    with pytest.raises(ConfigError):
        spec(FileLevel.LINEAR, False, nprocs=0).validate()
    with pytest.raises(ConfigError):
        build_workload(spec(FileLevel.LINEAR, False), RoundRobin(3))


def test_useful_bytes_equals_array_once():
    w = build_workload(spec(FileLevel.MULTIDIM, True), RoundRobin(4))
    assert w.useful_bytes == 256 * 1024 * 8


def test_linear_transfers_whole_file_per_processor():
    """(*, BLOCK) on a linear file: every processor touches every brick."""
    w = build_workload(spec(FileLevel.LINEAR, False), RoundRobin(4))
    total = w.spec.total_bytes
    assert w.transfer_bytes == total * 4          # nprocs-fold waste
    n_bricks = w.striping.brick_count
    assert w.total_requests == 4 * n_bricks       # one request per brick


def test_multidim_transfers_only_needed_bricks():
    w = build_workload(spec(FileLevel.MULTIDIM, False), RoundRobin(4))
    # strip width 256 cols = 8 brick-cols; aligned → no waste
    assert w.transfer_bytes == w.useful_bytes
    assert w.total_requests < 4 * w.striping.brick_count


def test_combination_collapses_to_per_server_requests():
    base = spec(FileLevel.MULTIDIM, False)
    w_plain = build_workload(base, RoundRobin(4))
    w_comb = build_workload(spec(FileLevel.MULTIDIM, True), RoundRobin(4))
    assert w_comb.total_requests <= 4 * 4          # nprocs × nservers
    assert w_comb.total_requests < w_plain.total_requests
    # identical bytes either way
    assert w_comb.transfer_bytes == w_plain.transfer_bytes


def test_array_level_one_request_per_chunk():
    w = build_workload(spec(FileLevel.ARRAY, False), RoundRobin(4))
    assert w.total_requests == 4                   # one chunk each
    assert w.transfer_bytes == w.useful_bytes


def test_combined_array_identical_to_array():
    a = build_workload(spec(FileLevel.ARRAY, False), RoundRobin(4))
    b = build_workload(spec(FileLevel.ARRAY, True), RoundRobin(4))
    assert a.total_requests == b.total_requests
    assert a.transfer_bytes == b.transfer_bytes


def test_stagger_rotates_first_server():
    w = build_workload(spec(FileLevel.MULTIDIM, True, nprocs=4), RoundRobin(4))
    firsts = [p.requests[0].server for p in w.plans]
    assert firsts == [0, 1, 2, 3]


def test_write_direction_flag():
    w = build_workload(
        spec(FileLevel.MULTIDIM, True, access_pattern="(BLOCK, *)", is_read=False),
        RoundRobin(4),
    )
    assert all(not r.is_read for p in w.plans for r in p.requests)


def test_greedy_policy_shifts_requests_to_fast_servers():
    policy = Greedy([1.0, 1.0, 3.0, 3.0])
    w = build_workload(
        spec(FileLevel.MULTIDIM, True, access_pattern="(BLOCK, *)"), policy
    )
    counts = w.brick_map.bricks_per_server()
    assert counts[0] == counts[1] > counts[2] == counts[3]
    assert counts[0] == 3 * counts[2]


def test_extents_coalesced_in_wire_requests():
    w = build_workload(spec(FileLevel.LINEAR, True), RoundRobin(4))
    for plan in w.plans:
        for request in plan.requests:
            # a linear (*, BLOCK) reader takes every brick: per server the
            # subfile is read end to end → exactly one coalesced extent
            assert len(request.extents) == 1


def test_brick_granularity_linear_partial_use():
    """Even though each processor needs 1/nprocs of each brick, whole
    bricks cross the wire (the paper's discard semantics)."""
    w = build_workload(spec(FileLevel.LINEAR, False, nprocs=2), RoundRobin(4))
    brick = w.striping.brick_size
    for plan in w.plans:
        for request in plan.requests:
            assert request.transfer_bytes == brick
