"""Experiment runner tests on small workloads."""

import pytest

from repro.core import FileLevel, RoundRobin
from repro.errors import ConfigError
from repro.netsim import CLASS1, CLASS3
from repro.perf import WorkloadSpec, build_workload, run_workload

SMALL = dict(array_shape=(256, 1024), element_size=8, brick_shape=(32, 32))


def make(level=FileLevel.MULTIDIM, combine=True, nprocs=4, nservers=4, **kw):
    merged = {**SMALL, **kw}
    return build_workload(
        WorkloadSpec(
            level=level, combine=combine, nprocs=nprocs, nservers=nservers, **merged
        ),
        RoundRobin(nservers),
    )


def test_result_fields_consistent():
    w = make()
    r = run_workload(w, [CLASS1] * 4)
    assert r.makespan_s > 0
    assert r.useful_bytes == w.useful_bytes
    assert r.transfer_bytes == w.transfer_bytes
    assert r.total_requests == w.total_requests
    assert r.bandwidth_mbps == pytest.approx(
        (r.useful_bytes / (1024 * 1024)) / r.makespan_s
    )
    assert sum(r.per_server_requests) == w.total_requests
    assert len(r.per_rank_finish) == 4
    assert max(r.per_rank_finish) == pytest.approx(r.makespan_s)


def test_topology_size_checked():
    w = make()
    with pytest.raises(ConfigError):
        run_workload(w, [CLASS1] * 3)


def test_deterministic():
    w1 = make()
    w2 = make()
    r1 = run_workload(w1, [CLASS1] * 4)
    r2 = run_workload(w2, [CLASS1] * 4)
    assert r1.makespan_s == r2.makespan_s


def test_faster_class_faster_run():
    r1 = run_workload(make(), [CLASS1] * 4)
    r3 = run_workload(make(), [CLASS3] * 4)
    assert r1.bandwidth_mbps > r3.bandwidth_mbps


def test_more_servers_helps_array_level():
    few = run_workload(
        make(level=FileLevel.ARRAY, nservers=2), [CLASS1] * 2
    )
    many = run_workload(
        make(level=FileLevel.ARRAY, nservers=8), [CLASS1] * 8
    )
    assert many.bandwidth_mbps > few.bandwidth_mbps


def test_disk_busy_reported():
    r = run_workload(make(), [CLASS1] * 4)
    assert len(r.per_server_disk_busy) == 4
    assert all(busy > 0 for busy in r.per_server_disk_busy)
    assert all(busy <= r.makespan_s for busy in r.per_server_disk_busy)


def test_str_rendering():
    r = run_workload(make(), [CLASS1] * 4)
    text = str(r)
    assert "MB/s" in text and "requests" in text
