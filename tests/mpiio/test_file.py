"""MPIFile end-to-end tests: views + independent + collective I/O."""

import numpy as np
import pytest

from repro.core import DPFS, Hint
from repro.datatypes import FLOAT64, Contiguous, Subarray
from repro.errors import BadFileHandle, DPFSError
from repro.mpiio import FileView, MPIFile


N = 16  # global array edge (elements)


@pytest.fixture
def mpi_file(fs):
    hint = Hint.linear(file_size=N * N * 8, brick_size=256)
    mf = MPIFile.open(fs, "/shared", "w", nprocs=4, hint=hint)
    yield mf
    mf.close()


def block_row_view(rank: int) -> FileView:
    """(BLOCK, *) view: rank owns rows [4r, 4r+4) of the NxN f64 array."""
    ftype = Subarray((N, N), (N // 4, N), (rank * N // 4, 0), FLOAT64)
    return FileView(etype=FLOAT64, filetype=ftype)


def test_open_close_lifecycle(fs):
    mf = MPIFile.open(fs, "/f", "w", nprocs=2, hint=Hint.linear())
    mf.close()
    with pytest.raises(BadFileHandle):
        mf.read_at(0, 0, 1)
    mf.close()  # idempotent


def test_rank_validation(mpi_file):
    with pytest.raises(DPFSError):
        mpi_file.read_at(4, 0, 1)
    with pytest.raises(DPFSError):
        mpi_file.set_view(-1, FileView())


def test_default_view_independent_rw(mpi_file):
    mpi_file.write_at(0, 0, b"hello world")
    assert mpi_file.read_at(0, 0, 11) == b"hello world"


def test_block_views_write_whole_array(mpi_file):
    """Each rank writes its (BLOCK, *) rows through its own view; the
    assembled file equals the numpy array."""
    array = np.arange(N * N, dtype=np.float64).reshape(N, N)
    for rank in range(4):
        mpi_file.set_view(rank, block_row_view(rank))
        rows = array[rank * 4 : (rank + 1) * 4]
        mpi_file.write_at(rank, 0, rows.tobytes())
    flat = mpi_file.handle.read(0, N * N * 8)
    assert flat == array.tobytes()
    # each rank reads back only its own rows through the view
    for rank in range(4):
        got = mpi_file.read_at(rank, 0, 4 * N * 8)
        assert got == array[rank * 4 : (rank + 1) * 4].tobytes()


def test_view_offset_in_etypes(mpi_file):
    mpi_file.set_view(1, block_row_view(1))
    values = np.arange(8, dtype=np.float64)
    # skip the first N etypes (= first owned row), write into the second
    mpi_file.write_at(1, N, values.tobytes())
    raw = mpi_file.handle.read((5 * N) * 8, 8 * 8)
    assert raw == values.tobytes()


def test_collective_write_equivalent_to_independent(fs):
    hint = Hint.linear(file_size=N * N * 8, brick_size=256)
    array = np.random.default_rng(0).random((N, N))

    with MPIFile.open(fs, "/coll", "w", nprocs=4, hint=hint) as mf:
        for rank in range(4):
            mf.set_view(rank, block_row_view(rank))
        buffers = [array[r * 4 : (r + 1) * 4].tobytes() for r in range(4)]
        written = mf.write_at_all([0, 0, 0, 0], buffers)
        assert written == N * N * 8
        collective_requests = mf.stats.requests

    with MPIFile.open(fs, "/indep", "w", nprocs=4, hint=hint) as mf:
        for rank in range(4):
            mf.set_view(rank, block_row_view(rank))
        for rank in range(4):
            mf.write_at(
                rank, 0, array[rank * 4 : (rank + 1) * 4].tobytes(),
                sieving=False,
            )
        independent_requests = mf.stats.requests

    assert fs.read_file("/coll") == fs.read_file("/indep") == array.tobytes()
    assert collective_requests <= independent_requests


def test_collective_read_returns_per_rank_data(fs):
    hint = Hint.linear(file_size=N * N * 8, brick_size=256)
    array = np.random.default_rng(1).random((N, N))
    fs.write_file("/data", array.tobytes(), hint=hint)
    with MPIFile.open(fs, "/data", "r", nprocs=4) as mf:
        for rank in range(4):
            mf.set_view(rank, block_row_view(rank))
        results = mf.read_at_all([0] * 4, [4 * N * 8] * 4)
    for rank in range(4):
        assert results[rank] == array[rank * 4 : (rank + 1) * 4].tobytes()


def test_collective_arity_checked(mpi_file):
    with pytest.raises(DPFSError):
        mpi_file.write_at_all([0], [b"x"])
    with pytest.raises(DPFSError):
        mpi_file.read_at_all([0, 0, 0, 0], [1, 1])


def test_interleaved_column_views_collective(fs):
    """(*, BLOCK) views: the worst case for independent I/O — each rank's
    typemap is N stripes of 4 elements.  Collective two-phase I/O turns
    it into a few big writes."""
    hint = Hint.linear(file_size=N * N * 8, brick_size=512)
    array = np.random.default_rng(2).random((N, N))
    with MPIFile.open(fs, "/cols", "w", nprocs=4, hint=hint) as mf:
        for rank in range(4):
            ftype = Subarray((N, N), (N, 4), (0, rank * 4), FLOAT64)
            mf.set_view(rank, FileView(etype=FLOAT64, filetype=ftype))
        buffers = [
            np.ascontiguousarray(array[:, r * 4 : (r + 1) * 4]).tobytes()
            for r in range(4)
        ]
        mf.write_at_all([0] * 4, buffers)
        collective_requests = mf.stats.requests
    assert fs.read_file("/cols") == array.tobytes()
    # 4 ranks x 16 stripes independently would be >= 64 requests
    assert collective_requests < 64


def test_sieving_through_view(fs):
    """A hole-y view read triggers sieving (fewer, larger accesses)."""
    hint = Hint.linear(file_size=4096, brick_size=128)
    payload = bytes(range(256)) * 16
    fs.write_file("/s", payload, hint=hint)
    with MPIFile.open(fs, "/s", "r", nprocs=1) as mf:
        from repro.datatypes import Vector

        # MPI semantics: Vector(2, 32, 64) has extent 96 ((count-1)*stride
        # + blocklen), so tiles repeat every 96 bytes — visible stream is
        # [0,32) ∪ [64,128) ∪ [160,192) ∪ ...
        mf.set_view(0, FileView(filetype=Vector(2, 32, 64)))
        got = mf.read_at(0, 0, 128)
    expected = payload[0:32] + payload[64:128] + payload[160:192]
    assert got == expected
