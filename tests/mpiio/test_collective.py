"""Data sieving and two-phase collective I/O tests."""

import numpy as np
import pytest

from repro.core import DPFS, Hint
from repro.errors import DPFSError
from repro.mpiio import (
    SieveConfig,
    sieved_read,
    sieved_write,
    two_phase_read,
    two_phase_write,
)


@pytest.fixture
def handle(fs):
    fs.write_file(
        "/f", bytes(range(256)) * 16, hint=Hint.linear(file_size=4096, brick_size=256)
    )
    h = fs.open("/f", "r+")
    yield h
    h.close()


# ---------------------------------------------------------------------------
# sieving
# ---------------------------------------------------------------------------

def test_should_sieve_thresholds():
    cfg = SieveConfig(buffer_bytes=1000, min_useful_fraction=0.5)
    assert cfg.should_sieve([(0, 300), (400, 300)])         # 600/700 useful
    assert not cfg.should_sieve([(0, 10), (900, 10)])       # sparse
    assert not cfg.should_sieve([(0, 10), (5000, 10)])      # window too big
    assert not cfg.should_sieve([(0, 100)])                 # single extent


def test_sieved_read_matches_direct(handle):
    extents = [(10, 20), (50, 20), (90, 20)]
    direct = handle.read_extents(extents)
    sieved = sieved_read(handle, extents, SieveConfig())
    assert sieved == direct


def test_sieved_read_cuts_requests(fs):
    fs.write_file("/g", bytes(4096), hint=Hint.linear(file_size=4096, brick_size=128))
    extents = [(i * 64, 32) for i in range(32)]  # 32 hole-y pieces
    with fs.open("/g", "r", combine=False) as h:
        h.read_extents(extents)
        direct_requests = h.stats.requests
    with fs.open("/g", "r", combine=False) as h:
        sieved_read(h, extents, SieveConfig())
        sieved_requests = h.stats.requests
    # one covering read touches each brick once; the direct path issues
    # one request per hole-separated piece
    assert sieved_requests < direct_requests


def test_sieved_write_read_modify_write(handle):
    extents = [(0, 4), (8, 4)]
    before = handle.read(0, 12)
    sieved_write(handle, extents, b"AAAABBBB", SieveConfig(min_useful_fraction=0.1))
    after = handle.read(0, 12)
    assert after == b"AAAA" + before[4:8] + b"BBBB"


def test_sieved_write_payload_checked(handle):
    with pytest.raises(DPFSError):
        sieved_write(handle, [(0, 4)], b"toolong!", SieveConfig())


def test_sieved_write_past_eof(fs):
    fs.write_file("/h", b"xy", hint=Hint.linear(file_size=2, brick_size=64))
    with fs.open("/h", "r+") as h:
        sieved_write(
            h, [(0, 1), (9, 1)], b"AZ", SieveConfig(min_useful_fraction=0.0)
        )
        assert h.read(0, 10) == b"Ay\x00\x00\x00\x00\x00\x00\x00Z"


# ---------------------------------------------------------------------------
# two-phase collective
# ---------------------------------------------------------------------------

def test_two_phase_write_interleaved_ranks(fs):
    """4 ranks writing interleaved 64-byte pieces — the classic case."""
    n = 4096
    fs.write_file("/c", bytes(n), hint=Hint.linear(file_size=n, brick_size=512))
    piece = 64
    rank_extents = []
    rank_data = []
    for rank in range(4):
        extents = [(i * 4 * piece + rank * piece, piece) for i in range(n // (4 * piece))]
        rank_extents.append(extents)
        rank_data.append(bytes([rank + 1]) * (piece * len(extents)))
    with fs.open("/c", "r+") as h:
        written = two_phase_write(h, rank_extents, rank_data)
        collective_requests = h.stats.requests
    assert written == n
    data = fs.read_file("/c")
    for i in range(0, n, piece):
        expected = (i // piece) % 4 + 1
        assert data[i] == expected

    # the independent equivalent issues far more requests
    fs.write_file("/c2", bytes(n), hint=Hint.linear(file_size=n, brick_size=512))
    with fs.open("/c2", "r+") as h:
        for extents, payload in zip(rank_extents, rank_data):
            h.write_extents(extents, payload)
        independent_requests = h.stats.requests
    assert collective_requests < independent_requests


def test_two_phase_write_full_coverage_is_dense(fs):
    n = 1024
    fs.write_file("/d", bytes(n), hint=Hint.linear(file_size=n, brick_size=256))
    rank_extents = [[(r * 256, 256)] for r in range(4)]
    rank_data = [bytes([r]) * 256 for r in range(4)]
    with fs.open("/d", "r+") as h:
        two_phase_write(h, rank_extents, rank_data, n_aggregators=2)
        # 2 aggregators × 1 dense run = 2 combined writes... each write
        # may span several servers; requests ≤ aggregators × servers
        assert h.stats.requests <= 2 * 4
    data = fs.read_file("/d")
    assert data[0] == 0 and data[256] == 1 and data[1023] == 3


def test_two_phase_write_rank_order_resolves_overlap(fs):
    fs.write_file("/e", bytes(16), hint=Hint.linear(file_size=16, brick_size=16))
    rank_extents = [[(0, 8)], [(4, 8)]]
    rank_data = [b"A" * 8, b"B" * 8]
    with fs.open("/e", "r+") as h:
        two_phase_write(h, rank_extents, rank_data)
    assert fs.read_file("/e")[:12] == b"AAAA" + b"B" * 8


def test_two_phase_write_validates(fs):
    fs.write_file("/v", bytes(8), hint=Hint.linear(file_size=8))
    with fs.open("/v", "r+") as h:
        with pytest.raises(DPFSError):
            two_phase_write(h, [[(0, 4)]], [b"xy"])  # wrong payload size
        with pytest.raises(DPFSError):
            two_phase_write(h, [[(0, 4)]], [b"abcd", b"extra"])
        assert two_phase_write(h, [[]], [b""]) == 0


def test_two_phase_read_redistributes(fs):
    payload = bytes(range(256)) * 4
    fs.write_file("/r", payload, hint=Hint.linear(file_size=1024, brick_size=128))
    rank_extents = [
        [(0, 100)],
        [(100, 50), (200, 50)],
        [(512, 256)],
        [],
    ]
    with fs.open("/r", "r") as h:
        results = two_phase_read(h, rank_extents, n_aggregators=3)
    assert results[0] == payload[0:100]
    assert results[1] == payload[100:150] + payload[200:250]
    assert results[2] == payload[512:768]
    assert results[3] == b""


def test_two_phase_read_empty(fs):
    fs.write_file("/r2", b"abc")
    with fs.open("/r2", "r") as h:
        assert two_phase_read(h, [[], []]) == [b"", b""]
