"""File view math: tiling, offsets in etypes, extent generation."""

import pytest

from repro.datatypes import BYTE, FLOAT64, Contiguous, Subarray, Vector
from repro.errors import DatatypeError
from repro.mpiio import FileView, view_extents


def test_default_view_is_identity():
    view = FileView()
    assert view_extents(view, 0, 10) == [(0, 10)]
    assert view_extents(view, 5, 3) == [(5, 3)]


def test_displacement_shifts_everything():
    view = FileView(displacement=100)
    assert view_extents(view, 0, 4) == [(100, 4)]


def test_vector_filetype_tiles():
    # filetype: 2 bytes visible, stride 4 → visible stream maps to
    # bytes 0-1, 4-5, 8-9, ...
    view = FileView(filetype=Vector(1, 2, 4))
    assert view.filetype.extent == 2  # single block; need explicit hole
    # use a 2-block vector for a real hole: bytes {0} and {4}, extent 5;
    # tile 1 adds bytes {5} and {9}, and 4/5 coalesce across the seam
    view = FileView(filetype=Vector(2, 1, 4, Contiguous(1)))
    extents = view_extents(view, 0, 4)
    assert extents == [(0, 1), (4, 2), (9, 1)]


def test_subarray_filetype_block_rows():
    # rank 1 of 2 under (BLOCK, *) of a 4x4 byte array: rows 2..3
    ftype = Subarray((4, 4), (2, 4), (2, 0))
    view = FileView(filetype=ftype)
    assert view_extents(view, 0, 8) == [(8, 8)]
    # second tile starts one whole array later (extent = 16)
    assert view_extents(view, 8, 4) == [(24, 4)]


def test_offset_counts_etypes_not_bytes():
    view = FileView(etype=FLOAT64, filetype=Contiguous(4, FLOAT64))
    assert view_extents(view, 2, 16) == [(16, 16)]


def test_partial_start_inside_tile_extent():
    ftype = Vector(2, 2, 4)  # bytes {0,1}, {4,5}; size 4; extent 6
    view = FileView(filetype=ftype)
    # skip 3 visible bytes: lands on byte 5, then tile 1's byte 6 abuts
    assert view_extents(view, 3, 2) == [(5, 2)]


def test_zero_length():
    assert view_extents(FileView(), 0, 0) == []


def test_negative_rejected():
    with pytest.raises(DatatypeError):
        view_extents(FileView(), -1, 4)
    with pytest.raises(DatatypeError):
        FileView(displacement=-1)


def test_filetype_must_hold_whole_etypes():
    with pytest.raises(DatatypeError):
        FileView(etype=FLOAT64, filetype=Contiguous(3, BYTE))


def test_adjacent_tiles_coalesce():
    view = FileView(filetype=Contiguous(8))
    # contiguous filetype: crossing tiles still yields one extent
    assert view_extents(view, 4, 12) == [(4, 12)]
