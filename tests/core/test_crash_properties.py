"""Property-based crash consistency: for ANY namespace mutation, ANY
crash point inside it, ANY file geometry — crash then recover always
yields an fsck-clean, scrub-clean namespace with the file in exactly
its old or its new state."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.backends.memory import MemoryBackend
from repro.core import DPFS, Hint, fsck, scrub
from repro.core.crashpoints import SimulatedCrash, arm, disarm, registered
from repro.metadb import Database

BRICK = 256


def _mount(backend, db, *, auto_recover=True):
    # grace 0: the remount models an operator recovering a known-dead
    # client (the grace period protects live mounts, tested elsewhere)
    return DPFS(
        backend, db, io_workers=1, auto_recover=auto_recover,
        recover_grace_s=0.0,
    )


@st.composite
def crash_scenarios(draw):
    op = draw(st.sampled_from(["create", "remove", "rename"]))
    point = draw(st.sampled_from(registered(f"filesystem.{op}.")))
    bricks = draw(st.integers(min_value=1, max_value=5))
    replicas = draw(st.sampled_from([1, 2]))
    return op, point, bricks * BRICK, replicas


@settings(max_examples=40, deadline=None)
@given(scenario=crash_scenarios())
def test_any_crash_prefix_recovers_to_old_or_new(scenario):
    op, point, nbytes, replicas = scenario
    payload = (bytes(range(256)) * (nbytes // 256 + 1))[:nbytes]
    hint = Hint.linear(file_size=nbytes, brick_size=BRICK, replicas=replicas)
    db = Database()
    backend = MemoryBackend(4)
    fs = _mount(backend, db, auto_recover=False)
    fs.makedirs("/d")
    if op in ("remove", "rename"):
        fs.write_file("/d/f", payload, hint)
    arm(point)
    try:
        with pytest.raises(SimulatedCrash):
            if op == "create":
                fs.write_file("/d/f", payload, hint)
            elif op == "remove":
                fs.remove("/d/f")
            else:
                fs.rename("/d/f", "/d/g")
    finally:
        disarm()

    fs2 = _mount(backend, db)
    assert fs2.last_recovery is not None
    assert fs2.last_recovery.clean, str(fs2.last_recovery)
    assert fs2.intents.pending() == []
    freport = fsck(fs2)
    assert freport.clean, str(freport)
    sreport = scrub(fs2)
    assert sreport.clean, str(sreport)

    if op == "create":
        # the crash predates the first data write: created means zeros
        if fs2.exists("/d/f"):
            assert fs2.read_file("/d/f") == bytes(nbytes)
    elif op == "remove":
        if fs2.exists("/d/f"):
            assert fs2.read_file("/d/f") == payload
    else:
        old, new = fs2.exists("/d/f"), fs2.exists("/d/g")
        assert old != new
        assert fs2.read_file("/d/f" if old else "/d/g") == payload
