"""3-D multidimensional striping through the full stack.

The paper presents 2-D examples, but §3.2's design is N-dimensional
("each striping unit (brick) is multidimensional").  These tests push
3-D arrays through striping, the file system, transfers and fsck.
"""

import numpy as np
import pytest

from repro.core import DPFS, Hint, MultidimStriping, export_file, fsck
from repro.hpf import Region, decompose


@pytest.fixture
def volume():
    rng = np.random.default_rng(5)
    return rng.random((16, 24, 32))


@pytest.fixture
def vol_fs(fs, volume):
    hint = Hint.multidim(volume.shape, 8, (8, 8, 8))
    with fs.open("/vol", "w", hint=hint) as handle:
        handle.write_array((0, 0, 0), volume)
    return fs


def test_3d_grid_geometry():
    md = MultidimStriping((16, 24, 32), 8, (8, 8, 8))
    assert md.grid == (2, 3, 4)
    assert md.brick_count == 24
    assert md.brick_region(0) == Region((0, 0, 0), (8, 8, 8))
    assert md.brick_region(23) == Region((8, 16, 24), (16, 24, 32))


def test_3d_full_roundtrip(vol_fs, volume):
    with vol_fs.open("/vol", "r") as handle:
        got = handle.read_array((0, 0, 0), volume.shape, np.float64)
    assert np.array_equal(got, volume)


def test_3d_arbitrary_slab_reads(vol_fs, volume):
    cases = [
        ((0, 0, 0), (16, 24, 1)),     # z-plane
        ((0, 0, 0), (1, 24, 32)),     # x-plane
        ((3, 5, 7), (9, 11, 13)),     # interior box crossing bricks
        ((8, 8, 8), (8, 8, 8)),       # exactly one brick
    ]
    with vol_fs.open("/vol", "r") as handle:
        for starts, shape in cases:
            got = handle.read_array(starts, shape, np.float64)
            expected = volume[
                starts[0] : starts[0] + shape[0],
                starts[1] : starts[1] + shape[1],
                starts[2] : starts[2] + shape[2],
            ]
            assert np.array_equal(got, expected), (starts, shape)


def test_3d_single_brick_is_single_request(vol_fs):
    with vol_fs.open("/vol", "r") as handle:
        handle.read_array((8, 8, 8), (8, 8, 8), np.float64)
        assert handle.stats.requests == 1
        assert handle.stats.bricks_touched == 1


def test_3d_partial_writes(vol_fs, volume):
    block = np.full((4, 4, 4), -1.0)
    with vol_fs.open("/vol", "r+") as handle:
        handle.write_array((6, 6, 6), block)
        got = handle.read_array((6, 6, 6), (4, 4, 4), np.float64)
    assert np.array_equal(got, block)
    # neighbours untouched
    with vol_fs.open("/vol", "r") as handle:
        edge = handle.read_array((0, 0, 0), (6, 6, 6), np.float64)
    assert np.array_equal(edge, volume[:6, :6, :6])


def test_3d_block_decomposition_parallel_pattern(vol_fs, volume):
    """(BLOCK, *, *) rank pieces read back exactly."""
    regions = decompose(volume.shape, "(BLOCK, *, *)", 4)
    for rank, region in enumerate(regions):
        with vol_fs.open("/vol", "r", rank=rank) as handle:
            got = handle.read_array(region.starts, region.shape, np.float64)
        assert np.array_equal(
            got,
            volume[region.starts[0] : region.stops[0], :, :],
        )


def test_3d_export_is_row_major(vol_fs, volume, tmp_path):
    out = tmp_path / "flat.bin"
    export_file(vol_fs, "/vol", out)
    assert out.read_bytes() == volume.tobytes()


def test_3d_uneven_bricks(fs):
    """Array dims not divisible by brick dims: edge bricks padded."""
    vol = np.random.default_rng(6).random((10, 11, 13))
    hint = Hint.multidim(vol.shape, 8, (4, 4, 4))
    with fs.open("/odd", "w", hint=hint) as handle:
        handle.write_array((0, 0, 0), vol)
    with fs.open("/odd", "r") as handle:
        got = handle.read_array((6, 7, 9), (4, 4, 4), np.float64)
    assert np.array_equal(got, vol[6:10, 7:11, 9:13])
    assert fsck(fs).clean
