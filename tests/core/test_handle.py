"""File handle tests: byte/datatype/region APIs, stats, lifecycle."""

import numpy as np
import pytest

from repro.core import DPFS, Hint
from repro.datatypes import FLOAT64, Contiguous, Subarray, Vector
from repro.errors import BadFileHandle, FileSystemError, StripingError


@pytest.fixture
def md_file(fs, small_array):
    hint = Hint.multidim((64, 64), 8, (16, 16))
    with fs.open("/field", "w", hint=hint) as handle:
        handle.write_array((0, 0), small_array)
    return fs


def test_closed_handle_rejected(fs):
    fs.write_file("/f", b"abc")
    handle = fs.open("/f", "r")
    handle.close()
    assert handle.closed
    with pytest.raises(BadFileHandle):
        handle.read(0, 1)
    handle.close()  # idempotent


def test_context_manager_closes(fs):
    fs.write_file("/f", b"abc")
    with fs.open("/f", "r") as handle:
        assert not handle.closed
    assert handle.closed


def test_read_clamps_at_eof(fs):
    fs.write_file("/f", b"abcdef")
    with fs.open("/f", "r") as handle:
        assert handle.read(4, 100) == b"ef"
        assert handle.read(100, 10) == b""
        assert handle.read(0, 0) == b""


def test_negative_read_rejected(fs):
    fs.write_file("/f", b"abc")
    with fs.open("/f", "r") as handle:
        with pytest.raises(FileSystemError):
            handle.read(-1, 2)
        with pytest.raises(FileSystemError):
            handle.read(0, -2)


def test_read_extents_concatenates_in_order(fs):
    fs.write_file("/f", bytes(range(20)))
    with fs.open("/f", "r") as handle:
        got = handle.read_extents([(10, 3), (0, 2)])
    assert got == bytes([10, 11, 12, 0, 1])


# -- derived datatypes ---------------------------------------------------------

def test_write_read_type_vector(fs):
    hint = Hint.linear(file_size=64, brick_size=16)
    dtype = Vector(4, 2, 4)  # bytes {0,1}, {4,5}, {8,9}, {12,13}
    payload = bytes(range(8))
    with fs.open("/f", "w", hint=hint) as handle:
        handle.write_type(dtype, payload)
    with fs.open("/f", "r") as handle:
        assert handle.read_type(dtype) == payload
    raw = fs.read_file("/f")
    assert raw[0:2] == bytes([0, 1])
    assert raw[4:6] == bytes([2, 3])
    assert raw[2:4] == b"\x00\x00"  # holes untouched


def test_write_type_grows_linear_file(fs):
    with fs.open("/f", "w", hint=Hint.linear(brick_size=8)) as handle:
        handle.write_type(Contiguous(4), b"tail", offset=100)
    assert fs.stat("/f")["size"] == 104


def test_write_type_size_mismatch_rejected(fs):
    with fs.open("/f", "w", hint=Hint.linear()) as handle:
        with pytest.raises(FileSystemError):
            handle.write_type(Contiguous(4), b"toolong!")


def test_subarray_type_against_multidim_file(md_file, small_array):
    """A Subarray filetype over the flattened file equals a region read."""
    t = Subarray((64, 64), (8, 8), (16, 24), FLOAT64)
    with md_file.open("/field", "r") as handle:
        via_type = handle.read_type(t)
        via_region = handle.read_region((16, 24), (8, 8))
    assert via_type == via_region == small_array[16:24, 24:32].tobytes()


# -- regions / arrays ------------------------------------------------------------

def test_region_read_write_roundtrip(md_file, small_array):
    with md_file.open("/field", "r+") as handle:
        block = np.full((4, 4), 7.5)
        handle.write_array((10, 10), block)
        got = handle.read_array((10, 10), (4, 4), np.float64)
    assert np.array_equal(got, block)


def test_region_on_linear_file_rejected(fs):
    fs.write_file("/f", b"x" * 64)
    with fs.open("/f", "r") as handle:
        with pytest.raises(StripingError):
            handle.read_region((0,), (8,))


def test_region_payload_size_checked(md_file):
    with md_file.open("/field", "r+") as handle:
        with pytest.raises(FileSystemError):
            handle.write_region((0, 0), (2, 2), b"short")


def test_array_dtype_size_checked(md_file):
    with md_file.open("/field", "r") as handle:
        with pytest.raises(FileSystemError):
            handle.read_array((0, 0), (2, 2), np.float32)


def test_write_array_casts_layout(md_file, small_array):
    with md_file.open("/field", "r+") as handle:
        handle.write_array((0, 0), small_array[::-1])  # non-contiguous view
        got = handle.read_array((0, 0), (64, 64), np.float64)
    assert np.array_equal(got, small_array[::-1])


# -- chunk API (array level) ----------------------------------------------------

def test_chunk_roundtrip_per_rank(fs):
    hint = Hint.array((16, 16), 8, "(BLOCK, *)", nprocs=4)
    data = np.random.default_rng(1).random((16, 16))
    with fs.open("/ckpt", "w", hint=hint) as handle:
        for rank in range(4):
            handle.write_chunk(data[rank * 4 : (rank + 1) * 4].tobytes(), rank=rank)
    for rank in range(4):
        with fs.open("/ckpt", "r", rank=rank) as handle:
            got = np.frombuffer(handle.read_chunk(), np.float64).reshape(4, 16)
            assert np.array_equal(got, data[rank * 4 : (rank + 1) * 4])
            # one chunk = one request (the §3.3 point)
            assert handle.stats.requests == 1


def test_chunk_on_non_array_file_rejected(md_file):
    with md_file.open("/field", "r") as handle:
        with pytest.raises(StripingError):
            handle.read_chunk()


# -- stats -----------------------------------------------------------------------

def test_stats_request_counts_combined_vs_not(md_file):
    with md_file.open("/field", "r", combine=True) as handle:
        handle.read_region((0, 0), (64, 16))  # brick column, 4 bricks
        combined = handle.stats.requests
    with md_file.open("/field", "r", combine=False) as handle:
        handle.read_region((0, 0), (64, 16))
        uncombined = handle.stats.requests
    assert combined < uncombined
    assert uncombined == 4  # one per touched brick


def test_stats_bytes_accounting(fs):
    fs.write_file("/f", b"x" * 100)
    with fs.open("/f", "r+") as handle:
        handle.read(0, 40)
        handle.write(0, b"y" * 10)
        assert handle.stats.bytes_read == 40
        assert handle.stats.bytes_written == 10
        assert handle.stats.bricks_touched >= 2


def test_stats_per_server_distribution(md_file):
    with md_file.open("/field", "r", combine=False) as handle:
        handle.read_region((0, 0), (64, 64))
        per_server = handle.stats.per_server_requests
    assert sum(per_server.values()) == handle.stats.requests
    assert len(per_server) == 4  # all servers participated
