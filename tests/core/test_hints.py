"""Hint structure validation and striping construction (§6)."""

import pytest

from repro.core import (
    ArrayStriping,
    FileLevel,
    Hint,
    LinearStriping,
    MultidimStriping,
)
from repro.errors import InvalidHint


def test_default_hint_is_linear():
    hint = Hint().validate()
    assert hint.level is FileLevel.LINEAR
    assert isinstance(hint.striping(), LinearStriping)


def test_linear_constructor():
    hint = Hint.linear(file_size=1000, brick_size=100)
    striping = hint.striping()
    assert isinstance(striping, LinearStriping)
    assert striping.brick_count == 10
    assert hint.expected_bricks() == 10


def test_linear_validation():
    with pytest.raises(InvalidHint):
        Hint.linear(brick_size=0).validate()
    with pytest.raises(InvalidHint):
        Hint.linear(file_size=-1).validate()


def test_multidim_constructor():
    hint = Hint.multidim((64, 64), 8, (16, 16))
    striping = hint.striping()
    assert isinstance(striping, MultidimStriping)
    assert striping.grid == (4, 4)
    assert hint.expected_bricks() == 16


def test_multidim_default_brick_shape():
    """Omitted brick_shape is derived to approximate the byte target."""
    hint = Hint(
        level=FileLevel.MULTIDIM, array_shape=(1024, 1024), element_size=8
    ).validate()
    assert hint.brick_shape is not None
    rows, cols = hint.brick_shape
    assert 1 <= rows <= 1024 and 1 <= cols <= 1024


def test_multidim_validation():
    with pytest.raises(InvalidHint):
        Hint(level=FileLevel.MULTIDIM).validate()  # missing shape
    with pytest.raises(InvalidHint):
        Hint.multidim((8, 8), 8, (16, 16)).validate()  # brick > array
    with pytest.raises(InvalidHint):
        Hint.multidim((8, 8), 8, (2,)).validate()  # rank mismatch
    with pytest.raises(InvalidHint):
        Hint.multidim((8, 0), 8, (2, 2)).validate()
    with pytest.raises(InvalidHint):
        Hint.multidim((8, 8), 0, (2, 2)).validate()


def test_array_constructor():
    hint = Hint.array((64, 64), 8, "(BLOCK, *)", nprocs=4)
    striping = hint.striping()
    assert isinstance(striping, ArrayStriping)
    assert striping.brick_count == 4


def test_array_validation():
    with pytest.raises(InvalidHint):
        Hint(level=FileLevel.ARRAY, array_shape=(8, 8)).validate()  # no pattern
    with pytest.raises(InvalidHint):
        Hint.array((8, 8), 8, "(BLOCK, *)", nprocs=0).validate()
    with pytest.raises(InvalidHint):
        Hint.array((8, 8), 8, "(CYCLIC, *)", nprocs=2).validate()
    with pytest.raises(InvalidHint):
        Hint.array((8, 8), 8, "(BLOCK)", nprocs=2).validate()  # rank mismatch
    with pytest.raises(InvalidHint):
        Hint.array((8, 8), 8, "(BLOCK, *)", nprocs=4, pgrid=(2, 1)).validate()


def test_array_explicit_pgrid():
    hint = Hint.array((8, 8), 8, "(BLOCK, BLOCK)", nprocs=4, pgrid=(4, 1))
    striping = hint.striping()
    assert striping.chunk_of(0).shape == (2, 8)


def test_hint_is_frozen():
    hint = Hint()
    with pytest.raises(AttributeError):
        hint.level = FileLevel.ARRAY  # type: ignore[misc]
