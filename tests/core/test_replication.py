"""Brick replication: placement, writes fanning to all copies, degraded
reads with transparent failover, inline read-repair, and namespace ops."""

import pytest

from repro.backends.faulty import FaultyBackend
from repro.backends.memory import MemoryBackend
from repro.core import DPFS, Hint
from repro.core.brick import ReplicaMap, is_replica_subfile, replica_subfile
from repro.core.placement import Greedy, RoundRobin, build_replicated_maps
from repro.errors import ChecksumError, InvalidHint, PlacementError

BRICK = 4 * 1024


def make_fs(n_servers=3, **kwargs):
    backend = FaultyBackend(MemoryBackend(n_servers))
    return DPFS(backend, io_retries=2, **kwargs), backend


def rhint(size, replicas=2):
    return Hint.linear(file_size=size, brick_size=BRICK, replicas=replicas)


def payload(n):
    return bytes((7 * i + 13) % 256 for i in range(n))


def corrupt_copy(fs, path, brick_id, copy):
    """Garble one stored copy of a brick directly on the backend."""
    record, bmap = fs.meta.load_file(path)
    if copy == 0:
        loc, name = bmap.location(brick_id), path
    else:
        rmap = fs.meta.load_replica_map(path, record)
        loc = rmap.locations(brick_id)[copy - 1]
        name = replica_subfile(path)
    fs.backend.write_extents(
        loc.server, name, [(loc.local_offset, loc.size)], b"\xde" * loc.size
    )
    return loc.server


# -- placement ---------------------------------------------------------------

def test_assign_replicas_distinct_servers():
    for policy in (RoundRobin(4), Greedy([1.0, 1.0, 3.0, 3.0])):
        for _ in range(8):
            servers = policy.assign_replicas(3)
            assert len(servers) == len(set(servers)) == 3


def test_assign_replicas_more_copies_than_servers():
    with pytest.raises(PlacementError):
        RoundRobin(2).assign_replicas(3)


def test_build_replicated_maps_no_colocated_copies():
    bmap, rmap = build_replicated_maps(Greedy([1.0] * 4), [BRICK] * 10, replicas=3)
    for brick_id in range(10):
        servers = {bmap.location(brick_id).server}
        servers.update(loc.server for loc in rmap.locations(brick_id))
        assert len(servers) == 3


def test_replica_map_rejects_brick_twice_on_one_server():
    with pytest.raises(PlacementError):
        ReplicaMap.build(2, [[0, 0], []], [BRICK])


def test_replica_subfile_naming_cannot_collide():
    rname = replica_subfile("/data/f")
    assert is_replica_subfile(rname)
    assert not is_replica_subfile("/data/f")
    # normalized DPFS paths never contain '//', so no user file can
    # shadow a replica subfile
    assert "//" in rname


# -- create / layout ---------------------------------------------------------

def test_create_replicated_file_layout():
    fs, _ = make_fs(3)
    data = payload(3 * BRICK)
    with fs.open("/f", "w", rhint(len(data), replicas=2)) as h:
        h.write(0, data)
    record, bmap = fs.meta.load_file("/f")
    assert record.replicas == 2
    rmap = fs.meta.load_replica_map("/f", record)
    for brick_id in range(len(bmap)):
        locs = rmap.locations(brick_id)
        assert len(locs) == 1
        assert locs[0].server != bmap.location(brick_id).server
    assert all(crc is not None for crc in record.brick_crcs)
    assert fs.read_file("/f") == data


def test_replicas_exceeding_servers_rejected():
    fs, _ = make_fs(2)
    with pytest.raises(InvalidHint):
        fs.open("/f", "w", rhint(BRICK, replicas=3))


def test_zero_replicas_rejected():
    with pytest.raises(InvalidHint):
        Hint.linear(file_size=BRICK, replicas=0).validate()


def test_df_accounts_replica_bytes():
    fs, _ = make_fs(3)
    data = payload(3 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    used = sum(row["used"] for row in fs.df())
    assert used == 2 * 3 * BRICK


def test_unreplicated_files_have_no_replica_subfiles():
    fs, _ = make_fs(3)
    fs.write_file("/f", payload(2 * BRICK))
    for server in range(3):
        names = fs.backend.list_subfiles(server)
        assert not any(is_replica_subfile(n) for n in names)


# -- degraded reads / failover ----------------------------------------------

def test_read_survives_corrupt_primary_and_repairs_it():
    fs, _ = make_fs(3)
    data = payload(4 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    server = corrupt_copy(fs, "/f", 1, copy=0)

    assert fs.read_file("/f") == data
    m = fs.metrics
    assert m.counter("dpfs_checksum_errors_total").total() >= 1
    assert m.counter("dpfs_read_failovers_total").by_label("reason")["checksum"] >= 1
    assert m.counter("dpfs_repairs_total").total() >= 1
    # inline read-repair rewrote the primary: clean reads from now on
    assert ("/f", 1, server) not in fs.quarantine
    assert fs.read_file("/f") == data
    from repro.core import scrub

    assert scrub(fs).clean


def test_read_survives_corrupt_replica():
    fs, _ = make_fs(3)
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    corrupt_copy(fs, "/f", 0, copy=1)
    # primary is intact and preferred; the read never sees the bad copy
    assert fs.read_file("/f") == data


def test_read_fails_over_on_server_error():
    fs, backend = make_fs(3)
    data = payload(3 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    record, bmap = fs.meta.load_file("/f")
    victim = bmap.location(0).server
    backend.fail_on("read", server=victim)

    assert fs.read_file("/f") == data
    reasons = fs.metrics.counter("dpfs_read_failovers_total").by_label("reason")
    assert reasons.get("error", 0) >= 1


def test_read_error_without_replicas_propagates():
    fs, backend = make_fs(3)
    fs.write_file("/f", payload(BRICK))
    record, bmap = fs.meta.load_file("/f")
    backend.fail_on("read", server=bmap.location(0).server)
    with pytest.raises(Exception):
        fs.read_file("/f")


def test_checksum_error_without_replicas_is_fatal():
    fs, _ = make_fs(3)
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=1))
    corrupt_copy(fs, "/f", 0, copy=0)
    with pytest.raises(ChecksumError):
        fs.read_file("/f")


def test_both_copies_corrupt_raises():
    fs, _ = make_fs(3)
    data = payload(BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    corrupt_copy(fs, "/f", 0, copy=0)
    corrupt_copy(fs, "/f", 0, copy=1)
    with pytest.raises(ChecksumError):
        fs.read_file("/f")


def test_health_aware_copy_choice(monkeypatch):
    fs, backend = make_fs(3)
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    record, bmap = fs.meta.load_file("/f")
    down = bmap.location(0).server
    monkeypatch.setattr(
        type(backend), "server_health",
        lambda self, server: 0 if server == down else 2,
    )
    assert fs.read_file("/f") == data
    reasons = fs.metrics.counter("dpfs_read_failovers_total").by_label("reason")
    assert reasons.get("health", 0) >= 1
    # the DOWN server was never asked to read
    assert backend.faults_fired.get("read", 0) == 0


# -- degraded writes ---------------------------------------------------------

def test_write_survives_one_dead_server():
    fs, backend = make_fs(3)
    data = payload(3 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    backend.fail_on("write", server=0)

    with fs.open("/f", "r+") as h:
        h.write(0, payload(3 * BRICK)[::-1])
    assert fs.metrics.counter("dpfs_write_degraded_total").total() >= 1
    backend.heal()
    # every brick kept at least one fresh copy; reads are byte-correct
    # (stale copies on server 0 lose checksum arbitration)
    assert fs.read_file("/f") == payload(3 * BRICK)[::-1]


def test_write_fails_when_no_copy_of_a_brick_lands():
    fs, backend = make_fs(3)
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    backend.fail_on("write")  # every server
    with fs.open("/f", "r+") as h:
        with pytest.raises(Exception):
            h.write(0, data[::-1])


def test_unreplicated_write_error_propagates():
    fs, backend = make_fs(3)
    fs.write_file("/f", payload(BRICK))
    record, bmap = fs.meta.load_file("/f")
    backend.fail_on("write", server=bmap.location(0).server)
    with fs.open("/f", "r+") as h:
        with pytest.raises(Exception):
            h.write(0, payload(BRICK))


def test_concurrent_partial_writers_keep_checksums_fresh():
    """Disjoint-extent writers sharing bricks (2 KiB segments in 4 KiB
    bricks) must leave CRCs matching the merged bytes: the read-back +
    update critical section serializes per path, so the last updater of
    a shared brick hashes a snapshot holding both writers' data."""
    import threading

    fs, _ = make_fs(3)
    n_threads, seg = 6, BRICK // 2
    total = n_threads * seg
    fs.write_file("/f", bytes(total), rhint(total, replicas=2))
    handles = [fs.open("/f", "r+") for _ in range(n_threads)]
    barrier = threading.Barrier(n_threads)
    errors = []

    def work(i):
        try:
            barrier.wait(timeout=30)
            handles[i].write(i * seg, bytes([i + 1]) * seg)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    for h in handles:
        h.close()
    assert fs.read_file("/f") == b"".join(
        bytes([i + 1]) * seg for i in range(n_threads)
    )
    from repro.core import scrub

    assert scrub(fs).clean


def test_partial_brick_write_keeps_checksums_fresh():
    fs, _ = make_fs(3)
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    with fs.open("/f", "r+") as h:
        h.write(100, b"XYZ" * 10)
    expected = bytearray(data)
    expected[100:130] = b"XYZ" * 10
    assert fs.read_file("/f") == bytes(expected)
    from repro.core import scrub

    assert scrub(fs).clean  # stored crcs match the merged contents


# -- growth / namespace ops --------------------------------------------------

def test_replicated_file_growth():
    fs, _ = make_fs(3)
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    extra = payload(3 * BRICK)[::-1]
    with fs.open("/f", "r+") as h:
        h.write(len(data), extra)
    record, bmap = fs.meta.load_file("/f")
    rmap = fs.meta.load_replica_map("/f", record)
    for brick_id in range(len(bmap)):
        assert len(rmap.locations(brick_id)) == 1
    assert fs.read_file("/f") == data + extra
    from repro.core import fsck

    assert fsck(fs).clean


def test_rename_moves_replica_subfiles():
    fs, _ = make_fs(3)
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    fs.rename("/f", "/g")
    assert fs.read_file("/g") == data
    old_r = replica_subfile("/f")
    for server in range(3):
        assert old_r not in fs.backend.list_subfiles(server)
    from repro.core import fsck

    assert fsck(fs).clean


def test_remove_deletes_replica_subfiles_and_quarantine():
    fs, _ = make_fs(3)
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    fs.quarantine.add(("/f", 0, 1))
    fs.remove("/f")
    for server in range(3):
        assert not any(
            is_replica_subfile(n) for n in fs.backend.list_subfiles(server)
        )
    assert not fs.quarantine


def test_three_copies_survive_double_corruption():
    fs, _ = make_fs(4)
    data = payload(3 * BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=3))
    corrupt_copy(fs, "/f", 2, copy=0)
    corrupt_copy(fs, "/f", 2, copy=1)
    assert fs.read_file("/f") == data
    assert fs.metrics.counter("dpfs_repairs_total").total() >= 1
