"""Concurrency tests for the parallel dispatch layer.

Unit tests drive :class:`Dispatcher` directly with synthetic requests;
the stress tests hammer one DPFS instance from many threads over the
memory and local backends.  Synchronization uses events/barriers, never
sleeps, so the tests are deterministic.
"""

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import pytest

from repro.backends import MemoryBackend
from repro.backends.faulty import FaultyBackend, TransientFault
from repro.core import DPFS, DispatchPolicy, Dispatcher, Hint, is_transient
from repro.errors import ConfigError, DispatchTimeout, RetryExhausted


@dataclass(frozen=True)
class FakeRequest:
    server: int


def make_items(n):
    return [FakeRequest(i) for i in range(n)]


# ---------------------------------------------------------------------------
# dispatcher unit tests
# ---------------------------------------------------------------------------

def test_empty_plan_is_noop():
    with Dispatcher() as d:
        assert d.run([], lambda item: 1 / 0) == []
    assert d.stats.batches == 0


def test_policy_validation():
    with pytest.raises(ConfigError):
        DispatchPolicy(max_workers=0)
    with pytest.raises(ConfigError):
        DispatchPolicy(retries=-1)
    with pytest.raises(ConfigError):
        DispatchPolicy(timeout_s=0)


def test_results_in_item_order_despite_completion_order():
    """Item 0 finishes *last* (it waits for every other item), yet the
    result list is in item order."""
    n = 4
    peers_done = threading.Event()
    lock = threading.Lock()
    finished = []

    def fn(item):
        if item.server == 0:
            peers_done.wait(timeout=10)
            return 0
        with lock:
            finished.append(item.server)
            if len(finished) == n - 1:
                peers_done.set()
        return item.server * 10

    with Dispatcher(DispatchPolicy(max_workers=n)) as d:
        assert d.run(make_items(n), fn) == [0, 10, 20, 30]


def test_sequential_mode_runs_inline_in_plan_order():
    seen = []
    caller = threading.current_thread()

    def fn(item):
        assert threading.current_thread() is caller
        seen.append(item.server)
        return item.server

    with Dispatcher(DispatchPolicy(max_workers=1)) as d:
        d.run(make_items(5), fn)
    assert seen == [0, 1, 2, 3, 4]
    assert d.stats.inline_batches == 1


def test_transient_error_retried_until_success():
    fails = {"left": 2}
    outcomes = []

    def fn(item):
        if fails["left"]:
            fails["left"] -= 1
            raise TransientFault("flaky")
        return "ok"

    policy = DispatchPolicy(max_workers=1, retries=3, backoff_s=0.0001)
    with Dispatcher(policy) as d:
        values = d.run(
            make_items(1), fn, on_result=lambda item, r: outcomes.append(r)
        )
    assert values == ["ok"]
    assert outcomes[0].retries == 2
    assert d.stats.retries == 2


def test_retry_exhausted_names_the_server():
    def fn(item):
        raise TransientFault("always down")

    policy = DispatchPolicy(max_workers=1, retries=2, backoff_s=0.0001)
    with Dispatcher(policy) as d:
        with pytest.raises(RetryExhausted) as excinfo:
            d.run([FakeRequest(7)], fn)
    assert "server 7" in str(excinfo.value)
    assert "3 attempts" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, TransientFault)


def test_permanent_error_is_never_retried():
    calls = []

    def fn(item):
        calls.append(item.server)
        raise ValueError("permanent")

    with Dispatcher(DispatchPolicy(max_workers=1, retries=5)) as d:
        with pytest.raises(ValueError):
            d.run(make_items(1), fn)
    assert calls == [0]
    assert d.stats.failures == 1


def test_successes_reported_even_when_a_peer_fails():
    """on_result fires for every successful request before the batch's
    first error propagates — partial progress is never lost."""
    done = []

    def fn(item):
        if item.server == 1:
            raise ValueError("boom")
        return item.server

    with Dispatcher(DispatchPolicy(max_workers=4)) as d:
        with pytest.raises(ValueError):
            d.run(make_items(4), fn, on_result=lambda item, r: done.append(r.value))
    assert sorted(done) == [0, 2, 3]


def test_transience_is_attribute_based():
    assert is_transient(TransientFault("x"))
    assert not is_transient(ValueError("x"))
    assert not is_transient(Exception("x"))


def test_timeout_names_the_stuck_server():
    release = threading.Event()

    def fn(item):
        if item.server == 1:
            release.wait(timeout=30)
        return item.server

    policy = DispatchPolicy(max_workers=2, timeout_s=0.2)
    d = Dispatcher(policy)
    try:
        with pytest.raises(DispatchTimeout) as excinfo:
            d.run(make_items(2), fn)
        assert "server 1" in str(excinfo.value)
        assert d.stats.timeouts == 1
    finally:
        release.set()
        d.shutdown()


def test_timeout_is_collected_not_raised_with_collect_errors():
    """``collect_errors=True`` promises every request a slot in the
    result list even when one misses the batch deadline: the timed-out
    slot holds a DispatchTimeout and the other slots still report their
    own outcomes instead of the batch aborting mid-collection."""
    release = threading.Event()

    def fn(item):
        if item.server == 1:
            release.wait(timeout=30)
        return item.server

    policy = DispatchPolicy(max_workers=3, timeout_s=0.2)
    d = Dispatcher(policy)
    try:
        results = d.run(make_items(3), fn, collect_errors=True)
        assert results[0] == 0
        assert isinstance(results[1], DispatchTimeout)
        assert results[2] == 2
        assert d.stats.timeouts == 1
    finally:
        release.set()
        d.shutdown()


def test_timeout_is_one_deadline_from_submission():
    """``timeout_s`` bounds the whole batch, not each sequential future
    wait: with 2 workers chewing through 6 × 0.15 s requests (0.45 s of
    work per worker) and a 0.25 s budget, the old per-future waits never
    individually expired and the batch quietly took ~2× the deadline."""
    import time as _time

    def fn(item):
        _time.sleep(0.15)
        return item.server

    policy = DispatchPolicy(max_workers=2, timeout_s=0.25)
    with Dispatcher(policy) as d:
        start = _time.perf_counter()
        with pytest.raises(DispatchTimeout):
            d.run(make_items(6), fn)
        elapsed = _time.perf_counter() - start
    # well under the 0.45s+ the old sequential-wait accounting allowed
    assert elapsed < 0.4, f"batch outlived its deadline: {elapsed:.3f}s"
    assert d.stats.timeouts == 1


def test_nested_dispatch_runs_inline_without_deadlock():
    """A dispatch issued from a pool worker must not wait on pool
    capacity: with one worker, a re-entrant fan-out would deadlock."""
    inner_threads = []

    def inner(item):
        inner_threads.append(threading.current_thread())
        return item.server

    def outer(item):
        return sum(d.run(make_items(3), inner))

    # max_workers=2 but force the single outer item through the pool by
    # dispatching two items
    d = Dispatcher(DispatchPolicy(max_workers=2))
    with d:
        results = d.run(make_items(2), outer)
    assert results == [3, 3]
    # the inner dispatches ran on the pool workers themselves
    assert all(t.name.startswith("dpfs-io") for t in inner_threads)


def test_dispatch_after_shutdown_degrades_to_inline():
    d = Dispatcher(DispatchPolicy(max_workers=4))
    d.shutdown()
    assert d.run(make_items(3), lambda item: item.server) == [0, 1, 2]


# ---------------------------------------------------------------------------
# file-system stress tests
# ---------------------------------------------------------------------------

def _pattern(seed: int, n: int) -> bytes:
    return bytes((seed * 31 + i) % 256 for i in range(n))


def test_threads_hammering_one_fs_memory():
    """8 threads, each reading and writing its own file on one shared
    DPFS over the memory backend; every byte must survive."""
    n_threads = 8
    rounds = 5
    size = 64 * 1024
    fs = DPFS.memory(4, io_workers=8)
    handles = []
    for i in range(n_threads):
        fs.write_file(
            f"/t{i}",
            bytes(size),
            hint=Hint.linear(file_size=size, brick_size=4096),
        )
        handles.append(fs.open(f"/t{i}", "r+", rank=i))

    errors = []

    def work(i):
        try:
            handle = handles[i]
            for r in range(rounds):
                payload = _pattern(i * rounds + r, size)
                handle.write(0, payload)
                assert handle.read(0, size) == payload
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    for i, handle in enumerate(handles):
        assert handle.read(0, size) == _pattern(i * rounds + rounds - 1, size)
        assert handle.stats.requests > 0
        assert sum(handle.stats.per_server_latency_s.values()) >= 0.0
        handle.close()
    fs.close()


def test_barrier_released_writers_disjoint_extents():
    """Barrier-synchronized simultaneous writers to disjoint extents of
    one shared file: the extents deliberately straddle brick boundaries
    (brick_size=1000 vs 4096-byte segments), so concurrent workers hit
    the same subfiles."""
    n_threads = 8
    seg = 4096
    total = n_threads * seg
    fs = DPFS.memory(4, io_workers=8)
    fs.write_file(
        "/shared", bytes(total), hint=Hint.linear(file_size=total, brick_size=1000)
    )
    handles = [fs.open("/shared", "r+", rank=i) for i in range(n_threads)]
    barrier = threading.Barrier(n_threads)
    errors = []

    def work(i):
        try:
            barrier.wait(timeout=30)
            handles[i].write(i * seg, bytes([i + 1]) * seg)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    expect = b"".join(bytes([i + 1]) * seg for i in range(n_threads))
    assert fs.read_file("/shared") == expect
    for handle in handles:
        handle.close()
    fs.close()


def test_barrier_released_writers_local_backend(tmp_path):
    """Same disjoint-extent race over the directory-backed backend."""
    n_threads = 6
    seg = 2048
    total = n_threads * seg
    fs = DPFS.local(tmp_path / "dpfs", 3, io_workers=6)
    fs.write_file(
        "/shared", bytes(total), hint=Hint.linear(file_size=total, brick_size=900)
    )
    handles = [fs.open("/shared", "r+", rank=i) for i in range(n_threads)]
    barrier = threading.Barrier(n_threads)
    errors = []

    def work(i):
        try:
            barrier.wait(timeout=30)
            handles[i].write(i * seg, _pattern(i, seg))
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    expect = b"".join(_pattern(i, seg) for i in range(n_threads))
    assert fs.read_file("/shared") == expect
    for handle in handles:
        handle.close()
    fs.close()


def test_concurrent_readers_shared_file():
    """Many readers of overlapping regions see a consistent image."""
    size = 128 * 1024
    payload = _pattern(3, size)
    fs = DPFS.memory(5, io_workers=8)
    fs.write_file(
        "/ro", payload, hint=Hint.linear(file_size=size, brick_size=8192)
    )
    with ThreadPoolExecutor(8) as pool:

        def reader(i):
            with fs.open("/ro", "r", rank=i) as handle:
                off = (i * 7919) % (size // 2)
                return handle.read(off, size // 2) == payload[off : off + size // 2]

        assert all(pool.map(reader, range(16)))
    fs.close()


@pytest.mark.parametrize("level", ["linear", "multidim", "array"])
def test_workers_1_and_8_produce_identical_files(level):
    """The same scripted workload under sequential and 8-way dispatch
    must yield byte-identical files."""
    outputs = {}
    for workers in (1, 8):
        fs = DPFS.memory(4, io_workers=workers)
        if level == "linear":
            hint = Hint.linear(file_size=0, brick_size=512)
            with fs.open("/f", "w", hint=hint) as handle:
                for i in range(12):
                    handle.write(i * 700, _pattern(i, 900))
        elif level == "multidim":
            hint = Hint.multidim((64, 64), 4, (16, 16))
            with fs.open("/f", "w", hint=hint) as handle:
                for i in range(8):
                    r, c = (i * 5) % 48, (i * 11) % 48
                    handle.write_region(
                        (r, c), (16, 16), _pattern(i, 16 * 16 * 4)
                    )
        else:
            hint = Hint.array((32, 32), 8, "(BLOCK, BLOCK)", nprocs=4)
            with fs.open("/f", "w", hint=hint) as handle:
                for rank in range(4):
                    handle.write_chunk(_pattern(rank, 16 * 32 * 8 // 2), rank)
        outputs[workers] = fs.read_file("/f")
        fs.close()
    assert outputs[1] == outputs[8]


def test_dispatcher_stats_accumulate_across_handles():
    fs = DPFS.memory(4, io_workers=4)
    fs.write_file(
        "/a", bytes(8192), hint=Hint.linear(file_size=8192, brick_size=512)
    )
    fs.read_file("/a")
    stats = fs.dispatcher.stats
    assert stats.batches >= 2
    assert stats.requests >= stats.batches
    assert stats.failures == 0
    fs.close()


def test_simulated_backend_stays_usable_under_parallel_dispatch():
    """The DES-priced backend serializes pricing internally, so it can
    sit under the parallel dispatcher without corrupting its clock."""
    from repro.backends import SimulatedBackend
    from repro.netsim.classes import CLASS1

    backend = SimulatedBackend([CLASS1] * 4)
    fs = DPFS(backend, io_workers=4)
    payload = _pattern(9, 32 * 1024)
    fs.write_file(
        "/sim", payload, hint=Hint.linear(file_size=32 * 1024, brick_size=4096)
    )
    assert fs.read_file("/sim") == payload
    assert backend.clock > 0.0
    fs.close()


def test_transient_fault_retry_is_invisible_to_callers():
    faulty = FaultyBackend(MemoryBackend(4))
    fs = DPFS(faulty, io_workers=4, io_backoff_s=0.0001)
    payload = _pattern(1, 4096)
    fs.write_file(
        "/f", payload, hint=Hint.linear(file_size=4096, brick_size=256)
    )
    faulty.fail_next("read", times=2, transient=True)
    with fs.open("/f", "r") as handle:
        assert handle.read(0, 4096) == payload
        assert handle.stats.retries >= 1
        assert sum(handle.stats.per_server_retries.values()) == handle.stats.retries
    assert faulty.faults_fired["read"] == 2
    fs.close()
