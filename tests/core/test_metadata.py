"""Metadata manager tests: the four §5 tables and the directory tree."""

import pytest

from repro.backends import MemoryBackend
from repro.core import BrickMap, FileLevel
from repro.core.metadata import (
    FileRecord,
    MetadataManager,
    normalize_path,
    split_path,
)
from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidPath,
)
from repro.metadb import Database


@pytest.fixture
def meta():
    manager = MetadataManager(Database())
    manager.register_servers(MemoryBackend(3).servers)
    return manager


def _record(path, n_bricks=6):
    return FileRecord(
        path=path,
        owner="tester",
        permission=0o744,
        size=n_bricks * 100,
        level=FileLevel.LINEAR,
        element_size=1,
        array_shape=None,
        brick_shape=None,
        brick_size=100,
        pattern=None,
        nprocs=None,
        pgrid=None,
        placement="round_robin",
        brick_sizes=[100] * n_bricks,
    )


def _bmap(n_bricks=6, n_servers=3):
    bmap = BrickMap(n_servers=n_servers)
    for i in range(n_bricks):
        bmap.append(i % n_servers, 100)
    return bmap


def _names(meta):
    return [row["server_name"] for row in meta.servers()]


# -- paths -------------------------------------------------------------------

def test_normalize_path():
    assert normalize_path("/a/b/") == "/a/b"
    assert normalize_path("a/b") == "/a/b"
    assert normalize_path("/a/./b/../c") == "/a/c"
    assert normalize_path("/") == "/"
    # POSIX root semantics: ".." at the root stays at the root
    assert normalize_path("/../etc") == "/etc"
    with pytest.raises(InvalidPath):
        normalize_path("")
    with pytest.raises(InvalidPath):
        normalize_path("/a\x00b")


def test_split_path():
    assert split_path("/a/b") == ("/a", "b")
    assert split_path("/a") == ("/", "a")
    with pytest.raises(InvalidPath):
        split_path("/")


# -- schema / servers ----------------------------------------------------------

def test_schema_created(meta):
    names = meta.db.table_names()
    assert names == [
        "dpfs_directory",
        "dpfs_file_attr",
        "dpfs_file_distribution",
        "dpfs_file_replica",
        "dpfs_server",
    ]


def test_register_servers_idempotent(meta):
    meta.register_servers(MemoryBackend(3).servers)
    assert len(meta.servers()) == 3
    assert meta.server_performance() == [1.0, 1.0, 1.0]


def test_root_directory_exists(meta):
    assert meta.dir_exists("/")
    assert meta.listdir("/") == ([], [])


# -- directories ---------------------------------------------------------------

def test_mkdir_and_listdir(meta):
    meta.mkdir("/home")
    meta.mkdir("/home/user")
    assert meta.listdir("/") == (["home"], [])
    assert meta.listdir("/home") == (["user"], [])


def test_mkdir_missing_parent_rejected(meta):
    with pytest.raises(FileNotFound):
        meta.mkdir("/a/b")


def test_mkdir_duplicate_rejected(meta):
    meta.mkdir("/a")
    with pytest.raises(FileExists):
        meta.mkdir("/a")


def test_makedirs(meta):
    meta.makedirs("/deep/ly/nested")
    assert meta.dir_exists("/deep/ly/nested")
    meta.makedirs("/deep/ly/nested")  # idempotent


def test_rmdir(meta):
    meta.mkdir("/a")
    meta.rmdir("/a")
    assert not meta.dir_exists("/a")
    assert meta.listdir("/") == ([], [])


def test_rmdir_nonempty_rejected(meta):
    meta.makedirs("/a/b")
    with pytest.raises(DirectoryNotEmpty):
        meta.rmdir("/a")


def test_rmdir_root_rejected(meta):
    with pytest.raises(InvalidPath):
        meta.rmdir("/")


# -- files ---------------------------------------------------------------------

def test_create_and_load_file(meta):
    meta.mkdir("/data")
    bmap = _bmap()
    meta.create_file(_record("/data/f"), bmap, _names(meta))
    record, loaded = meta.load_file("/data/f")
    assert record.path == "/data/f"
    assert record.level is FileLevel.LINEAR
    assert record.brick_sizes == [100] * 6
    assert loaded.to_lists() == bmap.to_lists()
    assert meta.listdir("/data") == ([], ["f"])


def test_create_file_in_missing_dir_rejected(meta):
    with pytest.raises(FileNotFound):
        meta.create_file(_record("/nope/f"), _bmap(), _names(meta))


def test_create_duplicate_file_rejected(meta):
    meta.create_file(_record("/f"), _bmap(), _names(meta))
    with pytest.raises(FileExists):
        meta.create_file(_record("/f"), _bmap(), _names(meta))
    # directory row unchanged: exactly one entry
    assert meta.listdir("/")[1] == ["f"]


def test_file_and_dir_name_collision_rejected(meta):
    meta.mkdir("/x")
    with pytest.raises(FileExists):
        meta.create_file(_record("/x"), _bmap(), _names(meta))


def test_load_missing_file_rejected(meta):
    with pytest.raises(FileNotFound):
        meta.load_file("/ghost")


def test_remove_file(meta):
    meta.create_file(_record("/f"), _bmap(), _names(meta))
    meta.remove_file("/f")
    assert not meta.file_exists("/f")
    assert meta.listdir("/")[1] == []
    # distribution rows cleaned up
    rows = meta.db.execute(
        "SELECT COUNT(*) FROM dpfs_file_distribution"
    ).scalar()
    assert rows == 0


def test_update_file_size(meta):
    meta.create_file(_record("/f"), _bmap(), _names(meta))
    meta.update_file_size("/f", 999)
    record, _ = meta.load_file("/f")
    assert record.size == 999


def test_update_distribution_after_growth(meta):
    meta.create_file(_record("/f", n_bricks=3), _bmap(3), _names(meta))
    grown = _bmap(9)
    meta.update_distribution("/f", grown, [100] * 9, _names(meta))
    record, loaded = meta.load_file("/f")
    assert len(record.brick_sizes) == 9
    assert loaded.to_lists() == grown.to_lists()


def test_set_permission_and_stat(meta):
    meta.create_file(_record("/f"), _bmap(), _names(meta))
    meta.set_permission("/f", 0o600)
    st = meta.stat("/f")
    assert st["permission"] == 0o600
    assert st["is_dir"] is False
    assert meta.stat("/")["is_dir"] is True
    with pytest.raises(FileNotFound):
        meta.stat("/ghost")


def test_iter_files_sorted(meta):
    for name in ("/c", "/a", "/b"):
        meta.create_file(_record(name), _bmap(), _names(meta))
    assert meta.iter_files() == ["/a", "/b", "/c"]


def test_distribution_rows_match_paper_schema(meta):
    """DPFS-FILE-DISTRIBUTION keys rows by server and stores bricklists."""
    meta.create_file(_record("/f"), _bmap(), _names(meta))
    rows = meta.db.execute(
        "SELECT server_name, bricklist FROM dpfs_file_distribution "
        "WHERE filename = '/f' ORDER BY server_name"
    ).rows
    assert len(rows) == 3
    all_bricks = sorted(b for row in rows for b in row["bricklist"])
    assert all_bricks == list(range(6))
