"""Property-based tests for striping, placement and the full read/write
path — the paper's core invariants under random geometry."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DPFS,
    ArrayStriping,
    Greedy,
    Hint,
    LinearStriping,
    MultidimStriping,
    RoundRobin,
    build_brick_map,
    plan_requests,
)
from repro.hpf import Region


# ---------------------------------------------------------------------------
# striping invariants
# ---------------------------------------------------------------------------

@st.composite
def md_cases(draw):
    rows = draw(st.integers(1, 32))
    cols = draw(st.integers(1, 32))
    brows = draw(st.integers(1, rows))
    bcols = draw(st.integers(1, cols))
    elem = draw(st.sampled_from([1, 2, 4, 8]))
    md = MultidimStriping((rows, cols), elem, (brows, bcols))
    r0 = draw(st.integers(0, rows - 1))
    r1 = draw(st.integers(r0 + 1, rows))
    c0 = draw(st.integers(0, cols - 1))
    c1 = draw(st.integers(c0 + 1, cols))
    return md, Region.of((r0, r1), (c0, c1))


@given(md_cases())
@settings(max_examples=200, deadline=None)
def test_multidim_slices_cover_region_exactly(case):
    md, region = case
    slices = md.slices_for_region(region)
    # payload covers the region exactly, in order, without overlap
    assert sum(s.length for s in slices) == region.volume * md.element_size
    expected = 0
    for s in slices:
        assert s.buffer_offset == expected
        expected += s.length
    # every slice stays inside its brick
    brick_bytes = math.prod(md.brick_shape) * md.element_size
    for s in slices:
        assert 0 <= s.offset and s.offset + s.length <= brick_bytes
        assert 0 <= s.brick_id < md.brick_count


@given(md_cases())
@settings(max_examples=100, deadline=None)
def test_multidim_touched_bricks_match_geometry(case):
    md, region = case
    slices = md.slices_for_region(region)
    touched = {s.brick_id for s in slices}
    expected = {
        b
        for b in range(md.brick_count)
        if md.brick_region(b).intersect(region) is not None
    }
    assert touched == expected


@given(
    st.integers(1, 64),         # brick size
    st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 64)),
        min_size=0,
        max_size=8,
    ),
)
@settings(max_examples=150, deadline=None)
def test_linear_slices_cover_extents_exactly(brick_size, raw_extents):
    lin = LinearStriping(brick_size, 600)
    extents = [(o, ln) for o, ln in raw_extents if o + ln <= 600]
    slices = lin.slices_for_extents(extents)
    assert sum(s.length for s in slices) == sum(ln for _o, ln in extents)
    for s in slices:
        assert s.offset + s.length <= brick_size
        # slice maps back to the right file position
        file_pos = s.brick_id * brick_size + s.offset
        assert 0 <= file_pos < 600


@st.composite
def array_cases(draw):
    rows = draw(st.integers(2, 24))
    cols = draw(st.integers(2, 24))
    pattern = draw(st.sampled_from(["(BLOCK, *)", "(*, BLOCK)", "(BLOCK, BLOCK)"]))
    if pattern == "(BLOCK, BLOCK)":
        nprocs = draw(st.sampled_from([1, 2, 4]))
    else:
        nprocs = draw(st.integers(1, 6))
    return ArrayStriping((rows, cols), 1, pattern, nprocs)


@given(array_cases())
@settings(max_examples=150, deadline=None)
def test_array_chunks_partition_and_slice_exactly(ar):
    # chunks tile the array
    assert sum(c.volume for c in ar.chunks) == math.prod(ar.array_shape)
    # a full-array region covers every non-empty chunk completely
    slices = ar.slices_for_region(Region.full(ar.array_shape))
    per_brick: dict[int, int] = {}
    for s in slices:
        per_brick[s.brick_id] = per_brick.get(s.brick_id, 0) + s.length
    for rank, chunk in enumerate(ar.chunks):
        if not chunk.empty:
            assert per_brick.get(rank, 0) == chunk.volume


# ---------------------------------------------------------------------------
# placement invariants
# ---------------------------------------------------------------------------

@given(
    st.lists(st.floats(0.5, 10.0), min_size=1, max_size=8),
    st.integers(0, 300),
)
@settings(max_examples=150, deadline=None)
def test_greedy_assignment_complete_and_balanced(perf, n_bricks):
    greedy = Greedy(perf)
    assign = greedy.assign(n_bricks)
    assert len(assign) == n_bricks
    assert all(0 <= s < len(perf) for s in assign)
    # accumulated finish times within one max brick-time of each other
    if n_bricks >= len(perf):
        acc = [assign.count(k) * perf[k] for k in range(len(perf))]
        assert max(acc) - min(acc) <= max(perf) + 1e-9


@given(st.integers(1, 8), st.integers(0, 200))
@settings(max_examples=100, deadline=None)
def test_round_robin_counts_even(n_servers, n_bricks):
    assign = RoundRobin(n_servers).assign(n_bricks)
    counts = [assign.count(s) for s in range(n_servers)]
    assert max(counts) - min(counts) <= 1


# ---------------------------------------------------------------------------
# combination invariants
# ---------------------------------------------------------------------------

@given(
    st.integers(1, 6),                      # servers
    st.integers(1, 40),                     # bricks
    st.integers(0, 7),                      # rank
    st.booleans(),                          # combine
)
@settings(max_examples=150, deadline=None)
def test_plan_preserves_payload_bytes(n_servers, n_bricks, rank, combine):
    lin = LinearStriping(10, n_bricks * 10)
    bmap = build_brick_map(RoundRobin(n_servers), lin.brick_sizes())
    slices = lin.slices_for_extents([(0, n_bricks * 10)])
    plan = plan_requests(slices, bmap, combine=combine, rank=rank)
    # same bytes, mapped to valid subfile ranges
    assert sum(r.payload_bytes for r in plan) == n_bricks * 10
    for req in plan:
        assert 0 <= req.server < n_servers
        subfile = bmap.subfile_size(req.server)
        for off, ln in req.extents:
            assert 0 <= off and off + ln <= subfile
    if combine:
        servers = [r.server for r in plan]
        assert len(servers) == len(set(servers))  # one request per server


# ---------------------------------------------------------------------------
# end-to-end read/write oracle
# ---------------------------------------------------------------------------

@given(
    st.sampled_from(["linear", "multidim", "array"]),
    st.integers(1, 5),   # servers
    st.data(),
)
@settings(max_examples=30, deadline=None, derandomize=True)
def test_parallel_dispatch_matches_sequential(level, n_servers, data):
    """For any file level, brick geometry and nprocs, reading through the
    8-way dispatch pool returns byte-identical data to the sequential
    (workers=1) path over arbitrary extents."""
    seq = DPFS.memory(n_servers, io_workers=1)
    par = DPFS.memory(n_servers, io_workers=8)
    try:
        if level == "linear":
            size = data.draw(st.integers(1, 4096))
            brick = data.draw(st.integers(1, 512))
            hint = Hint.linear(file_size=size, brick_size=brick)
            payload = data.draw(st.binary(min_size=size, max_size=size))
            for fs in (seq, par):
                fs.write_file("/f", payload, hint=hint)
            for _ in range(4):
                off = data.draw(st.integers(0, size - 1))
                ln = data.draw(st.integers(1, size - off))
                combine = data.draw(st.booleans())
                with seq.open("/f", "r", combine=combine) as hs:
                    want = hs.read(off, ln)
                with par.open("/f", "r", combine=combine) as hp:
                    assert hp.read(off, ln) == want
        else:
            rows = data.draw(st.integers(2, 16))
            cols = data.draw(st.integers(2, 16))
            if level == "multidim":
                brows = data.draw(st.integers(1, rows))
                bcols = data.draw(st.integers(1, cols))
                hint = Hint.multidim((rows, cols), 8, (brows, bcols))
            else:
                pattern = data.draw(
                    st.sampled_from(["(BLOCK, *)", "(*, BLOCK)", "(BLOCK, BLOCK)"])
                )
                nprocs = (
                    data.draw(st.sampled_from([1, 2, 4]))
                    if pattern == "(BLOCK, BLOCK)"
                    else data.draw(st.integers(1, 6))
                )
                hint = Hint.array((rows, cols), 8, pattern, nprocs)
            arr = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
            for fs in (seq, par):
                with fs.open("/f", "w", hint=hint) as handle:
                    handle.write_array((0, 0), arr)
            for _ in range(4):
                r0 = data.draw(st.integers(0, rows - 1))
                r1 = data.draw(st.integers(r0 + 1, rows))
                c0 = data.draw(st.integers(0, cols - 1))
                c1 = data.draw(st.integers(c0 + 1, cols))
                rank = data.draw(st.integers(0, 3))
                with seq.open("/f", "r", rank=rank) as hs:
                    want = hs.read_array((r0, c0), (r1 - r0, c1 - c0), np.float64)
                with par.open("/f", "r", rank=rank) as hp:
                    got = hp.read_array((r0, c0), (r1 - r0, c1 - c0), np.float64)
                assert np.array_equal(got, want)
    finally:
        seq.close()
        par.close()


@given(
    st.integers(1, 16),  # brick rows
    st.integers(1, 16),  # brick cols
    st.integers(2, 5),   # servers
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_filesystem_matches_numpy_oracle(brows, bcols, n_servers, data):
    """Random region writes then reads agree with an in-memory ndarray."""
    shape = (16, 16)
    brows = min(brows, shape[0])
    bcols = min(bcols, shape[1])
    fs = DPFS.memory(n_servers)
    hint = Hint.multidim(shape, 8, (brows, bcols))
    oracle = np.zeros(shape)
    with fs.open("/f", "w", hint=hint) as handle:
        handle.write_array((0, 0), oracle)
    for _ in range(4):
        r0 = data.draw(st.integers(0, shape[0] - 1))
        r1 = data.draw(st.integers(r0 + 1, shape[0]))
        c0 = data.draw(st.integers(0, shape[1] - 1))
        c1 = data.draw(st.integers(c0 + 1, shape[1]))
        value = float(data.draw(st.integers(1, 100)))
        block = np.full((r1 - r0, c1 - c0), value)
        oracle[r0:r1, c0:c1] = block
        rank = data.draw(st.integers(0, 3))
        combine = data.draw(st.booleans())
        with fs.open("/f", "r+", rank=rank, combine=combine) as handle:
            handle.write_array((r0, c0), block)
    with fs.open("/f", "r") as handle:
        got = handle.read_array((0, 0), shape, np.float64)
    assert np.array_equal(got, oracle)
