"""Unit tests for the write-ahead intent journal and recovery engine,
plus regressions for the fan-out error aggregation and the per-path
CRC-lock map eviction that rode along with crash consistency."""

import pytest

from repro.backends.faulty import FaultyBackend, InjectedFault
from repro.backends.memory import MemoryBackend
from repro.core import DPFS, Hint, fsck
from repro.core.intent import IntentLog
from repro.errors import FileNotFound, IntentError, MultiServerError
from repro.metadb import Database

BRICK = 1024


def lhint(size):
    return Hint.linear(file_size=size, brick_size=BRICK)


# ---------------------------------------------------------------------------
# IntentLog
# ---------------------------------------------------------------------------

def test_begin_persists_and_pending_roundtrips():
    log = IntentLog(Database())
    intent = log.begin(
        "rename",
        {"old": "/a", "new": "/b"},
        steps=["rekey-metadata", "rename-subfiles"],
        commit_step="rekey-metadata",
    )
    assert intent.intent_id == "i00000001"
    (got,) = log.pending()
    assert got.op == "rename"
    assert got.args == {"old": "/a", "new": "/b"}
    assert got.steps == ["rekey-metadata", "rename-subfiles"]
    assert got.done == []
    assert got.commit_step == "rekey-metadata"
    assert got.path == "/a"


def test_mark_and_retire():
    log = IntentLog(Database())
    intent = log.begin("remove", {"path": "/f"}, ["a", "b"], "a")
    assert not intent.committed
    log.mark(intent, "a")
    (got,) = log.pending()
    assert got.done == ["a"]
    assert got.committed
    log.retire(intent)
    assert log.pending() == []
    log.retire(intent)  # idempotent


def test_ids_are_sequential_and_survive_retire():
    log = IntentLog(Database())
    first = log.begin("remove", {"path": "/a"}, ["s"], "s")
    second = log.begin("remove", {"path": "/b"}, ["s"], "s")
    assert [i.intent_id for i in log.pending()] == [
        first.intent_id,
        second.intent_id,
    ]
    log.retire(first)
    third = log.begin("remove", {"path": "/c"}, ["s"], "s")
    assert third.intent_id > second.intent_id


def test_empty_commit_step_always_rolls_forward():
    log = IntentLog(Database())
    intent = log.begin("refill", {"path": "/f", "server": 1}, ["copy"], "")
    assert intent.committed  # forward even with no steps done


def test_bad_commit_step_rejected():
    log = IntentLog(Database())
    with pytest.raises(IntentError):
        log.begin("remove", {"path": "/f"}, ["a"], "nonexistent-step")


def test_mark_unknown_step_rejected():
    log = IntentLog(Database())
    intent = log.begin("remove", {"path": "/f"}, ["a"], "a")
    with pytest.raises(IntentError):
        log.mark(intent, "b")


def test_journal_survives_reopen(tmp_path):
    meta = tmp_path / "meta.db"
    log = IntentLog(Database(meta))
    log.begin("remove", {"path": "/f"}, ["a"], "a")
    log.db.close()
    reopened = IntentLog(Database(meta))
    (got,) = reopened.pending()
    assert got.op == "remove" and got.path == "/f"


# ---------------------------------------------------------------------------
# recovery engine plumbing
# ---------------------------------------------------------------------------

def test_unknown_intent_op_reported_stuck_not_raised():
    fs = DPFS.memory(n_servers=2)
    fs.intents.begin("frobnicate", {"path": "/x"}, ["s"], "")
    report = fs.recover()
    assert not report.clean
    (action,) = report.stuck
    assert "unknown intent op" in action.detail
    # the intent is kept for a smarter future sweep
    assert len(fs.intents.pending()) == 1


def test_recovery_failure_keeps_intent_and_continues_sweep():
    backend = FaultyBackend(MemoryBackend(2))
    fs = DPFS(backend, io_workers=1)
    fs.write_file("/keep", b"k" * 64)
    # two pending intents: the first will fail (delete fault), the
    # second succeeds — the sweep must process both
    fs.intents.begin("remove", {"path": "/gone-a"}, ["remove-metadata"], "")
    fs.intents.begin(
        "create",
        {"path": "/gone-b"},
        ["create-subfiles", "write-metadata"],
        "write-metadata",  # not reached -> rolls back
    )
    backend.fail_next("delete", times=1, server=0)
    report = fs.recover()
    assert len(report.actions) == 2
    assert len(report.stuck) == 1
    assert len(report.recovered) == 1
    assert len(fs.intents.pending()) == 1
    backend.heal()
    assert fs.recover().clean
    assert fs.intents.pending() == []


def test_mount_time_recovery_runs_by_default():
    db = Database()
    backend = MemoryBackend(2)
    fs = DPFS(backend, db, auto_recover=False)
    fs.intents.begin("remove", {"path": "/ghost"}, ["remove-metadata"], "")
    fs2 = DPFS(backend, db)
    assert fs2.last_recovery is not None
    assert len(fs2.last_recovery.actions) == 1
    assert fs2.intents.pending() == []


# ---------------------------------------------------------------------------
# satellite: all-servers fan-out with aggregate errors
# ---------------------------------------------------------------------------

def test_remove_applies_to_all_servers_despite_failure():
    """One failing server no longer aborts the fan-out mid-loop: every
    other server's subfile is deleted and the failures come back as one
    aggregate MultiServerError."""
    backend = FaultyBackend(MemoryBackend(4))
    fs = DPFS(backend, io_workers=1)
    fs.write_file("/f", bytes(4 * BRICK), lhint(4 * BRICK))
    assert all(backend.subfile_exists(s, "/f") for s in range(4))
    backend.fail_on("delete", server=2)
    with pytest.raises(MultiServerError) as excinfo:
        fs.remove("/f")
    assert [s for s, _ in excinfo.value.errors] == [2]
    assert isinstance(excinfo.value.errors[0][1], InjectedFault)
    # servers 0, 1 and 3 were still cleaned up; metadata is gone
    for server in (0, 1, 3):
        assert not backend.subfile_exists(server, "/f")
    assert backend.subfile_exists(2, "/f")
    assert not fs.exists("/f")
    # the intent stayed journalled; once the server heals, recovery
    # finishes the job without manual intervention
    assert len(fs.intents.pending()) == 1
    backend.heal()
    assert fs.recover().clean
    assert not backend.subfile_exists(2, "/f")
    assert fsck(fs).clean


def test_rename_applies_to_all_servers_despite_failure():
    backend = FaultyBackend(MemoryBackend(4))
    fs = DPFS(backend, io_workers=1)
    data = bytes(range(256)) * 16
    fs.write_file("/old", data, lhint(len(data)))
    backend.fail_on("rename", server=1)
    with pytest.raises(MultiServerError) as excinfo:
        fs.rename("/old", "/new")
    assert [s for s, _ in excinfo.value.errors] == [1]
    # metadata committed: the file lives at /new
    assert fs.exists("/new") and not fs.exists("/old")
    backend.heal()
    assert fs.recover().clean
    assert fsck(fs).clean
    assert fs.read_file("/new") == data


def test_remove_missing_file_still_raises_file_not_found():
    fs = DPFS.memory(n_servers=2)
    with pytest.raises(FileNotFound):
        fs.remove("/nope")
    assert fs.intents.pending() == []


def test_rename_tolerates_missing_replica_subfiles():
    """A non-replicated file has no replica subfiles; the idempotent
    per-server rename must not error on their absence."""
    fs = DPFS.memory(n_servers=4)
    data = b"payload" * 100
    fs.write_file("/plain", data, lhint(len(data)))
    fs.rename("/plain", "/moved")
    assert fs.read_file("/moved") == data
    assert fs.intents.pending() == []
    assert fsck(fs).clean


# ---------------------------------------------------------------------------
# satellite: per-path CRC lock map eviction
# ---------------------------------------------------------------------------

def test_crc_lock_map_does_not_retain_deleted_paths():
    fs = DPFS.memory(n_servers=4)
    for i in range(8):
        path = f"/f{i}"
        fs.write_file(path, bytes(BRICK), lhint(BRICK))
        assert path in fs._crc_locks
        fs.remove(path)
        assert path not in fs._crc_locks
    assert fs._crc_locks == {}


def test_crc_lock_map_rekeys_on_rename():
    fs = DPFS.memory(n_servers=4)
    fs.write_file("/a", bytes(BRICK), lhint(BRICK))
    assert "/a" in fs._crc_locks
    fs.rename("/a", "/b")
    assert "/a" not in fs._crc_locks
    # the new name gets a fresh lock on its next write
    with fs.open("/b", "r+") as h:
        h.write(0, b"x" * 16)
    assert "/b" in fs._crc_locks
