"""Unit tests for the write-ahead intent journal and recovery engine,
plus regressions for the fan-out error aggregation and the per-path
CRC-lock map eviction that rode along with crash consistency."""

import pytest

from repro.backends.faulty import FaultyBackend, InjectedFault
from repro.backends.memory import MemoryBackend
from repro.core import DPFS, Hint, fsck
from repro.core.intent import IntentLog
from repro.errors import FileExists, FileNotFound, IntentError, MultiServerError
from repro.metadb import Database

BRICK = 1024


def lhint(size):
    return Hint.linear(file_size=size, brick_size=BRICK)


# ---------------------------------------------------------------------------
# IntentLog
# ---------------------------------------------------------------------------

def test_begin_persists_and_pending_roundtrips():
    log = IntentLog(Database())
    intent = log.begin(
        "rename",
        {"old": "/a", "new": "/b"},
        steps=["rekey-metadata", "rename-subfiles"],
        commit_step="rekey-metadata",
    )
    assert intent.intent_id == "i00000001"
    (got,) = log.pending()
    assert got.op == "rename"
    assert got.args == {"old": "/a", "new": "/b"}
    assert got.steps == ["rekey-metadata", "rename-subfiles"]
    assert got.done == []
    assert got.commit_step == "rekey-metadata"
    assert got.path == "/a"


def test_mark_and_retire():
    log = IntentLog(Database())
    intent = log.begin("remove", {"path": "/f"}, ["a", "b"], "a")
    assert not intent.committed
    log.mark(intent, "a")
    (got,) = log.pending()
    assert got.done == ["a"]
    assert got.committed
    log.retire(intent)
    assert log.pending() == []
    log.retire(intent)  # idempotent


def test_ids_are_sequential_and_survive_retire():
    log = IntentLog(Database())
    first = log.begin("remove", {"path": "/a"}, ["s"], "s")
    second = log.begin("remove", {"path": "/b"}, ["s"], "s")
    assert [i.intent_id for i in log.pending()] == [
        first.intent_id,
        second.intent_id,
    ]
    log.retire(first)
    third = log.begin("remove", {"path": "/c"}, ["s"], "s")
    assert third.intent_id > second.intent_id


def test_empty_commit_step_always_rolls_forward():
    log = IntentLog(Database())
    intent = log.begin("refill", {"path": "/f", "server": 1}, ["copy"], "")
    assert intent.committed  # forward even with no steps done


def test_bad_commit_step_rejected():
    log = IntentLog(Database())
    with pytest.raises(IntentError):
        log.begin("remove", {"path": "/f"}, ["a"], "nonexistent-step")


def test_mark_unknown_step_rejected():
    log = IntentLog(Database())
    intent = log.begin("remove", {"path": "/f"}, ["a"], "a")
    with pytest.raises(IntentError):
        log.mark(intent, "b")


def test_journal_survives_reopen(tmp_path):
    meta = tmp_path / "meta.db"
    log = IntentLog(Database(meta))
    log.begin("remove", {"path": "/f"}, ["a"], "a")
    log.db.close()
    reopened = IntentLog(Database(meta))
    (got,) = reopened.pending()
    assert got.op == "remove" and got.path == "/f"


# ---------------------------------------------------------------------------
# recovery engine plumbing
# ---------------------------------------------------------------------------

def test_unknown_intent_op_reported_stuck_not_raised():
    fs = DPFS.memory(n_servers=2)
    fs.intents.begin("frobnicate", {"path": "/x"}, ["s"], "")
    report = fs.recover()
    assert not report.clean
    (action,) = report.stuck
    assert "unknown intent op" in action.detail
    # the intent is kept for a smarter future sweep
    assert len(fs.intents.pending()) == 1


def test_recovery_failure_keeps_intent_and_continues_sweep():
    backend = FaultyBackend(MemoryBackend(2))
    fs = DPFS(backend, io_workers=1)
    fs.write_file("/keep", b"k" * 64)
    # two pending intents: the first will fail (delete fault), the
    # second succeeds — the sweep must process both
    fs.intents.begin("remove", {"path": "/gone-a"}, ["remove-metadata"], "")
    fs.intents.begin(
        "create",
        {"path": "/gone-b"},
        ["create-subfiles", "write-metadata"],
        "write-metadata",  # not reached -> rolls back
    )
    backend.fail_next("delete", times=1, server=0)
    report = fs.recover()
    assert len(report.actions) == 2
    assert len(report.stuck) == 1
    assert len(report.recovered) == 1
    assert len(fs.intents.pending()) == 1
    backend.heal()
    assert fs.recover().clean
    assert fs.intents.pending() == []


def test_mount_time_recovery_runs_by_default():
    db = Database()
    backend = MemoryBackend(2)
    fs = DPFS(backend, db, auto_recover=False)
    fs.intents.begin("remove", {"path": "/ghost"}, ["remove-metadata"], "")
    # age the intent past any grace period: its client is long dead
    db.execute("UPDATE dpfs_intent SET created_at = 0.0")
    fs2 = DPFS(backend, db)
    assert fs2.last_recovery is not None
    assert len(fs2.last_recovery.actions) == 1
    assert fs2.intents.pending() == []


def test_mount_time_recovery_spares_fresh_intents():
    """A second mount over a shared metadata database must not roll
    back an intent a *live* client journalled moments ago — mount-time
    recovery only touches intents older than the recovery grace
    period.  An explicit recover() still sweeps everything."""
    db = Database()
    backend = MemoryBackend(2)
    fs = DPFS(backend, db, auto_recover=False)
    fs.intents.begin("remove", {"path": "/live"}, ["remove-metadata"], "")
    fs2 = DPFS(backend, db)  # default grace period
    assert fs2.last_recovery is not None
    assert fs2.last_recovery.actions == []
    assert len(fs2.intents.pending()) == 1
    # the operator-invoked sweep (dpfs recover) ignores the grace period
    assert fs2.recover().clean
    assert fs2.intents.pending() == []


def test_journal_without_timestamps_migrates_as_abandoned(tmp_path):
    """Rows from a pre-``created_at`` journal come back infinitely old,
    so any grace period still lets recovery claim them."""
    meta = tmp_path / "meta.db"
    db = Database(meta)
    db.execute(
        "CREATE TABLE dpfs_intent ("
        " intent_id TEXT PRIMARY KEY,"
        " op TEXT NOT NULL,"
        " args JSON NOT NULL,"
        " steps JSON NOT NULL,"
        " done JSON NOT NULL,"
        " commit_step TEXT NOT NULL)"
    )
    db.execute(
        "INSERT INTO dpfs_intent VALUES (?, ?, ?, ?, ?, ?)",
        ["i00000001", "remove", {"path": "/old"}, ["remove-metadata"], [], ""],
    )
    log = IntentLog(db)
    (got,) = log.pending(min_age_s=3600.0)
    assert got.intent_id == "i00000001"
    assert got.created_at == 0.0


# ---------------------------------------------------------------------------
# satellite: all-servers fan-out with aggregate errors
# ---------------------------------------------------------------------------

def test_remove_applies_to_all_servers_despite_failure():
    """One failing server no longer aborts the fan-out mid-loop: every
    other server's subfile is deleted and the failures come back as one
    aggregate MultiServerError."""
    backend = FaultyBackend(MemoryBackend(4))
    fs = DPFS(backend, io_workers=1)
    fs.write_file("/f", bytes(4 * BRICK), lhint(4 * BRICK))
    assert all(backend.subfile_exists(s, "/f") for s in range(4))
    backend.fail_on("delete", server=2)
    with pytest.raises(MultiServerError) as excinfo:
        fs.remove("/f")
    assert [s for s, _ in excinfo.value.errors] == [2]
    assert isinstance(excinfo.value.errors[0][1], InjectedFault)
    # servers 0, 1 and 3 were still cleaned up; metadata is gone
    for server in (0, 1, 3):
        assert not backend.subfile_exists(server, "/f")
    assert backend.subfile_exists(2, "/f")
    assert not fs.exists("/f")
    # the intent stayed journalled; once the server heals, recovery
    # finishes the job without manual intervention
    assert len(fs.intents.pending()) == 1
    backend.heal()
    assert fs.recover().clean
    assert not backend.subfile_exists(2, "/f")
    assert fsck(fs).clean


def test_rename_applies_to_all_servers_despite_failure():
    backend = FaultyBackend(MemoryBackend(4))
    fs = DPFS(backend, io_workers=1)
    data = bytes(range(256)) * 16
    fs.write_file("/old", data, lhint(len(data)))
    backend.fail_on("rename", server=1)
    with pytest.raises(MultiServerError) as excinfo:
        fs.rename("/old", "/new")
    assert [s for s, _ in excinfo.value.errors] == [1]
    # metadata committed: the file lives at /new
    assert fs.exists("/new") and not fs.exists("/old")
    backend.heal()
    assert fs.recover().clean
    assert fsck(fs).clean
    assert fs.read_file("/new") == data


def test_create_loser_keeps_winners_subfiles():
    """Two clients race to create the same path; the loser's rollback
    must not delete the subfiles the winner's committed metadata now
    references."""
    db = Database()
    backend = MemoryBackend(2)
    fs = DPFS(backend, db, io_workers=1, auto_recover=False)
    winner = DPFS(backend, db, io_workers=1, auto_recover=False)
    fs.makedirs("/d")
    payload = b"w" * BRICK

    # interleave: right after the loser creates its subfiles (and
    # before its metadata commit), the winner commits the same path
    real_mark = fs.intents.mark

    def mark_then_lose_race(intent, step):
        real_mark(intent, step)
        if step == "create-subfiles":
            winner.write_file("/d/f", payload, lhint(BRICK))

    fs.intents.mark = mark_then_lose_race
    with pytest.raises(FileExists):
        fs.write_file("/d/f", b"l" * BRICK, lhint(BRICK))
    fs.intents.mark = real_mark

    # the winner's file survives, subfiles intact, no intent debris
    assert fs.read_file("/d/f") == payload
    assert fs.intents.pending() == []
    assert fsck(fs).clean


def test_recovery_rollback_spares_subfiles_of_existing_file():
    """Rolling back an uncommitted create intent whose path *does*
    exist in metadata (a concurrent winner committed it) must leave the
    winner's subfiles alone."""
    fs = DPFS.memory(n_servers=2, auto_recover=False)
    payload = b"d" * BRICK
    fs.write_file("/f", payload, lhint(BRICK))
    # a crashed loser's intent for the same path, never committed
    fs.intents.begin(
        "create",
        {"path": "/f"},
        ["create-subfiles", "write-metadata"],
        "write-metadata",
    )
    assert fs.recover().clean
    assert fs.intents.pending() == []
    assert fs.read_file("/f") == payload
    assert fsck(fs).clean


def test_remove_missing_file_still_raises_file_not_found():
    fs = DPFS.memory(n_servers=2)
    with pytest.raises(FileNotFound):
        fs.remove("/nope")
    assert fs.intents.pending() == []


def test_rename_tolerates_missing_replica_subfiles():
    """A non-replicated file has no replica subfiles; the idempotent
    per-server rename must not error on their absence."""
    fs = DPFS.memory(n_servers=4)
    data = b"payload" * 100
    fs.write_file("/plain", data, lhint(len(data)))
    fs.rename("/plain", "/moved")
    assert fs.read_file("/moved") == data
    assert fs.intents.pending() == []
    assert fsck(fs).clean


# ---------------------------------------------------------------------------
# satellite: per-path CRC lock map eviction
# ---------------------------------------------------------------------------

def test_crc_lock_map_does_not_retain_deleted_paths():
    fs = DPFS.memory(n_servers=4)
    for i in range(8):
        path = f"/f{i}"
        fs.write_file(path, bytes(BRICK), lhint(BRICK))
        assert path in fs._crc_locks
        fs.remove(path)
        assert path not in fs._crc_locks
    assert fs._crc_locks == {}


def test_crc_lock_map_is_bounded_for_live_paths():
    """Even without removes, the lock map cannot grow without bound: an
    LRU cap evicts idle entries of live paths."""
    fs = DPFS.memory(n_servers=2)
    fs._crc_lock_cap = 4
    for i in range(12):
        fs.write_file(f"/f{i}", bytes(BRICK), lhint(BRICK))
    assert len(fs._crc_locks) <= 4
    assert "/f11" in fs._crc_locks  # most recent stays


def test_crc_lock_map_rekeys_on_rename():
    fs = DPFS.memory(n_servers=4)
    fs.write_file("/a", bytes(BRICK), lhint(BRICK))
    assert "/a" in fs._crc_locks
    fs.rename("/a", "/b")
    assert "/a" not in fs._crc_locks
    # the new name gets a fresh lock on its next write
    with fs.open("/b", "r+") as h:
        h.write(0, b"x" * 16)
    assert "/b" in fs._crc_locks
