"""Striping behaviour on the paper's own worked examples (§3, Figs. 4-7).

These tests pin the analytic claims of the paper:

- Fig. 5: an 8×8 array, brick = 4 elements, 4 devices.  Under
  (BLOCK, \\*) each processor reads 4 bricks wholly; under (\\*, BLOCK)
  it needs 8 bricks and uses only half of each.
- Fig. 6: the same array under 2×2 multidimensional bricks — the first
  two columns touch only bricks 0, 4, 8, 12 and "no extra data is
  accessed".
- §3.2's 64K×64K example: one column of data touches all 65536 linear
  row-bricks but only 256 multidimensional 256×256 bricks.
"""

from repro.core import LinearStriping, MultidimStriping
from repro.hpf import Region, decompose


def _linear_region_slices(lin, region, cols, elem=1):
    extents = []
    for start_cell, run in region.rows():
        extents.append(((start_cell[0] * cols + start_cell[1]) * elem, run * elem))
    return lin.slices_for_extents(extents)


def test_fig5_block_star_reads_whole_bricks():
    """(BLOCK, *): each processor reads two rows = 4 full bricks."""
    lin = LinearStriping(brick_size=4, file_size=64)
    regions = decompose((8, 8), "(BLOCK, *)", 4)
    for region in regions:
        slices = _linear_region_slices(lin, region, cols=8)
        bricks = {s.brick_id for s in slices}
        assert len(bricks) == 4
        # everything read is useful: slice bytes = region volume
        assert sum(s.length for s in slices) == region.volume
        # and each brick is read in full
        per_brick = {}
        for s in slices:
            per_brick[s.brick_id] = per_brick.get(s.brick_id, 0) + s.length
        assert all(v == 4 for v in per_brick.values())


def test_fig5_star_block_wastes_half_of_each_brick():
    """(*, BLOCK): processor 0 reads the first two columns — bricks
    0, 2, 4, 6, 8, 10, 12, 14, two useful elements per brick."""
    lin = LinearStriping(brick_size=4, file_size=64)
    region = decompose((8, 8), "(*, BLOCK)", 4)[0]
    assert region == Region.of((0, 8), (0, 2))
    slices = _linear_region_slices(lin, region, cols=8)
    bricks = sorted({s.brick_id for s in slices})
    assert bricks == [0, 2, 4, 6, 8, 10, 12, 14]
    # only 2 of every 4 elements per brick are useful
    assert sum(s.length for s in slices) == 16
    for s in slices:
        assert s.length == 2


def test_fig6_multidim_first_two_columns():
    """2×2 multidimensional bricks: processor 0's two columns touch
    exactly bricks 0, 4, 8 and 12, with no extra data."""
    md = MultidimStriping((8, 8), 1, (2, 2))
    region = Region.of((0, 8), (0, 2))
    slices = md.slices_for_region(region)
    bricks = sorted({s.brick_id for s in slices})
    assert bricks == [0, 4, 8, 12]
    # whole bricks are useful: 4 bricks x 4 elements = 16 = region volume
    assert sum(s.length for s in slices) == region.volume == 16


def test_64k_example_brick_counts():
    """§3.2: one column of a 64K×64K array — 65536 linear row-bricks
    versus 256 multidimensional 256×256 bricks."""
    n = 65536
    lin = LinearStriping(brick_size=n, file_size=n * n)
    # one element per row: row r contributes byte offset r*n + c
    # → every one of the 65536 row-bricks is touched.
    # (Check analytically on a sample; enumerating all rows is slow.)
    sample_rows = [0, 1, 12345, 65535]
    for r in sample_rows:
        s = lin.slices_for_extents([(r * n + 7, 1)])
        assert len(s) == 1 and s[0].brick_id == r
    assert lin.brick_count == n

    md = MultidimStriping((n, n), 1, (256, 256))
    slices = md.slices_for_region(Region.of((0, n), (7, 8)))
    bricks = {s.brick_id for s in slices}
    assert len(bricks) == 256


def test_fig7_array_level_chunks_match_hpf():
    """Fig. 7: (BLOCK, *), (*, BLOCK), (BLOCK, BLOCK) chunkings."""
    from repro.core import ArrayStriping

    for pattern, expected_shape in [
        ("(BLOCK, *)", (2, 8)),
        ("(*, BLOCK)", (8, 2)),
        ("(BLOCK, BLOCK)", (4, 4)),
    ]:
        ar = ArrayStriping((8, 8), 1, pattern, 4)
        assert ar.chunk_of(0).shape == expected_shape
        # chunks partition the array
        assert sum(c.volume for c in ar.chunks) == 64


def test_fig3_file_view_brick_numbering():
    """Fig. 3: a 32-brick DPFS file round-robined over 4 devices —
    device k's subfile holds bricks k, k+4, k+8, ..."""
    from repro.core import RoundRobin, build_brick_map

    bmap = build_brick_map(RoundRobin(4), [1] * 32)
    for server in range(4):
        assert bmap.bricklist(server) == list(range(server, 32, 4))
