"""Sequential-file transfer tests (§7): import/export/copy."""

import numpy as np
import pytest

from repro.core import Hint, copy_within, export_file, import_file
from repro.errors import FileSystemError


def test_import_export_linear_roundtrip(fs, tmp_path):
    src = tmp_path / "src.bin"
    payload = np.random.default_rng(0).bytes(100_000)
    src.write_bytes(payload)

    n = import_file(fs, src, "/data.bin")
    assert n == 100_000
    assert fs.stat("/data.bin")["filelevel"] == "linear"

    dst = tmp_path / "dst.bin"
    assert export_file(fs, "/data.bin", dst) == 100_000
    assert dst.read_bytes() == payload


def test_import_with_multidim_hint_retiles(fs, tmp_path):
    arr = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
    src = tmp_path / "array.bin"
    src.write_bytes(arr.tobytes())

    hint = Hint.multidim((64, 64), 8, (16, 16))
    import_file(fs, src, "/array", hint=hint)
    # region reads now work on the imported data
    with fs.open("/array", "r") as handle:
        got = handle.read_array((8, 8), (4, 4), np.float64)
    assert np.array_equal(got, arr[8:12, 8:12])


def test_import_size_mismatch_rejected(fs, tmp_path):
    src = tmp_path / "short.bin"
    src.write_bytes(b"x" * 10)
    hint = Hint.multidim((64, 64), 8, (16, 16))
    with pytest.raises(FileSystemError):
        import_file(fs, src, "/bad", hint=hint)


def test_export_multidim_is_row_major_flatten(fs, tmp_path):
    """§3.2: converting a multidim file to sequential performs the
    in-memory reorganisation — output equals the row-major array."""
    arr = np.random.default_rng(1).random((32, 48))
    hint = Hint.multidim((32, 48), 8, (8, 16))
    with fs.open("/f", "w", hint=hint) as handle:
        handle.write_array((0, 0), arr)
    out = tmp_path / "flat.bin"
    export_file(fs, "/f", out)
    assert out.read_bytes() == arr.tobytes()


def test_export_array_level_flatten(fs, tmp_path):
    arr = np.random.default_rng(2).random((16, 16))
    hint = Hint.array((16, 16), 8, "(BLOCK, BLOCK)", nprocs=4)
    fs.write_file("/ckpt", arr.tobytes(), hint=hint)
    out = tmp_path / "flat.bin"
    export_file(fs, "/ckpt", out)
    assert out.read_bytes() == arr.tobytes()


def test_copy_within_inherits_striping(fs):
    arr = np.arange(256, dtype=np.float64).reshape(16, 16)
    hint = Hint.multidim((16, 16), 8, (4, 4))
    with fs.open("/a", "w", hint=hint) as handle:
        handle.write_array((0, 0), arr)
    copy_within(fs, "/a", "/b")
    st = fs.stat("/b")
    assert st["filelevel"] == "multidim"
    assert st["geometry"]["brick_shape"] == [4, 4]
    assert fs.read_file("/b") == arr.tobytes()


def test_copy_within_restripes_with_hint(fs):
    payload = bytes(range(256))
    fs.write_file("/a", payload)
    hint = Hint.multidim((16, 16), 1, (4, 4))
    copy_within(fs, "/a", "/b", hint=hint)
    assert fs.stat("/b")["filelevel"] == "multidim"
    assert fs.read_file("/b") == payload
