"""Placement algorithm tests — including exact reproduction of the
paper's Figure 9 greedy example and the §8.2 3:1 allocation claim."""

import pytest

from repro.core import Greedy, RoundRobin, build_brick_map, make_policy
from repro.errors import PlacementError


def test_round_robin_cycle():
    rr = RoundRobin(4)
    assert rr.assign(10) == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]


def test_round_robin_start_offset():
    rr = RoundRobin(3, start=2)
    assert rr.assign(4) == [2, 0, 1, 2]


def test_figure3_round_robin_32_bricks():
    """Fig. 3: a 32-brick file over 4 devices by round-robin."""
    rr = RoundRobin(4)
    assign = rr.assign(32)
    lists = {
        s: [i for i, srv in enumerate(assign) if srv == s] for s in range(4)
    }
    assert lists[0] == [0, 4, 8, 12, 16, 20, 24, 28]
    assert lists[3] == [3, 7, 11, 15, 19, 23, 27, 31]


def test_figure9_greedy_exact_reproduction():
    """The paper's Fig. 9 worked example, brick for brick.

    Replaying the figure shows performance numbers P = [1, 2, 1, 2] with
    ties broken toward the fastest server, then lowest index (see
    DESIGN.md).
    """
    greedy = Greedy([1, 2, 1, 2])
    assign = greedy.assign(32)
    lists = {
        s: [i for i, srv in enumerate(assign) if srv == s] for s in range(4)
    }
    assert lists[0] == [0, 2, 6, 8, 12, 14, 18, 20, 24, 26, 30]
    assert lists[1] == [4, 10, 16, 22, 28]
    assert lists[2] == [1, 3, 7, 9, 13, 15, 19, 21, 25, 27, 31]
    assert lists[3] == [5, 11, 17, 23, 29]


def test_greedy_three_to_one_allocation():
    """§8.2: with class 1 three times faster (P = 1 vs 3), greedy assigns
    class 1 three times the bricks of class 3."""
    greedy = Greedy([1.0, 1.0, 3.0, 3.0])
    assign = greedy.assign(32)
    counts = [assign.count(s) for s in range(4)]
    assert counts == [12, 12, 4, 4]


def test_greedy_equal_performance_degenerates_to_round_robin():
    greedy = Greedy([1.0] * 4)
    rr = RoundRobin(4)
    assert greedy.assign(16) == rr.assign(16)


def test_greedy_minimizes_projected_maximum():
    """Invariant of the Fig. 8 rule: after each assignment the chosen
    server's new accumulated time never exceeds any alternative's
    projected time."""
    perf = [1.0, 2.0, 5.0]
    greedy = Greedy(perf)
    acc = [0.0, 0.0, 0.0]
    for _ in range(50):
        before = [acc[j] + perf[j] for j in range(3)]
        k = greedy.assign_next()
        acc[k] += perf[k]
        assert acc[k] == min(before)


def test_greedy_accumulated_time_balance():
    """Finish times stay within one brick-time of each other."""
    perf = [1.0, 2.0, 3.0, 7.0]
    greedy = Greedy(perf)
    greedy.assign(500)
    times = greedy.accumulated
    assert max(times) - min(times) <= max(perf)


def test_greedy_resume_matches_uninterrupted():
    perf = [1.0, 3.0]
    full = Greedy(perf).assign(20)
    first = Greedy(perf)
    head = first.assign(12)
    resumed = Greedy.resume(perf, [head.count(0), head.count(1)])
    tail = resumed.assign(8)
    assert head + tail == full


def test_greedy_rejects_bad_performance():
    with pytest.raises(PlacementError):
        Greedy([1.0, 0.0])
    with pytest.raises(PlacementError):
        Greedy([])


def test_resume_length_mismatch_rejected():
    with pytest.raises(PlacementError):
        Greedy.resume([1.0, 2.0], [3])


def test_make_policy():
    assert make_policy("round_robin", 4).name == "round_robin"
    assert make_policy("greedy", 2, [1, 2]).name == "greedy"
    with pytest.raises(PlacementError):
        make_policy("greedy", 2, None)
    with pytest.raises(PlacementError):
        make_policy("greedy", 2, [1.0])
    with pytest.raises(PlacementError):
        make_policy("nope", 2)


def test_build_brick_map():
    bmap = build_brick_map(RoundRobin(2), [10, 10, 10])
    assert bmap.bricklist(0) == [0, 2]
    assert bmap.bricklist(1) == [1]
    assert bmap.location(2).local_offset == 10
