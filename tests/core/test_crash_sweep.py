"""The systematic crash sweep: every registered crash point, in every
journalled multi-step operation, must be recoverable.

For each (operation, crash point) pair the test arms the point, runs
the operation until it "dies" (:class:`SimulatedCrash` is a
BaseException, so no library handler can absorb it), then remounts the
same backend + metadata database.  Mount-time recovery must leave:

- an empty intent journal,
- a clean ``fsck`` (no orphan subfiles, no dangling metadata),
- a clean ``scrub`` (no torn or diverged data),
- the file in exactly its old or its new state — never torn.

``io_workers=1`` forces inline sequential dispatch so "crash after the
first server's work" (the ``mid_*`` points) is deterministic.
"""

import pytest

from repro.backends.memory import MemoryBackend
from repro.core import DPFS, Hint, fsck, scrub
from repro.core.brick import replica_subfile
from repro.core.crashpoints import (
    SimulatedCrash,
    arm,
    armed,
    armed_name,
    crashpoint,
    disarm,
    registered,
)
from repro.metadb import Database

BRICK = 512
DATA = bytes(range(256)) * 8  # 4 bricks


def lhint(size, replicas=1):
    return Hint.linear(file_size=size, brick_size=BRICK, replicas=replicas)


def _mount(backend, db, *, auto_recover=True):
    # recover_grace_s=0: these tests remount immediately after a
    # simulated crash, standing in for an operator who *knows* the
    # previous client is dead (the default grace period exists to
    # protect live concurrent mounts, exercised in test_intent.py)
    return DPFS(
        backend, db, io_workers=1, auto_recover=auto_recover,
        recover_grace_s=0.0,
    )


# -- per-operation setup / crashing mutation / old-or-new check --------------

def _setup_create(fs):
    fs.makedirs("/d")
    return {}


def _crash_create(fs, ctx):
    fs.write_file("/d/f", DATA, lhint(len(DATA)))


def _check_create(fs, ctx):
    # old state: no file at all; new state: created (and never written,
    # since the crash predates the first write) — so it reads as zeros
    if fs.exists("/d/f"):
        assert fs.read_file("/d/f") == bytes(len(DATA))


def _setup_remove(fs):
    fs.makedirs("/d")
    fs.write_file("/d/f", DATA, lhint(len(DATA)))
    return {}


def _crash_remove(fs, ctx):
    fs.remove("/d/f")


def _check_remove(fs, ctx):
    if fs.exists("/d/f"):
        assert fs.read_file("/d/f") == DATA


def _setup_rename(fs):
    fs.makedirs("/d")
    fs.write_file("/d/f", DATA, lhint(len(DATA)))
    return {}


def _crash_rename(fs, ctx):
    fs.rename("/d/f", "/d/g")


def _check_rename(fs, ctx):
    old, new = fs.exists("/d/f"), fs.exists("/d/g")
    assert old != new, "rename left both (or neither) of old/new"
    assert fs.read_file("/d/f" if old else "/d/g") == DATA


def _setup_grow(fs):
    fs.makedirs("/d")
    fs.write_file("/d/f", DATA, lhint(len(DATA)))
    return {"new_size": len(DATA) + 4 * BRICK}


def _crash_grow(fs, ctx):
    # no `with`: a context manager would run close() on the way out,
    # which a genuinely dead client never does
    handle = fs.open("/d/f", "r+")
    handle.write(ctx["new_size"] - BRICK, b"Z" * BRICK)


def _check_grow(fs, ctx):
    record, _ = fs.meta.load_file("/d/f")
    assert record.size in (len(DATA), ctx["new_size"])
    assert fs.read_file("/d/f")[: len(DATA)] == DATA


def _setup_refill(fs):
    fs.makedirs("/d")
    fs.write_file("/d/f", DATA, lhint(len(DATA), replicas=2))
    record, _ = fs.meta.load_file("/d/f")
    rmap = fs.meta.load_replica_map("/d/f", record)
    server = next(
        s for s in range(fs.backend.n_servers) if rmap.bricklists[s]
    )
    fs.backend.delete_subfile(server, replica_subfile("/d/f"))
    return {"server": server}


def _crash_refill(fs, ctx):
    fs.refill_replica_subfile("/d/f", ctx["server"])


def _check_refill(fs, ctx):
    assert fs.backend.subfile_exists(
        ctx["server"], replica_subfile("/d/f")
    )
    assert fs.read_file("/d/f") == DATA


OPS = {
    "create": (_setup_create, _crash_create, _check_create),
    "remove": (_setup_remove, _crash_remove, _check_remove),
    "rename": (_setup_rename, _crash_rename, _check_rename),
    "grow": (_setup_grow, _crash_grow, _check_grow),
    "refill": (_setup_refill, _crash_refill, _check_refill),
}

SWEEP = [
    ("create", "filesystem.create.after_intent"),
    ("create", "filesystem.create.mid_subfiles"),
    ("create", "filesystem.create.after_subfiles"),
    ("create", "filesystem.create.in_commit"),
    ("create", "filesystem.create.after_metadata"),
    ("remove", "filesystem.remove.after_intent"),
    ("remove", "filesystem.remove.in_commit"),
    ("remove", "filesystem.remove.after_metadata"),
    ("remove", "filesystem.remove.mid_subfiles"),
    ("remove", "filesystem.remove.after_subfiles"),
    ("rename", "filesystem.rename.after_intent"),
    ("rename", "filesystem.rename.in_commit"),
    ("rename", "filesystem.rename.after_metadata"),
    ("rename", "filesystem.rename.mid_subfiles"),
    ("rename", "filesystem.rename.after_subfiles"),
    ("grow", "filesystem.grow.after_intent"),
    ("grow", "filesystem.grow.in_commit"),
    ("grow", "filesystem.grow.after_metadata"),
    ("refill", "filesystem.refill.after_intent"),
    ("refill", "filesystem.refill.mid_copy"),
    ("refill", "filesystem.refill.after_copy"),
]


def test_sweep_covers_every_registered_crash_point():
    """Adding a crash point without adding it to the sweep is an error."""
    assert sorted(p for _op, p in SWEEP) == registered("filesystem.")


@pytest.mark.parametrize("op,point", SWEEP, ids=[p for _op, p in SWEEP])
def test_crash_then_recover_leaves_consistent_state(op, point):
    setup, crash, check = OPS[op]
    db = Database()
    backend = MemoryBackend(4)
    fs = _mount(backend, db, auto_recover=False)
    ctx = setup(fs)
    arm(point)
    try:
        with pytest.raises(SimulatedCrash):
            crash(fs, ctx)
    finally:
        disarm()
    # the client is dead; a new mount over the same backend + metadata
    # must recover on its own
    fs2 = _mount(backend, db)
    assert fs2.last_recovery is not None
    assert fs2.last_recovery.clean, str(fs2.last_recovery)
    assert fs2.intents.pending() == []
    freport = fsck(fs2)
    assert freport.clean, str(freport)
    sreport = scrub(fs2)
    assert sreport.clean, str(sreport)
    check(fs2, ctx)


def test_commit_step_mark_is_atomic_with_the_commit():
    """The journal can never disagree with metadata about whether the
    commit point was reached: the metadata commit and the intent's
    commit-step mark share one transaction.  (Regression: a crash
    between a committed rename and a separate mark statement used to
    leave done=[] — recovery then 'rolled back' a committed rename and
    stranded the data under the old subfile names.)"""
    db = Database()
    backend = MemoryBackend(4)
    fs = _mount(backend, db, auto_recover=False)
    fs.makedirs("/d")
    fs.write_file("/d/f", DATA, lhint(len(DATA)))

    # crash inside the commit transaction: neither the re-key nor the
    # mark became durable
    arm("filesystem.rename.in_commit")
    try:
        with pytest.raises(SimulatedCrash):
            fs.rename("/d/f", "/d/g")
    finally:
        disarm()
    (intent,) = fs.intents.pending()
    assert intent.done == []
    assert fs.exists("/d/f") and not fs.exists("/d/g")
    fs.intents.retire(intent)

    # crash right after the commit transaction: the re-key and the mark
    # are both durable, so recovery must roll forward
    arm("filesystem.rename.after_metadata")
    try:
        with pytest.raises(SimulatedCrash):
            fs.rename("/d/f", "/d/g")
    finally:
        disarm()
    (intent,) = fs.intents.pending()
    assert "rekey-metadata" in intent.done
    assert fs.exists("/d/g") and not fs.exists("/d/f")
    assert fs.recover().clean
    assert fs.read_file("/d/g") == DATA
    assert fsck(fs).clean


def test_recovery_itself_is_crash_safe():
    """A crash *during* the recovery sweep's redo must still converge on
    the next mount — recovery replays the same idempotent steps."""
    db = Database()
    backend = MemoryBackend(4)
    fs = _mount(backend, db, auto_recover=False)
    fs.makedirs("/d")
    fs.write_file("/d/f", DATA, lhint(len(DATA)))
    arm("filesystem.remove.mid_subfiles")
    try:
        with pytest.raises(SimulatedCrash):
            fs.remove("/d/f")
        # second crash, now inside the mount-time recovery redo
        arm("filesystem.remove.mid_subfiles")
        with pytest.raises(SimulatedCrash):
            _mount(backend, db)
    finally:
        disarm()
    fs3 = _mount(backend, db)
    assert fs3.last_recovery is not None and fs3.last_recovery.clean
    assert not fs3.exists("/d/f")
    assert fsck(fs3).clean
    assert scrub(fs3).clean


def test_fsck_reports_and_repairs_pending_intents():
    db = Database()
    backend = MemoryBackend(4)
    fs = _mount(backend, db, auto_recover=False)
    fs.write_file("/f", DATA, lhint(len(DATA)))
    arm("filesystem.remove.after_metadata")
    try:
        with pytest.raises(SimulatedCrash):
            fs.remove("/f")
    finally:
        disarm()
    checker = _mount(backend, db, auto_recover=False)
    report = fsck(checker)
    found = report.by_kind("pending-intent")
    assert found and not found[0].repaired
    repaired = fsck(checker, repair=True)
    assert repaired.by_kind("pending-intent")[0].repaired
    assert fsck(checker).clean


def test_scrub_reports_pending_intents_report_only():
    db = Database()
    backend = MemoryBackend(4)
    fs = _mount(backend, db, auto_recover=False)
    fs.write_file("/f", DATA, lhint(len(DATA)))
    arm("filesystem.rename.after_metadata")
    try:
        with pytest.raises(SimulatedCrash):
            fs.rename("/f", "/g")
    finally:
        disarm()
    checker = _mount(backend, db, auto_recover=False)
    report = scrub(checker)
    assert report.by_kind("pending-intent")
    assert report.unrepaired  # scrub never repairs these itself
    checker.recover()
    assert scrub(checker).by_kind("pending-intent") == []


# -- crash point mechanics ---------------------------------------------------

def test_arming_unknown_point_rejected():
    with pytest.raises(KeyError):
        arm("no.such.point")


def test_crashpoint_fires_once_then_disarms():
    arm("filesystem.remove.after_intent")
    try:
        with pytest.raises(SimulatedCrash):
            crashpoint("filesystem.remove.after_intent")
        assert armed_name() is None
        crashpoint("filesystem.remove.after_intent")  # no-op now
    finally:
        disarm()


def test_armed_context_manager_disarms_on_exit():
    with armed("filesystem.remove.after_intent"):
        assert armed_name() == "filesystem.remove.after_intent"
    assert armed_name() is None


def test_unarmed_crashpoint_is_noop():
    assert armed_name() is None
    crashpoint("filesystem.remove.after_intent")


def test_simulated_crash_is_not_an_exception():
    """The whole design rests on except-Exception handlers *not* eating
    a simulated crash; pin that property."""
    assert issubclass(SimulatedCrash, BaseException)
    assert not issubclass(SimulatedCrash, Exception)
