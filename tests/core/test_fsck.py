"""fsck tests: detection and repair of every inconsistency class."""

import pytest

from repro.core import DPFS, Hint, fsck


@pytest.fixture
def populated(fs):
    fs.makedirs("/home/user")
    fs.write_file("/home/user/a", b"x" * 1000)
    fs.write_file("/b", b"y" * 500)
    return fs


def test_clean_filesystem(populated):
    report = fsck(populated)
    assert report.clean
    assert report.files_checked == 2
    assert report.directories_checked >= 3
    assert "0 finding(s)" in str(report)


def test_missing_subfile_detected_and_repaired(populated):
    fs = populated
    fs.backend.delete_subfile(0, "/b")
    report = fsck(fs)
    assert [f.kind for f in report.findings] == ["missing-subfile"]
    assert not report.findings[0].repaired

    repaired = fsck(fs, repair=True)
    assert repaired.by_kind("missing-subfile")[0].repaired
    assert fsck(fs).clean
    # file readable again (lost bricks read as zeros — sparse semantics)
    data = fs.read_file("/b")
    assert len(data) == 500


def test_orphan_subfile_detected_and_repaired(populated):
    fs = populated
    fs.backend.create_subfile(1, "/ghost")
    report = fsck(fs)
    orphans = report.by_kind("orphan-subfile")
    assert len(orphans) == 1
    assert orphans[0].path == "/ghost"

    fsck(fs, repair=True)
    assert not fs.backend.subfile_exists(1, "/ghost")
    assert fsck(fs).clean


def test_dangling_dir_entry_detected_and_repaired(populated):
    fs = populated
    # corrupt: directory row lists a file whose attr row is gone
    fs.db.execute("DELETE FROM dpfs_file_attr WHERE filename = '/b'")
    report = fsck(fs)
    kinds = {f.kind for f in report.findings}
    assert "dangling-dir-entry" in kinds
    # the now-unreferenced subfiles also show up as orphans
    assert "orphan-subfile" in kinds

    fsck(fs, repair=True)
    assert fsck(fs).clean
    assert fs.listdir("/")[1] == []  # /b unlinked


def test_dangling_subdir_detected_and_repaired(populated):
    fs = populated
    fs.db.execute("DELETE FROM dpfs_directory WHERE main_dir = '/home/user'")
    report = fsck(fs)
    assert report.by_kind("dangling-dir-entry")
    fsck(fs, repair=True)
    final = fsck(fs)
    assert final.clean


def test_unlinked_file_detected_and_relinked(populated):
    fs = populated
    # corrupt: remove /b from the root directory listing only
    _subs, files = fs.meta.listdir("/")
    fs.db.execute(
        "UPDATE dpfs_directory SET files = ? WHERE main_dir = '/'",
        [[f for f in files if f != "b"]],
    )
    report = fsck(fs)
    unlinked = report.by_kind("unlinked-file")
    assert [f.path for f in unlinked] == ["/b"]

    fsck(fs, repair=True)
    assert fsck(fs).clean
    assert "b" in fs.listdir("/")[1]
    assert fs.read_file("/b") == b"y" * 500


def test_bad_brick_map_reported(populated):
    fs = populated
    # corrupt one distribution row's bricklist (duplicate brick id)
    row = fs.db.execute(
        "SELECT dist_id, bricklist FROM dpfs_file_distribution "
        "WHERE filename = '/b' ORDER BY dist_id LIMIT 1"
    ).rows[0]
    bricklist = list(row["bricklist"]) or [0]
    bricklist.append(bricklist[0])
    fs.db.execute(
        "UPDATE dpfs_file_distribution SET bricklist = ? WHERE dist_id = ?",
        [bricklist, row["dist_id"]],
    )
    report = fsck(fs)
    assert report.by_kind("bad-brick-map")


def test_fsck_shell_command(populated):
    from repro.shell import Shell

    shell = Shell(populated)
    out = shell.run_line("fsck")
    assert "0 finding(s)" in out
    populated.backend.create_subfile(0, "/stray")
    out = shell.run_line("fsck --repair")
    assert "orphan-subfile" in out and "FIXED" in out


def test_fsck_on_local_backend(tmp_path):
    fs = DPFS.local(tmp_path / "d", n_servers=2)
    fs.write_file("/f", b"content" * 100)
    assert fsck(fs).clean
    # orphan on disk
    (tmp_path / "d" / "server_0" / "stray").write_bytes(b"junk")
    report = fsck(fs)
    assert report.by_kind("orphan-subfile")
    fsck(fs, repair=True)
    assert fsck(fs).clean
    fs.close()


def test_fsck_over_tcp(tmp_path):
    from repro.net import DPFSServer, RemoteBackend

    with DPFSServer(tmp_path / "s0") as s0, DPFSServer(tmp_path / "s1") as s1:
        fs = DPFS(RemoteBackend([s0.address, s1.address]))
        fs.write_file("/f", b"data" * 50)
        assert fsck(fs).clean
        fs.backend.create_subfile(0, "/orphan")
        report = fsck(fs, repair=True)
        assert report.by_kind("orphan-subfile")[0].repaired
        assert fsck(fs).clean
        fs.close()
