"""Unit tests for bricks and brick maps."""

import pytest

from repro.core import BrickMap, BrickSlice
from repro.errors import PlacementError


def test_brick_slice_validation():
    BrickSlice(0, 0, 1, 0)
    with pytest.raises(PlacementError):
        BrickSlice(-1, 0, 1, 0)
    with pytest.raises(PlacementError):
        BrickSlice(0, 0, 0, 0)  # zero length
    with pytest.raises(PlacementError):
        BrickSlice(0, -1, 1, 0)


def test_append_assigns_subfile_offsets():
    bmap = BrickMap(n_servers=2)
    a = bmap.append(0, 100)
    b = bmap.append(1, 100)
    c = bmap.append(0, 100)
    assert (a.local_offset, b.local_offset, c.local_offset) == (0, 0, 100)
    assert bmap.subfile_size(0) == 200
    assert bmap.subfile_size(1) == 100


def test_variable_brick_sizes():
    bmap = BrickMap(n_servers=1)
    bmap.append(0, 10)
    bmap.append(0, 30)
    bmap.append(0, 5)
    assert [loc.local_offset for loc in bmap.locations] == [0, 10, 40]
    assert bmap.subfile_size(0) == 45


def test_bricklist_in_subfile_order():
    bmap = BrickMap(n_servers=2)
    for i in range(6):
        bmap.append(i % 2, 10)
    assert bmap.bricklist(0) == [0, 2, 4]
    assert bmap.bricklist(1) == [1, 3, 5]


def test_bricks_per_server():
    bmap = BrickMap(n_servers=3)
    for server in [0, 0, 1, 2, 2, 2]:
        bmap.append(server, 1)
    assert bmap.bricks_per_server() == [2, 1, 3]


def test_location_out_of_range_rejected():
    bmap = BrickMap(n_servers=1)
    bmap.append(0, 1)
    with pytest.raises(PlacementError):
        bmap.location(1)


def test_append_bad_server_rejected():
    bmap = BrickMap(n_servers=2)
    with pytest.raises(PlacementError):
        bmap.append(2, 1)
    with pytest.raises(PlacementError):
        bmap.append(0, 0)


def test_roundtrip_through_lists():
    bmap = BrickMap(n_servers=3)
    sizes = [10, 20, 30, 40, 50]
    for i, size in enumerate(sizes):
        bmap.append(i % 3, size)
    rebuilt = BrickMap.from_lists(bmap.to_lists(), sizes)
    assert len(rebuilt) == len(bmap)
    for brick_id in range(len(sizes)):
        assert rebuilt.location(brick_id) == bmap.location(brick_id)


def test_from_lists_validates_permutation():
    with pytest.raises(PlacementError):
        BrickMap.from_lists([[0, 1], [1]], [10, 10, 10])  # brick 1 twice
    with pytest.raises(PlacementError):
        BrickMap.from_lists([[0], [2]], [10, 10, 10])  # brick 1 missing
    with pytest.raises(PlacementError):
        BrickMap.from_lists([[0]], [10, 10])  # size count mismatch
