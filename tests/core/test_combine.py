"""Request combination and scheduling tests (§4.2)."""

import pytest

from repro.core import (
    BrickSlice,
    LinearStriping,
    RoundRobin,
    build_brick_map,
    plan_requests,
)
from repro.errors import DPFSError


def _setup(n_bricks=32, n_servers=4, brick=10):
    striping = LinearStriping(brick, n_bricks * brick)
    bmap = build_brick_map(RoundRobin(n_servers), striping.brick_sizes())
    return striping, bmap


def test_uncombined_one_request_per_slice():
    striping, bmap = _setup()
    slices = striping.slices_for_extents([(0, 80)])  # bricks 0..7
    plan = plan_requests(slices, bmap, combine=False)
    assert len(plan) == 8
    assert [r.server for r in plan] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_combined_one_request_per_server():
    """The paper's example: processor 0 reads bricks 0-7 over 4 devices —
    combination folds 8 requests into 4 (bricks {0,4}, {1,5}, ...)."""
    striping, bmap = _setup()
    slices = striping.slices_for_extents([(0, 80)])
    plan = plan_requests(slices, bmap, combine=True, rank=0)
    assert len(plan) == 4
    by_server = {r.server: sorted(set(r.brick_ids)) for r in plan}
    assert by_server == {0: [0, 4], 1: [1, 5], 2: [2, 6], 3: [3, 7]}


def test_stagger_rotates_start_server():
    """Processor p starts from subfile (p mod S), as §4.2 schedules."""
    striping, bmap = _setup()
    slices = striping.slices_for_extents([(0, 320)])  # all bricks
    for rank in range(8):
        plan = plan_requests(slices, bmap, combine=True, rank=rank)
        assert plan[0].server == rank % 4
        assert [r.server for r in plan] == [
            (rank + i) % 4 for i in range(4)
        ]


def test_paper_stagger_example():
    """Fig. 3 file: proc 0 starts at subfile-0 (bricks 0,4), proc 1 at
    subfile-1 (bricks 9,13), proc 2 at subfile-2 (18,22), proc 3 at
    subfile-3 (27,31)."""
    striping, bmap = _setup()
    expectations = {
        0: (0, [0, 4]),
        1: (1, [9, 13]),
        2: (2, [18, 22]),
        3: (3, [27, 31]),
    }
    for rank, (server, bricks) in expectations.items():
        lo = rank * 80
        slices = striping.slices_for_extents([(lo, 80)])
        plan = plan_requests(slices, bmap, combine=True, rank=rank)
        assert plan[0].server == server
        assert sorted(set(plan[0].brick_ids)) == bricks


def test_no_stagger_keeps_server_order():
    striping, bmap = _setup()
    slices = striping.slices_for_extents([(0, 320)])
    plan = plan_requests(slices, bmap, combine=True, rank=2, stagger=False)
    assert [r.server for r in plan] == [0, 1, 2, 3]


def test_extents_are_physical_subfile_offsets():
    striping, bmap = _setup()
    slices = striping.slices_for_extents([(0, 80)])
    plan = plan_requests(slices, bmap, combine=True, rank=0)
    srv0 = plan[0]
    # bricks 0 and 4 sit at subfile offsets 0 and 10 on server 0
    assert srv0.extents == [(0, 10), (10, 10)]
    assert srv0.coalesced_extents == [(0, 20)]
    assert srv0.payload_bytes == 20


def test_payload_mapping_preserved():
    striping, bmap = _setup()
    slices = striping.slices_for_extents([(5, 20)])  # partial bricks 0..2
    plan = plan_requests(slices, bmap, combine=True, rank=0)
    total = sum(p.slice.length for r in plan for p in r.placements)
    assert total == 20
    buffer_offsets = sorted(
        p.slice.buffer_offset for r in plan for p in r.placements
    )
    assert buffer_offsets[0] == 0


def test_slice_exceeding_brick_rejected():
    _striping, bmap = _setup()
    bad = [BrickSlice(0, 5, 10, 0)]  # brick size is 10, 5+10 > 10
    with pytest.raises(DPFSError):
        plan_requests(bad, bmap, combine=True)


def test_empty_slices_empty_plan():
    _striping, bmap = _setup()
    assert plan_requests([], bmap, combine=True) == []
    assert plan_requests([], bmap, combine=False) == []


def test_combined_request_count_paper_claim():
    """§4.2: 'there are only 4 requests needed for each processor, much
    smaller than 8 requests of general approach'."""
    striping, bmap = _setup()
    for rank in range(4):
        lo = rank * 80
        slices = striping.slices_for_extents([(lo, 80)])
        assert len(plan_requests(slices, bmap, combine=False)) == 8
        assert len(plan_requests(slices, bmap, combine=True, rank=rank)) == 4
