"""Scrubber tests: every finding kind, repair semantics, fsck integration."""

import pytest

from repro.core import DPFS, Hint, fsck, scrub
from repro.core.brick import replica_subfile
from repro.core.scrub import verify_file_copies

BRICK = 4 * 1024


@pytest.fixture
def fs():
    return DPFS.memory(n_servers=3)


def rhint(size, replicas=2):
    return Hint.linear(file_size=size, brick_size=BRICK, replicas=replicas)


def payload(n):
    return bytes((11 * i + 3) % 256 for i in range(n))


def locate(fs, path, brick_id, copy):
    record, bmap = fs.meta.load_file(path)
    if copy == 0:
        return bmap.location(brick_id), path
    rmap = fs.meta.load_replica_map(path, record)
    return rmap.locations(brick_id)[copy - 1], replica_subfile(path)


def garble(fs, path, brick_id, copy, junk=b"\xbd"):
    loc, name = locate(fs, path, brick_id, copy)
    fs.backend.write_extents(
        loc.server, name, [(loc.local_offset, loc.size)], junk * loc.size
    )
    return loc.server


def test_clean_scrub(fs):
    data = payload(3 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    report = scrub(fs)
    assert report.clean
    assert report.files_checked == 1
    assert report.bricks_checked == 3
    assert report.copies_checked == 6
    assert fs.metrics.counter("dpfs_scrub_bricks_total").total() == 3


def test_checksum_mismatch_found_and_repaired(fs):
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    server = garble(fs, "/f", 1, copy=1)

    report = scrub(fs)
    findings = report.by_kind("checksum-mismatch")
    assert len(findings) == 1
    assert findings[0].brick_id == 1 and findings[0].server == server
    assert not findings[0].repaired
    assert ("/f", 1, server) in fs.quarantine  # bad copy fenced off

    repaired = scrub(fs, repair=True)
    assert repaired.by_kind("checksum-mismatch")[0].repaired
    assert ("/f", 1, server) not in fs.quarantine
    assert scrub(fs).clean
    assert fs.read_file("/f") == data


def test_stale_checksum_is_metadata_repair(fs):
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    fs.meta.update_brick_crcs("/f", {0: 1234567})  # metadata goes stale

    report = scrub(fs)
    findings = report.by_kind("stale-checksum")
    assert len(findings) == 1
    assert findings[0].server == -1  # both copies agree; data is fine

    scrub(fs, repair=True)
    assert scrub(fs).clean
    assert fs.read_file("/f") == data


def test_replica_divergence_majority_repair(fs):
    fs4 = DPFS.memory(n_servers=4)
    data = payload(BRICK)
    fs4.write_file("/f", data, rhint(len(data), replicas=3))
    # erase the arbiter, then garble one of the three copies
    fs4.meta.update_brick_crcs("/f", {0: 7})
    loser = garble(fs4, "/f", 0, copy=2)

    report = scrub(fs4)
    divergent = report.by_kind("replica-divergence")
    assert len(divergent) == 1 and divergent[0].server == loser

    repaired = scrub(fs4, repair=True)
    assert all(f.repaired for f in repaired.by_kind("replica-divergence"))
    assert scrub(fs4).clean
    assert fs4.read_file("/f") == data


def test_replica_divergence_no_majority_unrepairable(fs):
    data = payload(BRICK)
    fs.write_file("/f", data, rhint(len(data), replicas=2))
    fs.meta.update_brick_crcs("/f", {0: 7})  # arbiter gone
    garble(fs, "/f", 0, copy=1)

    report = scrub(fs, repair=True)
    divergent = report.by_kind("replica-divergence")
    assert len(divergent) == 1
    assert divergent[0].server == -1
    assert not divergent[0].repaired
    assert report.unrepaired


def test_unreadable_copy_recreated(fs):
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    rname = replica_subfile("/f")
    loc, _ = locate(fs, "/f", 0, copy=1)
    fs.backend.delete_subfile(loc.server, rname)

    report = scrub(fs)
    assert report.by_kind("unreadable-copy")

    scrub(fs, repair=True)
    assert fs.backend.subfile_exists(loc.server, rname)
    assert scrub(fs).clean


def test_none_checksum_backfilled_silently(fs):
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    fs.meta.update_brick_crcs("/f", {0: None, 1: None})  # legacy file

    report = scrub(fs)
    assert report.clean  # never-written/legacy bricks are not findings

    repaired = scrub(fs, repair=True)
    assert repaired.clean
    assert repaired.checksums_backfilled == 2
    record, _ = fs.meta.load_file("/f")
    assert all(crc is not None for crc in record.brick_crcs)


def test_unknown_checksum_algorithm_reported_not_failed(fs):
    import json

    data = payload(BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    row = fs.db.execute(
        "SELECT geometry FROM dpfs_file_attr WHERE filename = '/f'"
    ).scalar()
    geometry = row if isinstance(row, dict) else json.loads(row)
    geometry["crc_algo"] = "sha-unknown"
    fs.db.execute(
        "UPDATE dpfs_file_attr SET geometry = ? WHERE filename = '/f'",
        [geometry],
    )
    findings = verify_file_copies(fs, "/f")
    assert [f.kind for f in findings] == ["unknown-checksum-algorithm"]
    # the file stays readable — unknown algorithms skip verification
    assert fs.read_file("/f") == data


def test_scrub_repairs_lift_quarantine_and_invalidate_cache():
    fs = DPFS.memory(n_servers=3, cache_bytes=1 << 20)
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    assert fs.read_file("/f") == data  # warm the cache
    server = garble(fs, "/f", 0, copy=0)
    scrub(fs, repair=True)
    assert ("/f", 0, server) not in fs.quarantine
    assert fs.read_file("/f") == data


def test_fsck_deep_pass_shares_scrub_findings(fs):
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    garble(fs, "/f", 1, copy=0)
    report = fsck(fs)
    assert report.by_kind("checksum-mismatch")
    assert fsck(fs, repair=True).by_kind("checksum-mismatch")[0].repaired
    assert fsck(fs).clean


def test_fsck_shallow_pass_skips_data_reads(fs):
    data = payload(2 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    garble(fs, "/f", 1, copy=0)
    assert fsck(fs, deep=False).clean  # metadata alone looks consistent


def test_fsck_missing_replica_refilled(fs):
    data = payload(3 * BRICK)
    fs.write_file("/f", data, rhint(len(data)))
    rname = replica_subfile("/f")
    victims = [
        s for s in range(3) if fs.backend.subfile_exists(s, rname)
    ]
    fs.backend.delete_subfile(victims[0], rname)

    report = fsck(fs, deep=False)
    assert report.by_kind("missing-replica")

    repaired = fsck(fs, repair=True)
    assert all(f.repaired for f in repaired.findings)
    assert fsck(fs).clean
    assert fs.read_file("/f") == data


def test_scrub_multiple_files(fs):
    for i in range(3):
        data = payload((i + 1) * BRICK)
        fs.write_file(f"/f{i}", data, rhint(len(data)))
    garble(fs, "/f2", 0, copy=0)
    report = scrub(fs)
    assert report.files_checked == 3
    assert len(report.findings) == 1
    assert report.findings[0].path == "/f2"
    assert "checksum-mismatch" in str(report)
