"""Unit tests for the three striping methods."""

import pytest

from repro.core import ArrayStriping, FileLevel, LinearStriping, MultidimStriping
from repro.errors import StripingError
from repro.hpf import Region


# ---------------------------------------------------------------------------
# linear
# ---------------------------------------------------------------------------

def test_linear_brick_count_and_sizes():
    lin = LinearStriping(brick_size=100, file_size=250)
    assert lin.brick_count == 3
    assert lin.brick_sizes() == [100, 100, 100]
    assert lin.total_bytes() == 250
    assert lin.level is FileLevel.LINEAR


def test_linear_empty_file():
    lin = LinearStriping(100, 0)
    assert lin.brick_count == 0
    assert lin.slices_for_extents([]) == []


def test_linear_single_brick_slice():
    lin = LinearStriping(100, 1000)
    slices = lin.slices_for_extents([(150, 30)])
    assert len(slices) == 1
    s = slices[0]
    assert (s.brick_id, s.offset, s.length, s.buffer_offset) == (1, 50, 30, 0)


def test_linear_extent_spanning_bricks():
    lin = LinearStriping(100, 1000)
    slices = lin.slices_for_extents([(80, 150)])
    assert [(s.brick_id, s.offset, s.length) for s in slices] == [
        (0, 80, 20),
        (1, 0, 100),
        (2, 0, 30),
    ]
    assert [s.buffer_offset for s in slices] == [0, 20, 120]


def test_linear_multiple_extents_payload_order():
    lin = LinearStriping(10, 100)
    slices = lin.slices_for_extents([(95, 5), (0, 5)])
    assert [(s.brick_id, s.buffer_offset) for s in slices] == [(9, 0), (0, 5)]


def test_linear_adjacent_slices_merged():
    lin = LinearStriping(10, 100)
    # two abutting extents in one brick collapse to one slice
    slices = lin.slices_for_extents([(0, 4), (4, 4)])
    assert len(slices) == 1 and slices[0].length == 8


def test_linear_beyond_eof_rejected():
    lin = LinearStriping(10, 100)
    with pytest.raises(StripingError):
        lin.slices_for_extents([(95, 10)])


def test_linear_grow():
    lin = LinearStriping(10, 25)
    assert lin.grow_to(25) == 0
    assert lin.grow_to(31) == 1
    assert lin.brick_count == 4
    with pytest.raises(StripingError):
        lin.grow_to(10)


def test_linear_validation():
    with pytest.raises(StripingError):
        LinearStriping(0, 10)
    with pytest.raises(StripingError):
        LinearStriping(10, -1)


# ---------------------------------------------------------------------------
# multidimensional
# ---------------------------------------------------------------------------

def test_multidim_grid_and_sizes():
    md = MultidimStriping((8, 8), 2, (2, 2))
    assert md.grid == (4, 4)
    assert md.brick_count == 16
    assert md.brick_sizes() == [8] * 16
    assert md.total_bytes() == 128


def test_multidim_uneven_grid_padded():
    md = MultidimStriping((5, 7), 1, (2, 3))
    assert md.grid == (3, 3)
    # all bricks occupy the full tile volume on storage (padding)
    assert md.brick_sizes() == [6] * 9
    # but the edge brick's region is clipped
    assert md.brick_region(8) == Region.of((4, 5), (6, 7))


def test_multidim_brick_region_row_major():
    md = MultidimStriping((8, 8), 1, (2, 2))
    assert md.brick_region(0) == Region.of((0, 2), (0, 2))
    assert md.brick_region(1) == Region.of((0, 2), (2, 4))
    assert md.brick_region(4) == Region.of((2, 4), (0, 2))


def test_multidim_full_brick_region_single_slice():
    md = MultidimStriping((8, 8), 1, (2, 2))
    slices = md.slices_for_region(md.brick_region(5))
    assert len(slices) == 1
    assert slices[0].brick_id == 5
    assert slices[0].offset == 0 and slices[0].length == 4


def test_multidim_column_region_touches_one_brick_per_tile_row():
    md = MultidimStriping((8, 8), 1, (2, 2))
    slices = md.slices_for_region(Region.of((0, 8), (0, 1)))
    bricks = sorted({s.brick_id for s in slices})
    assert bricks == [0, 4, 8, 12]
    # half of each touched brick is read (1 of 2 columns)
    assert sum(s.length for s in slices) == 8


def test_multidim_row_region_crosses_brick_columns():
    md = MultidimStriping((8, 8), 1, (2, 2))
    slices = md.slices_for_region(Region.of((3, 4), (0, 8)))
    bricks = sorted({s.brick_id for s in slices})
    assert bricks == [4, 5, 6, 7]


def test_multidim_payload_is_region_row_major():
    md = MultidimStriping((4, 4), 1, (2, 2))
    region = Region.of((1, 3), (1, 3))
    slices = md.slices_for_region(region)
    offsets = [s.buffer_offset for s in slices]
    assert offsets == sorted(offsets)
    assert sum(s.length for s in slices) == region.volume


def test_multidim_region_outside_rejected():
    md = MultidimStriping((4, 4), 1, (2, 2))
    with pytest.raises(StripingError):
        md.slices_for_region(Region.of((0, 5), (0, 1)))
    with pytest.raises(StripingError):
        md.slices_for_region(Region.of((0, 1)))  # rank mismatch


def test_multidim_flattened_extent_access():
    md = MultidimStriping((4, 4), 2, (2, 2))
    # whole file flattened covers every brick exactly once in volume
    slices = md.slices_for_extents([(0, 32)])
    assert sum(s.length for s in slices) == 32
    # element-misaligned access rejected
    with pytest.raises(StripingError):
        md.slices_for_extents([(1, 2)])


def test_multidim_3d():
    md = MultidimStriping((4, 4, 4), 1, (2, 2, 2))
    assert md.grid == (2, 2, 2)
    slices = md.slices_for_region(Region((0, 0, 0), (4, 4, 1)))
    assert sorted({s.brick_id for s in slices}) == [0, 2, 4, 6]


def test_multidim_validation():
    with pytest.raises(StripingError):
        MultidimStriping((4,), 1, (5,))  # brick larger than array
    with pytest.raises(StripingError):
        MultidimStriping((4, 4), 0, (2, 2))
    with pytest.raises(StripingError):
        MultidimStriping((4, 4), 1, (2,))


# ---------------------------------------------------------------------------
# array level
# ---------------------------------------------------------------------------

def test_array_one_brick_per_processor():
    ar = ArrayStriping((8, 8), 1, "(BLOCK, BLOCK)", 4)
    assert ar.brick_count == 4
    assert ar.brick_sizes() == [16, 16, 16, 16]
    assert ar.level is FileLevel.ARRAY


def test_array_chunk_is_single_slice():
    ar = ArrayStriping((8, 8), 1, "(BLOCK, *)", 4)
    for rank in range(4):
        slices = ar.slices_for_region(ar.chunk_of(rank))
        assert len(slices) == 1
        assert slices[0].brick_id == rank
        assert slices[0].offset == 0
        assert slices[0].length == 16


def test_array_cross_chunk_region():
    ar = ArrayStriping((8, 8), 1, "(BLOCK, *)", 4)
    slices = ar.slices_for_region(Region.of((1, 3), (0, 8)))
    assert sorted({s.brick_id for s in slices}) == [0, 1]


def test_array_column_region_within_block_block():
    ar = ArrayStriping((8, 8), 1, "(BLOCK, BLOCK)", 4)
    slices = ar.slices_for_region(Region.of((0, 8), (3, 5)))
    # crosses the column boundary at 4: all four chunks touched
    assert sorted({s.brick_id for s in slices}) == [0, 1, 2, 3]


def test_array_uneven_chunks_sized_by_volume():
    ar = ArrayStriping((10, 4), 2, "(BLOCK, *)", 3)
    # HPF block rule: rows 4, 4, 2
    assert ar.brick_sizes() == [32, 32, 16]


def test_array_empty_chunk_gets_placeholder():
    ar = ArrayStriping((2, 4), 1, "(BLOCK, *)", 4)
    sizes = ar.brick_sizes()
    assert sizes[2] == 1 and sizes[3] == 1  # placeholders


def test_array_rejects_cyclic():
    with pytest.raises(StripingError):
        ArrayStriping((8, 8), 1, "(CYCLIC, *)", 4)


def test_array_flattened_extent_access():
    ar = ArrayStriping((4, 4), 1, "(BLOCK, BLOCK)", 4)
    slices = ar.slices_for_extents([(0, 16)])
    assert sum(s.length for s in slices) == 16
    # row 0 alternates between chunk 0 (cols 0-1) and chunk 1 (cols 2-3)
    first_two = slices[:2]
    assert [s.brick_id for s in first_two] == [0, 1]


def test_array_chunk_of_bad_rank():
    ar = ArrayStriping((4, 4), 1, "(BLOCK, *)", 2)
    with pytest.raises(StripingError):
        ar.chunk_of(2)
