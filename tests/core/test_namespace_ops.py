"""Rename, du and capacity-accounting tests."""

import numpy as np
import pytest

from repro.core import DPFS, Hint
from repro.errors import (
    FileExists,
    FileNotFound,
    FileSystemError,
    InvalidPath,
)


# ---------------------------------------------------------------------------
# rename
# ---------------------------------------------------------------------------

def test_rename_same_directory(fs):
    fs.write_file("/a", b"data")
    fs.rename("/a", "/b")
    assert not fs.exists("/a")
    assert fs.read_file("/b") == b"data"


def test_rename_across_directories(fs):
    fs.makedirs("/x")
    fs.makedirs("/y")
    fs.write_file("/x/f", b"payload")
    fs.rename("/x/f", "/y/g")
    assert fs.listdir("/x") == ([], [])
    assert fs.listdir("/y") == ([], ["g"])
    assert fs.read_file("/y/g") == b"payload"


def test_rename_moves_subfiles(fs):
    fs.write_file("/a", b"x" * 1000)
    fs.rename("/a", "/b")
    for server in range(fs.backend.n_servers):
        assert not fs.backend.subfile_exists(server, "/a")
    # brick map still resolves
    _record, bmap = fs.meta.load_file("/b")
    assert len(bmap) > 0


def test_rename_preserves_striping(fs):
    hint = Hint.multidim((16, 16), 8, (4, 4))
    data = np.arange(256, dtype=np.float64).reshape(16, 16)
    with fs.open("/a", "w", hint=hint) as handle:
        handle.write_array((0, 0), data)
    fs.rename("/a", "/b")
    with fs.open("/b", "r") as handle:
        got = handle.read_array((4, 4), (8, 8), np.float64)
    assert np.array_equal(got, data[4:12, 4:12])


def test_rename_missing_rejected(fs):
    with pytest.raises(FileNotFound):
        fs.rename("/ghost", "/b")


def test_rename_onto_existing_rejected(fs):
    fs.write_file("/a", b"1")
    fs.write_file("/b", b"2")
    with pytest.raises(FileExists):
        fs.rename("/a", "/b")
    assert fs.read_file("/b") == b"2"


def test_rename_directory_rejected(fs):
    fs.mkdir("/d")
    with pytest.raises(InvalidPath):
        fs.rename("/d", "/e")


def test_rename_into_missing_dir_rejected(fs):
    fs.write_file("/a", b"1")
    with pytest.raises(FileNotFound):
        fs.rename("/a", "/nodir/a")
    assert fs.exists("/a")  # transaction rolled back


def test_rename_noop_same_path(fs):
    fs.write_file("/a", b"1")
    fs.rename("/a", "/a")
    assert fs.read_file("/a") == b"1"


def test_rename_survives_reopen(tmp_path):
    fs = DPFS.local(tmp_path / "d", n_servers=2)
    fs.write_file("/old", b"kept")
    fs.rename("/old", "/new")
    fs.close()
    fs2 = DPFS.local(tmp_path / "d", n_servers=2)
    assert fs2.read_file("/new") == b"kept"
    assert not fs2.exists("/old")
    fs2.close()


# ---------------------------------------------------------------------------
# du
# ---------------------------------------------------------------------------

def test_du_counts_tree(fs):
    fs.makedirs("/a/b")
    fs.write_file("/a/f1", b"x" * 100)
    fs.write_file("/a/b/f2", b"x" * 50)
    fs.write_file("/other", b"x" * 7)
    assert fs.du("/a") == 150
    assert fs.du("/a/b") == 50
    assert fs.du("/") == 157
    assert fs.du("/a/f1") == 100  # file path works too


def test_du_empty_dir(fs):
    fs.mkdir("/empty")
    assert fs.du("/empty") == 0


def test_du_missing_rejected(fs):
    with pytest.raises(FileNotFound):
        fs.du("/ghost")


# ---------------------------------------------------------------------------
# capacity accounting
# ---------------------------------------------------------------------------

def test_df_reports_usage(fs):
    fs.write_file("/f", b"x" * 4000)
    report = fs.df()
    assert len(report) == 4
    total_used = sum(row["used"] for row in report)
    # physical usage >= logical size (padding of the last brick)
    assert total_used >= 4000
    for row in report:
        assert row["available"] == row["capacity"] - row["used"]


def test_capacity_enforced_on_create():
    fs = DPFS.memory(2, capacity=1024)
    with pytest.raises(FileSystemError, match="capacity"):
        fs.write_file("/big", b"x" * 10_000)
    # nothing half-created
    assert not fs.exists("/big")


def test_capacity_allows_fitting_file():
    fs = DPFS.memory(2, capacity=100_000)
    fs.write_file("/ok", b"x" * 10_000)
    assert fs.read_file("/ok") == b"x" * 10_000


def test_remove_releases_capacity():
    fs = DPFS.memory(2, capacity=200_000)
    fs.write_file("/a", b"x" * 100_000, hint=Hint.linear(file_size=100_000))
    used_before = sum(r["used"] for r in fs.df())
    fs.remove("/a")
    used_after = sum(r["used"] for r in fs.df())
    assert used_before > 0
    assert used_after == 0
