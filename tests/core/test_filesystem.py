"""File system facade tests: open modes, namespace ops, growth, io_nodes."""

import numpy as np
import pytest

from repro.core import DPFS, FileLevel, Hint
from repro.errors import (
    FileExists,
    FileNotFound,
    FileSystemError,
    InvalidHint,
    PermissionDenied,
    StripingError,
)


def test_open_write_creates_file(fs):
    with fs.open("/f", "w", hint=Hint.linear()) as handle:
        handle.write(0, b"hello")
    assert fs.isfile("/f")
    assert fs.read_file("/f") == b"hello"


def test_open_write_existing_rejected(fs):
    fs.write_file("/f", b"x")
    with pytest.raises(FileExists):
        fs.open("/f", "w", hint=Hint.linear())


def test_open_read_missing_rejected(fs):
    with pytest.raises(FileNotFound):
        fs.open("/ghost", "r")


def test_open_bad_mode_rejected(fs):
    with pytest.raises(FileSystemError):
        fs.open("/f", "a")


def test_read_only_handle_rejects_write(fs):
    fs.write_file("/f", b"abc")
    with fs.open("/f", "r") as handle:
        with pytest.raises(FileSystemError):
            handle.write(0, b"x")


def test_rplus_updates_in_place(fs):
    fs.write_file("/f", b"abcdef")
    with fs.open("/f", "r+") as handle:
        handle.write(2, b"XY")
    assert fs.read_file("/f") == b"abXYef"


def test_permission_enforced(fs):
    fs.write_file("/f", b"abc")
    fs.chmod("/f", 0o200)  # write-only
    with pytest.raises(PermissionDenied):
        fs.open("/f", "r")
    fs.chmod("/f", 0o400)  # read-only
    with pytest.raises(PermissionDenied):
        fs.open("/f", "r+")
    with fs.open("/f", "r"):
        pass


def test_linear_growth_updates_metadata(fs):
    with fs.open("/f", "w", hint=Hint.linear(brick_size=64)) as handle:
        handle.write(0, b"a" * 100)       # 2 bricks
        handle.write(100, b"b" * 200)     # grows to 5 bricks
    record, bmap = fs.meta.load_file("/f")
    assert record.size == 300
    assert len(bmap) == 5
    assert fs.read_file("/f") == b"a" * 100 + b"b" * 200


def test_sparse_write_reads_zeros(fs):
    with fs.open("/f", "w", hint=Hint.linear(brick_size=16)) as handle:
        handle.write(100, b"end")
    data = fs.read_file("/f")
    assert data[:100] == b"\x00" * 100
    assert data[100:] == b"end"


def test_multidim_fixed_size_rejects_growth(fs):
    hint = Hint.multidim((8, 8), 1, (4, 4))
    with fs.open("/f", "w", hint=hint) as handle:
        with pytest.raises(StripingError):
            handle.write(0, b"x" * 100)  # 100 > 64 → would grow


def test_remove_deletes_subfiles(fs):
    fs.write_file("/f", b"data")
    assert fs.backend.subfile_exists(0, "/f")
    fs.remove("/f")
    assert not fs.isfile("/f")
    assert not fs.backend.subfile_exists(0, "/f")
    with pytest.raises(FileNotFound):
        fs.remove("/f")


def test_namespace_operations(fs):
    fs.makedirs("/a/b")
    assert fs.isdir("/a/b")
    assert fs.exists("/a")
    assert not fs.exists("/zzz")
    fs.write_file("/a/b/f", b"x")
    assert fs.listdir("/a/b") == ([], ["f"])
    st = fs.stat("/a/b/f")
    assert st["size"] == 1 and st["filelevel"] == "linear"


def test_servers_table_reflects_backend(fs_hetero):
    rows = fs_hetero.servers()
    assert [r["performance"] for r in rows] == [1.0, 1.0, 3.0, 3.0]


def test_greedy_placement_via_hint(fs_hetero):
    hint = Hint.linear(file_size=32 * 64, brick_size=64, placement="greedy")
    with fs_hetero.open("/f", "w", hint=hint) as handle:
        counts = handle.brick_map.bricks_per_server()
    assert counts == [12, 12, 4, 4]  # 3:1 allocation, §8.2


def test_io_nodes_subset(fs):
    hint = Hint.linear(file_size=40 * 10, brick_size=10, io_nodes=2)
    with fs.open("/f", "w", hint=hint) as handle:
        counts = handle.brick_map.bricks_per_server()
    assert counts[2] == 0 and counts[3] == 0
    assert counts[0] == counts[1] == 20


def test_io_nodes_prefers_fastest(fs_hetero):
    hint = Hint.linear(file_size=100, brick_size=10, io_nodes=2)
    with fs_hetero.open("/f", "w", hint=hint) as handle:
        counts = handle.brick_map.bricks_per_server()
    # servers 0 and 1 have performance 1.0 (fastest)
    assert counts[2] == 0 and counts[3] == 0


def test_io_nodes_out_of_range_rejected(fs):
    with pytest.raises(InvalidHint):
        fs.open("/f", "w", hint=Hint.linear(io_nodes=9))


def test_write_file_array_level(fs):
    hint = Hint.array((8, 8), 8, "(BLOCK, *)", nprocs=4)
    data = np.arange(64, dtype=np.float64)
    fs.write_file("/ckpt", data.tobytes(), hint=hint)
    assert fs.read_file("/ckpt") == data.tobytes()
    st = fs.stat("/ckpt")
    assert st["filelevel"] == "array"
    assert st["geometry"]["pattern"] == "(BLOCK, *)"


def test_write_file_wrong_array_size_rejected(fs):
    hint = Hint.multidim((4, 4), 1, (2, 2))
    with pytest.raises(FileSystemError):
        fs.write_file("/f", b"too-short", hint=hint)


def test_reopen_preserves_striping(fs):
    hint = Hint.multidim((16, 16), 8, (4, 4))
    data = np.arange(256, dtype=np.float64).reshape(16, 16)
    with fs.open("/f", "w", hint=hint) as handle:
        handle.write_array((0, 0), data)
    with fs.open("/f", "r") as handle:
        assert handle.level is FileLevel.MULTIDIM
        got = handle.read_array((4, 4), (8, 8), np.float64)
    assert np.array_equal(got, data[4:12, 4:12])


def test_default_combine_flag(fs):
    fs.default_combine = False
    fs.write_file("/f", b"x" * 100)
    with fs.open("/f", "r") as handle:
        assert handle.combine is False
    with fs.open("/f", "r", combine=True) as handle:
        assert handle.combine is True
