"""Regression: dispatcher registry vs per-handle IOStats reconciliation.

Before the observability refactor the dispatcher kept an ad-hoc
per-server latency map while handles counted their own retries; the two
drifted apart because handle stats only see *successful* requests while
the dispatcher also retries requests that ultimately fail.  These tests
pin the reconciled semantics:

- per server, ``latency >= service + backoff`` (the remainder is time
  burnt in failed attempts);
- for an all-successful workload, registry retries == handle retries;
- a ``RetryExhausted`` request's re-attempts appear in the registry but
  never in any handle's stats — documented divergence, asserted here.
"""

import pytest

from repro.backends.faulty import FaultyBackend
from repro.backends.memory import MemoryBackend
from repro.core import DPFS, Hint
from repro.errors import RetryExhausted

SIZE = 64 * 1024
N_SERVERS = 4


def _fs(backend=None, **kwargs):
    backend = backend or FaultyBackend(MemoryBackend(N_SERVERS))
    return DPFS(backend, io_retries=3, **kwargs), backend


def _roundtrip(fs):
    """Write then read /f; return (write-handle stats, read-handle stats)."""
    hint = Hint(file_size=SIZE, brick_size=SIZE // (2 * N_SERVERS))
    data = bytes(range(256)) * (SIZE // 256)
    with fs.open("/f", "w", hint) as h:
        h.write(0, data)
        wstats = h.stats
    with fs.open("/f") as h:
        assert bytes(h.read(0, SIZE)) == data
        return wstats, h.stats


def _summed(dicts):
    out: dict[int, float] = {}
    for d in dicts:
        for k, v in d.items():
            out[k] = out.get(k, 0) + v
    return out


def test_latency_covers_service_plus_backoff_per_server():
    fs, backend = _fs()
    backend.fail_next("read", server=1, times=2, transient=True)
    _wstats, stats = _roundtrip(fs)
    for server, latency in stats.per_server_latency_s.items():
        service = stats.per_server_service_s.get(server, 0.0)
        backoff = stats.per_server_backoff_s.get(server, 0.0)
        assert latency >= service + backoff - 1e-9, (
            f"server {server}: latency {latency} < service {service} "
            f"+ backoff {backoff}"
        )
    # the faulted server actually has retries and backoff on record
    assert stats.per_server_retries.get(1, 0) == 2
    assert stats.per_server_backoff_s.get(1, 0.0) > 0.0
    fs.close()


def test_registry_retries_match_handle_retries_when_all_succeed():
    fs, backend = _fs()
    backend.fail_next("read", server=0, times=1, transient=True)
    backend.fail_next("write", server=2, times=2, transient=True)
    wstats, rstats = _roundtrip(fs)
    assert wstats.retries + rstats.retries == 3
    reg_retries = fs.dispatcher.stats.per_server_retries()
    assert sum(reg_retries.values()) == 3
    handle_retries = _summed(
        [wstats.per_server_retries, rstats.per_server_retries]
    )
    assert reg_retries == handle_retries
    fs.close()


def test_failed_request_retries_counted_in_registry_only():
    """The documented divergence: RetryExhausted re-attempts are
    registry-visible but invisible to every handle."""
    fs, backend = _fs()
    wstats, rstats = _roundtrip(fs)  # clean first pass
    assert wstats.retries == rstats.retries == 0

    backend.fail_on("read", server=3, transient=True)  # persistent fault
    with fs.open("/f") as h:
        with pytest.raises(RetryExhausted):
            h.read(0, SIZE)
        assert h.stats.retries == 0  # the handle saw no *successful* retry

    reg = fs.dispatcher.stats
    assert reg.per_server_retries().get(3, 0) == 3  # io_retries budget
    assert reg.failures >= 1
    fs.close()


def test_dispatch_requests_total_by_server_matches_handles():
    # namespace mutations (create/remove/rename subfile fan-out) go
    # through the dispatcher too, and handles never see those — so
    # reconcile the *data* path as a registry delta over a pre-created
    # file rather than as absolute totals.
    fs, _backend = _fs()
    hint = Hint(file_size=SIZE, brick_size=SIZE // (2 * N_SERVERS))
    with fs.open("/f", "w", hint):
        pass

    def reg_requests():
        return {
            int(k): int(v)
            for k, v in fs.dispatcher.stats._requests.by_label("server").items()
        }

    before = reg_requests()
    data = bytes(range(256)) * (SIZE // 256)
    with fs.open("/f", "r+") as h:
        h.write(0, data)
        wstats = h.stats
    with fs.open("/f") as h:
        assert bytes(h.read(0, SIZE)) == data
        rstats = h.stats
    delta = {
        s: v - before.get(s, 0)
        for s, v in reg_requests().items()
        if v - before.get(s, 0)
    }
    assert delta == _summed(
        [wstats.per_server_requests, rstats.per_server_requests]
    )
    fs.close()
