"""Brick cache tests: unit behaviour + integration with the file system."""

import numpy as np
import pytest

from repro.core import DPFS, Hint
from repro.core.cache import BrickCache
from repro.errors import ConfigError


# ---------------------------------------------------------------------------
# unit level
# ---------------------------------------------------------------------------

def test_capacity_validated():
    with pytest.raises(ConfigError):
        BrickCache(0)


def test_get_put_hit_miss():
    cache = BrickCache(1024)
    assert cache.get("/f", 0) is None
    cache.put("/f", 0, b"abcd")
    assert cache.get("/f", 0) == b"abcd"
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_lru_eviction_order():
    cache = BrickCache(100)
    for i in range(4):
        cache.put("/f", i, bytes(25))
    cache.get("/f", 0)               # promote brick 0
    cache.put("/f", 9, bytes(25))    # evicts brick 1 (least recent)
    assert cache.peek("/f", 0)
    assert not cache.peek("/f", 1)
    assert cache.used_bytes <= 100
    assert cache.stats.evictions == 1


def test_oversized_brick_never_cached():
    cache = BrickCache(100)
    cache.put("/f", 0, bytes(26))    # > capacity // 4
    assert not cache.peek("/f", 0)
    assert cache.cacheable(25)
    assert not cache.cacheable(26)


def test_patch_updates_in_place():
    cache = BrickCache(1024)
    cache.put("/f", 0, b"aaaaaaaa")
    cache.patch("/f", 0, 2, b"XY")
    assert cache.get("/f", 0) == b"aaXYaaaa"
    assert cache.stats.patched_writes == 1
    # patching an absent brick is a no-op
    cache.patch("/f", 5, 0, b"zz")


def test_patch_beyond_image_invalidates():
    cache = BrickCache(1024)
    cache.put("/f", 0, b"abcd")
    cache.patch("/f", 0, 3, b"long-overrun")
    assert not cache.peek("/f", 0)


def test_invalidate_file_scoped():
    cache = BrickCache(1024)
    cache.put("/a", 0, b"x" * 8)
    cache.put("/a", 1, b"x" * 8)
    cache.put("/b", 0, b"y" * 8)
    cache.invalidate_file("/a")
    assert not cache.peek("/a", 0)
    assert cache.peek("/b", 0)
    assert cache.used_bytes == 8


def test_clear():
    cache = BrickCache(1024)
    cache.put("/a", 0, b"12345678")
    cache.clear()
    assert len(cache) == 0
    assert cache.used_bytes == 0


def test_hit_rate():
    cache = BrickCache(1024)
    cache.put("/f", 0, b"data")
    cache.get("/f", 0)
    cache.get("/f", 1)
    assert cache.stats.hit_rate == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# integrated with DPFS
# ---------------------------------------------------------------------------

@pytest.fixture
def cached_fs():
    return DPFS.memory(4, cache_bytes=1 << 20)


def test_second_read_served_from_cache(cached_fs):
    fs = cached_fs
    hint = Hint.multidim((64, 64), 8, (16, 16))
    data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
    with fs.open("/f", "w", hint=hint) as handle:
        handle.write_array((0, 0), data)

    with fs.open("/f", "r") as handle:
        first = handle.read_array((0, 0), (64, 16), np.float64)
        cold_requests = handle.stats.requests
    with fs.open("/f", "r") as handle:
        second = handle.read_array((0, 0), (64, 16), np.float64)
        warm_requests = handle.stats.requests
    assert np.array_equal(first, second)
    assert cold_requests > 0
    assert warm_requests == 0          # fully cached
    assert fs.cache is not None and fs.cache.stats.hits > 0


def test_partial_hit_fetches_only_missing_bricks(cached_fs):
    fs = cached_fs
    hint = Hint.multidim((64, 64), 8, (16, 16))
    data = np.random.default_rng(0).random((64, 64))
    with fs.open("/f", "w", hint=hint) as handle:
        handle.write_array((0, 0), data)
    with fs.open("/f", "r") as handle:
        handle.read_array((0, 0), (16, 64), np.float64)   # caches row 0 bricks
    with fs.open("/f", "r") as handle:
        got = handle.read_array((0, 0), (32, 64), np.float64)
        # only the second brick-row needs fetching: 4 bricks
        assert handle.stats.bricks_touched == 4
    assert np.array_equal(got, data[:32])


def test_write_through_keeps_cache_coherent(cached_fs):
    fs = cached_fs
    hint = Hint.multidim((32, 32), 8, (8, 8))
    data = np.zeros((32, 32))
    with fs.open("/f", "w", hint=hint) as handle:
        handle.write_array((0, 0), data)
    with fs.open("/f", "r") as handle:
        handle.read_array((0, 0), (32, 32), np.float64)   # fill cache
    block = np.full((8, 8), 3.5)
    with fs.open("/f", "r+") as handle:
        handle.write_array((8, 8), block)
    with fs.open("/f", "r") as handle:
        got = handle.read_array((0, 0), (32, 32), np.float64)
        assert handle.stats.requests == 0    # all from (patched) cache
    assert np.array_equal(got[8:16, 8:16], block)
    assert got[0, 0] == 0


def test_remove_invalidates(cached_fs):
    fs = cached_fs
    fs.write_file("/f", b"x" * 1000)
    fs.read_file("/f")
    assert fs.cache is not None and len(fs.cache) > 0
    fs.remove("/f")
    assert all(key[0] != "/f" for key in fs.cache._entries)
    # recreate with different contents: no stale reads
    fs.write_file("/f", b"y" * 1000)
    assert fs.read_file("/f") == b"y" * 1000


def test_rename_invalidates(cached_fs):
    fs = cached_fs
    fs.write_file("/a", b"x" * 100)
    fs.read_file("/a")
    fs.rename("/a", "/b")
    assert fs.read_file("/b") == b"x" * 100


def test_huge_bricks_bypass_cache():
    fs = DPFS.memory(2, cache_bytes=1024)  # bricks > 256 B bypass
    hint = Hint.linear(file_size=4096, brick_size=1024)
    fs.write_file("/f", b"z" * 4096, hint=hint)
    with fs.open("/f", "r") as handle:
        handle.read(0, 4096)
        assert handle.stats.bytes_read == 4096  # exact, not whole-brick-inflated
    assert len(fs.cache) == 0


def test_cache_disabled_by_default(fs):
    assert fs.cache is None
    fs.write_file("/f", b"abc")
    assert fs.read_file("/f") == b"abc"


def test_readahead_prefetches_sequential_bricks():
    fs = DPFS.memory(4, cache_bytes=1 << 20, readahead_bricks=4)
    hint = Hint.linear(file_size=64 * 256, brick_size=256)
    payload = bytes(range(256)) * 64
    fs.write_file("/seq", payload, hint=hint)
    with fs.open("/seq", "r") as handle:
        # sequential walk: first read primes, later reads hit prefetched
        assert handle.read(0, 256) == payload[:256]
        assert handle.stats.prefetched_bricks == 4
        first_requests = handle.stats.requests
        got = handle.read(256, 1024)          # bricks 1-4: all prefetched
        assert got == payload[256:1280]
        assert handle.stats.requests == first_requests  # zero new fetches


def test_readahead_not_triggered_by_random_access():
    fs = DPFS.memory(4, cache_bytes=1 << 20, readahead_bricks=4)
    hint = Hint.linear(file_size=64 * 256, brick_size=256)
    fs.write_file("/rand", bytes(64 * 256), hint=hint)
    with fs.open("/rand", "r") as handle:
        handle.read(0, 100)                   # bricks [0] → prefetch 1-4
        prefetched_before = handle.stats.prefetched_bricks
        handle.read(32 * 256, 100)            # jump far ahead: not sequential
        assert handle.stats.prefetched_bricks == prefetched_before


def test_readahead_requires_cache():
    fs = DPFS.memory(2, readahead_bricks=8)   # no cache_bytes
    assert fs.readahead_bricks == 0
    fs.write_file("/f", b"abc")
    assert fs.read_file("/f") == b"abc"


def test_readahead_stops_at_file_end():
    fs = DPFS.memory(2, cache_bytes=1 << 20, readahead_bricks=16)
    hint = Hint.linear(file_size=3 * 128, brick_size=128)
    fs.write_file("/tiny", bytes(3 * 128), hint=hint)
    with fs.open("/tiny", "r") as handle:
        handle.read(0, 10)
        # only bricks 1 and 2 exist beyond the first
        assert handle.stats.prefetched_bricks == 2
