"""Unit tests for HPF distributions: pattern parsing, grids, decomposition."""

import pytest

from repro.errors import DistributionError
from repro.hpf import (
    Dist,
    Region,
    decompose,
    grid_shape,
    owned_regions,
    parse_pattern,
    pattern_str,
)


def test_parse_pattern_strings():
    assert parse_pattern("(BLOCK, *)") == (Dist.BLOCK, Dist.STAR)
    assert parse_pattern("(*, BLOCK)") == (Dist.STAR, Dist.BLOCK)
    assert parse_pattern("(BLOCK, BLOCK)") == (Dist.BLOCK, Dist.BLOCK)
    assert parse_pattern("block, cyclic") == (Dist.BLOCK, Dist.CYCLIC)
    assert parse_pattern(["BLOCK", "*"]) == (Dist.BLOCK, Dist.STAR)
    assert parse_pattern([Dist.STAR]) == (Dist.STAR,)


def test_parse_pattern_rejects_unknown():
    with pytest.raises(DistributionError):
        parse_pattern("(BLOCK, WAT)")
    with pytest.raises(DistributionError):
        parse_pattern("")


def test_pattern_str_roundtrip():
    assert pattern_str(parse_pattern("(BLOCK, *)")) == "(BLOCK, *)"
    assert pattern_str(parse_pattern("(*, BLOCK)")) == "(*, BLOCK)"


def test_grid_shape_single_distributed_dim():
    assert grid_shape(parse_pattern("(BLOCK, *)"), 8) == (8, 1)
    assert grid_shape(parse_pattern("(*, BLOCK)"), 8) == (1, 8)


def test_grid_shape_two_distributed_dims():
    assert grid_shape(parse_pattern("(BLOCK, BLOCK)"), 4) == (2, 2)
    assert grid_shape(parse_pattern("(BLOCK, BLOCK)"), 6) in ((2, 3), (3, 2))
    g = grid_shape(parse_pattern("(BLOCK, BLOCK)"), 16)
    assert g[0] * g[1] == 16


def test_grid_shape_star_only():
    assert grid_shape(parse_pattern("(*, *)"), 1) == (1, 1)
    with pytest.raises(DistributionError):
        grid_shape(parse_pattern("(*, *)"), 4)


def test_decompose_block_star():
    regions = decompose((8, 8), "(BLOCK, *)", 4)
    assert regions == [
        Region.of((0, 2), (0, 8)),
        Region.of((2, 4), (0, 8)),
        Region.of((4, 6), (0, 8)),
        Region.of((6, 8), (0, 8)),
    ]


def test_decompose_star_block():
    regions = decompose((8, 8), "(*, BLOCK)", 4)
    assert regions[0] == Region.of((0, 8), (0, 2))
    assert regions[3] == Region.of((0, 8), (6, 8))


def test_decompose_block_block():
    regions = decompose((8, 8), "(BLOCK, BLOCK)", 4)
    assert regions[0] == Region.of((0, 4), (0, 4))
    assert regions[1] == Region.of((0, 4), (4, 8))
    assert regions[2] == Region.of((4, 8), (0, 4))
    assert regions[3] == Region.of((4, 8), (4, 8))


def test_decompose_partitions_exactly():
    """Chunks tile the array: disjoint, total volume = array volume."""
    for pattern, nprocs in [("(BLOCK, *)", 3), ("(*, BLOCK)", 5), ("(BLOCK, BLOCK)", 6)]:
        shape = (12, 10)
        regions = decompose(shape, pattern, nprocs)
        total = sum(r.volume for r in regions)
        assert total == 120
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                if not a.empty and not b.empty:
                    assert a.intersect(b) is None


def test_decompose_uneven_block_rule():
    # HPF: block size ceil(10/4)=3 → blocks 3,3,3,1
    regions = decompose((10,), "(BLOCK)", 4)
    assert [r.shape[0] for r in regions] == [3, 3, 3, 1]


def test_decompose_more_procs_than_rows_gives_empty_chunks():
    regions = decompose((2,), "(BLOCK)", 4)
    assert [r.shape[0] for r in regions] == [1, 1, 0, 0]
    assert regions[2].empty


def test_decompose_rejects_cyclic():
    with pytest.raises(DistributionError):
        decompose((8,), "(CYCLIC)", 2)


def test_decompose_rank_mismatch_rejected():
    with pytest.raises(DistributionError):
        decompose((8, 8), "(BLOCK)", 2)


def test_decompose_explicit_pgrid():
    regions = decompose((8, 8), "(BLOCK, BLOCK)", 8, pgrid=(4, 2))
    assert regions[0] == Region.of((0, 2), (0, 4))
    with pytest.raises(DistributionError):
        decompose((8, 8), "(BLOCK, BLOCK)", 8, pgrid=(3, 2))


def test_decompose_star_dim_with_grid_extent_rejected():
    with pytest.raises(DistributionError):
        decompose((8, 8), "(BLOCK, *)", 4, pgrid=(2, 2))


def test_owned_regions_block_matches_decompose():
    shape = (8, 6)
    for rank in range(4):
        owned = owned_regions(shape, "(BLOCK, *)", 4, rank)
        assert owned == [decompose(shape, "(BLOCK, *)", 4)[rank]]


def test_owned_regions_cyclic():
    owned = owned_regions((8,), "(CYCLIC)", 3, 1)
    # rank 1 of 3 owns indices 1, 4, 7
    assert owned == [Region.of((1, 2)), Region.of((4, 5)), Region.of((7, 8))]


def test_owned_regions_cyclic_partition():
    shape = (7, 5)
    seen = set()
    for rank in range(3):
        for region in owned_regions(shape, "(CYCLIC, *)", 3, rank):
            for cell in region.cells():
                assert cell not in seen
                seen.add(cell)
    assert len(seen) == 35


def test_owned_regions_bad_rank_rejected():
    with pytest.raises(DistributionError):
        owned_regions((8,), "(BLOCK)", 4, 4)
