"""Unit tests for the N-d region algebra."""

import pytest

from repro.errors import DistributionError
from repro.hpf import Region


def test_construction_and_shape():
    r = Region.of((0, 4), (2, 6))
    assert r.rank == 2
    assert r.shape == (4, 4)
    assert r.volume == 16
    assert not r.empty


def test_full():
    r = Region.full((3, 5))
    assert r.starts == (0, 0) and r.stops == (3, 5)


def test_invalid_bounds_rejected():
    with pytest.raises(DistributionError):
        Region((0,), (0, 1))
    with pytest.raises(DistributionError):
        Region((2,), (1,))
    with pytest.raises(DistributionError):
        Region((-1,), (2,))
    with pytest.raises(DistributionError):
        Region((), ())


def test_empty_region():
    r = Region.of((2, 2), (0, 5))
    assert r.empty
    assert r.volume == 0
    assert list(r.cells()) == []


def test_intersect():
    a = Region.of((0, 4), (0, 4))
    b = Region.of((2, 6), (2, 6))
    i = a.intersect(b)
    assert i == Region.of((2, 4), (2, 4))


def test_intersect_disjoint_is_none():
    a = Region.of((0, 2), (0, 2))
    b = Region.of((2, 4), (0, 2))
    assert a.intersect(b) is None


def test_intersect_rank_mismatch_rejected():
    with pytest.raises(DistributionError):
        Region.of((0, 2)).intersect(Region.of((0, 2), (0, 2)))


def test_contains():
    r = Region.of((1, 3), (1, 3))
    assert r.contains((1, 1))
    assert r.contains((2, 2))
    assert not r.contains((3, 1))
    assert not r.contains((0, 1))


def test_covers():
    outer = Region.of((0, 10), (0, 10))
    inner = Region.of((2, 5), (3, 7))
    assert outer.covers(inner)
    assert not inner.covers(outer)
    assert outer.covers(Region.of((4, 4), (0, 10)))  # empty always covered


def test_translate_and_relative():
    r = Region.of((2, 4), (2, 4))
    moved = r.translate((10, 20))
    assert moved == Region.of((12, 14), (22, 24))
    assert moved.relative_to((10, 20)) == r


def test_cells_row_major():
    r = Region.of((0, 2), (0, 3))
    assert list(r.cells()) == [
        (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)
    ]


def test_rows_yields_contiguous_runs():
    r = Region.of((1, 3), (2, 5))
    rows = list(r.rows())
    assert rows == [((1, 2), 3), ((2, 2), 3)]


def test_rows_1d():
    r = Region.of((4, 9))
    assert list(r.rows()) == [((4,), 5)]


def test_rows_3d():
    r = Region((0, 0, 1), (2, 2, 3))
    rows = list(r.rows())
    assert len(rows) == 4
    assert rows[0] == ((0, 0, 1), 2)
    assert rows[-1] == ((1, 1, 1), 2)


def test_rows_volume_consistency():
    r = Region.of((3, 7), (1, 6), (0, 2))
    assert sum(run for _c, run in r.rows()) == r.volume
