"""Property-based tests for HPF decomposition invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpf import Region, decompose, owned_regions


@st.composite
def block_star_cases(draw):
    rank = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(1, 16)) for _ in range(rank))
    pattern = [draw(st.sampled_from(["BLOCK", "*"])) for _ in range(rank)]
    if all(p == "*" for p in pattern):
        nprocs = 1
    else:
        nprocs = draw(st.integers(1, 8))
        if pattern.count("BLOCK") > 1:
            # keep the grid factorable: give all procs to the first BLOCK dim
            pattern = [
                "BLOCK" if i == pattern.index("BLOCK") else "*"
                for i in range(rank)
            ]
    return shape, "(" + ", ".join(pattern) + ")", nprocs


@given(block_star_cases())
@settings(max_examples=150, deadline=None)
def test_decompose_is_exact_partition(case):
    """Chunks are pairwise disjoint and cover the whole array."""
    shape, pattern, nprocs = case
    regions = decompose(shape, pattern, nprocs)
    assert len(regions) == nprocs
    assert sum(r.volume for r in regions) == math.prod(shape)
    nonempty = [r for r in regions if not r.empty]
    for i, a in enumerate(nonempty):
        for b in nonempty[i + 1 :]:
            assert a.intersect(b) is None
    for r in regions:
        assert Region.full(shape).covers(r)


@given(block_star_cases())
@settings(max_examples=100, deadline=None)
def test_owned_regions_consistent_with_decompose(case):
    shape, pattern, nprocs = case
    whole = decompose(shape, pattern, nprocs)
    for rank in range(nprocs):
        owned = owned_regions(shape, pattern, nprocs, rank)
        owned_cells = {c for r in owned for c in r.cells()}
        assert owned_cells == set(whole[rank].cells())


@given(
    st.integers(1, 40),
    st.integers(1, 10),
)
@settings(max_examples=100, deadline=None)
def test_cyclic_partition_complete(n, nprocs):
    seen: set[tuple[int, ...]] = set()
    for rank in range(nprocs):
        for region in owned_regions((n,), "(CYCLIC)", nprocs, rank):
            for cell in region.cells():
                assert cell not in seen
                seen.add(cell)
    assert len(seen) == n


@st.composite
def region_pairs(draw):
    rank = draw(st.integers(1, 3))

    def region():
        starts, stops = [], []
        for _ in range(rank):
            a = draw(st.integers(0, 10))
            b = draw(st.integers(0, 10))
            starts.append(min(a, b))
            stops.append(max(a, b))
        return Region(tuple(starts), tuple(stops))

    return region(), region()


@given(region_pairs())
@settings(max_examples=150, deadline=None)
def test_intersection_matches_set_semantics(pair):
    a, b = pair
    inter = a.intersect(b)
    cells = set(a.cells()) & set(b.cells())
    if inter is None:
        assert not cells
    else:
        assert set(inter.cells()) == cells


@given(region_pairs())
@settings(max_examples=100, deadline=None)
def test_covers_matches_subset_semantics(pair):
    a, b = pair
    assert a.covers(b) == set(b.cells()).issubset(set(a.cells()))
