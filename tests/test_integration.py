"""Cross-module integration scenarios: durable namespaces, parallel
clients, the full paper workflow end to end."""

import threading

import numpy as np
import pytest

from repro.core import DPFS, FileLevel, Hint, export_file, import_file
from repro.hpf import decompose
from repro.net import DPFSServer, RemoteBackend
from repro.shell import Shell


def test_local_fs_survives_reopen(tmp_path):
    """Metadata (snapshot + WAL) and subfiles persist across mounts."""
    root = tmp_path / "dpfs"
    fs = DPFS.local(root, n_servers=3)
    fs.makedirs("/proj/run1")
    data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
    hint = Hint.multidim((64, 64), 8, (16, 16))
    with fs.open("/proj/run1/field", "w", hint=hint) as handle:
        handle.write_array((0, 0), data)
    fs.close()

    fs2 = DPFS.local(root, n_servers=3)
    assert fs2.isdir("/proj/run1")
    with fs2.open("/proj/run1/field", "r") as handle:
        assert handle.level is FileLevel.MULTIDIM
        got = handle.read_array((16, 0), (16, 64), np.float64)
    assert np.array_equal(got, data[16:32])
    fs2.close()


def test_parallel_ranks_write_disjoint_regions(fs):
    """Eight threads play eight application ranks under (BLOCK, *)."""
    shape = (64, 64)
    nprocs = 8
    hint = Hint.multidim(shape, 8, (8, 8))
    with fs.open("/shared", "w", hint=hint) as handle:
        handle.write_array((0, 0), np.zeros(shape))
    regions = decompose(shape, "(BLOCK, *)", nprocs)
    errors = []

    def worker(rank):
        try:
            region = regions[rank]
            block = np.full(region.shape, float(rank + 1))
            with fs.open("/shared", "r+", rank=rank) as handle:
                handle.write_array(region.starts, block)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(nprocs)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    with fs.open("/shared", "r") as handle:
        got = handle.read_array((0, 0), shape, np.float64)
    for rank, region in enumerate(regions):
        sub = got[
            region.starts[0] : region.stops[0],
            region.starts[1] : region.stops[1],
        ]
        assert np.all(sub == rank + 1)


def test_checkpoint_restart_cycle(fs):
    """The §3.3 motivating scenario: periodic dumps, then restart."""
    shape = (32, 32)
    nprocs = 4
    rng = np.random.default_rng(7)
    state = rng.random(shape)
    hint = Hint.array(shape, 8, "(BLOCK, *)", nprocs=nprocs)
    chunk_rows = shape[0] // nprocs
    fs.makedirs("/ckpt")
    with fs.open("/ckpt/step100", "w", hint=hint) as handle:
        for rank in range(nprocs):
            lo = rank * chunk_rows
            handle.write_chunk(state[lo : lo + chunk_rows].tobytes(), rank=rank)

    # 'application restart': every rank reads its chunk back in 1 request
    for rank in range(nprocs):
        with fs.open("/ckpt/step100", "r", rank=rank) as handle:
            blob = handle.read_chunk()
            assert handle.stats.requests == 1
        got = np.frombuffer(blob, np.float64).reshape(chunk_rows, shape[1])
        lo = rank * chunk_rows
        assert np.array_equal(got, state[lo : lo + chunk_rows])


def test_full_paper_workflow_over_tcp(tmp_path):
    """Servers over real sockets + shell + import/export + greedy file."""
    servers = [
        DPFSServer(tmp_path / f"s{i}", performance=perf).start()
        for i, perf in enumerate([1.0, 1.0, 3.0])
    ]
    try:
        fs = DPFS(RemoteBackend([s.address for s in servers]))
        shell = Shell(fs)
        shell.run_line("mkdir -p /home/user")

        # import a sequential file with a greedy multidim layout
        arr = np.arange(32 * 32, dtype=np.float64).reshape(32, 32)
        src = tmp_path / "input.bin"
        src.write_bytes(arr.tobytes())
        import_file(
            fs,
            src,
            "/home/user/data",
            hint=Hint.multidim((32, 32), 8, (8, 8), placement="greedy"),
        )

        # greedy splits 16 bricks over speeds (1, 1, 1/3): shares
        # 3/7, 3/7, 1/7 -> 7, 7, 2
        _record, bmap = fs.meta.load_file("/home/user/data")
        assert bmap.bricks_per_server() == [7, 7, 2]

        # column read through the API
        with fs.open("/home/user/data", "r") as handle:
            col = handle.read_array((0, 8), (32, 8), np.float64)
        assert np.array_equal(col, arr[:, 8:16])

        # export back out and compare
        out = tmp_path / "output.bin"
        export_file(fs, "/home/user/data", out)
        assert out.read_bytes() == arr.tobytes()

        # shell sees everything
        assert "data" in shell.run_line("ls /home/user")
        assert "multidim" in shell.run_line("stat /home/user/data")
        fs.close()
    finally:
        for s in servers:
            s.stop()


def test_mixed_levels_same_namespace(fs):
    """Linear log + multidim field + array checkpoint coexist."""
    fs.makedirs("/run")
    with fs.open("/run/log", "w", hint=Hint.linear(brick_size=32)) as log:
        for i in range(10):
            log.write(log.size, f"step {i}\n".encode())
    field = np.random.default_rng(0).random((16, 16))
    with fs.open(
        "/run/field", "w", hint=Hint.multidim((16, 16), 8, (4, 4))
    ) as handle:
        handle.write_array((0, 0), field)
    fs.write_file(
        "/run/ckpt",
        field.tobytes(),
        hint=Hint.array((16, 16), 8, "(BLOCK, BLOCK)", nprocs=4),
    )
    dirs, files = fs.listdir("/run")
    assert files == ["ckpt", "field", "log"]
    levels = {fs.stat(f"/run/{name}")["filelevel"] for name in files}
    assert levels == {"linear", "multidim", "array"}
    assert fs.read_file("/run/log").decode().count("step") == 10


def test_hetero_greedy_end_to_end(fs_hetero):
    """Greedy files on heterogeneous servers still read back correctly."""
    data = np.random.default_rng(3).bytes(64 * 100)
    fs_hetero.write_file(
        "/f", data, hint=Hint.linear(file_size=len(data), brick_size=100,
                                     placement="greedy")
    )
    assert fs_hetero.read_file("/f") == data
    _record, bmap = fs_hetero.meta.load_file("/f")
    counts = bmap.bricks_per_server()
    assert counts[0] == 3 * counts[2]
