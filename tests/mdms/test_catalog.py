"""MDMS catalog tests: runs, datasets, queries, restart helper."""

import pytest

from repro.core import DPFS, Hint
from repro.errors import DPFSError, FileNotFound
from repro.mdms import Catalog


@pytest.fixture
def catalog(fs):
    fs.makedirs("/runs/st")
    for step in (100, 200, 300):
        fs.write_file(f"/runs/st/T{step}", b"t" * 64)
        fs.write_file(f"/runs/st/P{step}", b"p" * 64)
    return Catalog(fs)


def test_needs_fs_or_db():
    with pytest.raises(DPFSError):
        Catalog()


def test_create_and_get_run(catalog):
    run_id = catalog.create_run(
        "shock-tube", owner="xhshen", attributes={"resolution": 2048}
    )
    run = catalog.get_run(run_id)
    assert run.name == "shock-tube"
    assert run.attributes["resolution"] == 2048
    with pytest.raises(FileNotFound):
        catalog.get_run(999)


def test_run_ids_monotonic(catalog):
    a = catalog.create_run("a")
    b = catalog.create_run("b")
    assert b == a + 1


def test_find_runs_by_attributes(catalog):
    catalog.create_run("lo", attributes={"resolution": 1024})
    catalog.create_run("hi", attributes={"resolution": 2048, "solver": "ppm"})
    hits = catalog.find_runs(resolution=2048)
    assert [r.name for r in hits] == ["hi"]
    assert catalog.find_runs(resolution=4096) == []
    assert len(catalog.find_runs()) == 2


def test_add_and_list_datasets(catalog):
    run_id = catalog.create_run("st")
    for step in (100, 200, 300):
        catalog.add_dataset(run_id, "temperature", f"/runs/st/T{step}",
                            step=step, attributes={"units": "K"})
    datasets = catalog.datasets_of(run_id)
    assert len(datasets) == 3
    assert all(d.attributes["units"] == "K" for d in datasets)


def test_dataset_path_must_exist(catalog):
    run_id = catalog.create_run("st")
    with pytest.raises(FileNotFound):
        catalog.add_dataset(run_id, "x", "/no/such/file")
    with pytest.raises(FileNotFound):
        catalog.add_dataset(999, "x", "/runs/st/T100")


def test_find_datasets_filters(catalog):
    run_id = catalog.create_run("st")
    for step in (100, 200, 300):
        catalog.add_dataset(run_id, "temperature", f"/runs/st/T{step}", step=step)
        catalog.add_dataset(run_id, "pressure", f"/runs/st/P{step}", step=step,
                            attributes={"units": "Pa"})
    assert len(catalog.find_datasets(name="temperature")) == 3
    assert len(catalog.find_datasets(min_step=200)) == 4
    assert len(catalog.find_datasets(name="pressure", max_step=150)) == 1
    assert len(catalog.find_datasets(units="Pa")) == 3
    assert catalog.find_datasets(units="psi") == []


def test_latest_dataset_restart_helper(catalog):
    run_id = catalog.create_run("st")
    for step in (100, 300, 200):
        catalog.add_dataset(run_id, "ckpt", f"/runs/st/T{step}", step=step)
    latest = catalog.latest_dataset(run_id, "ckpt")
    assert latest.step == 300
    assert latest.path == "/runs/st/T300"
    with pytest.raises(FileNotFound):
        catalog.latest_dataset(run_id, "nope")


def test_delete_run_keeps_or_removes_files(catalog, fs):
    run_id = catalog.create_run("st")
    catalog.add_dataset(run_id, "t", "/runs/st/T100", step=100)
    catalog.delete_run(run_id)
    assert fs.isfile("/runs/st/T100")           # records gone, file kept
    run_id = catalog.create_run("st2")
    catalog.add_dataset(run_id, "t", "/runs/st/T200", step=200)
    catalog.delete_run(run_id, remove_files=True)
    assert not fs.isfile("/runs/st/T200")


def test_summary_group_by(catalog):
    a = catalog.create_run("a")
    b = catalog.create_run("b")
    catalog.add_dataset(a, "t", "/runs/st/T100", step=100)
    catalog.add_dataset(a, "t", "/runs/st/T200", step=200)
    catalog.add_dataset(b, "p", "/runs/st/P100", step=100)
    rows = catalog.summary()
    assert rows == [
        {"run_id": a, "datasets": 2, "last_step": 200},
        {"run_id": b, "datasets": 1, "last_step": 100},
    ]


def test_catalog_survives_reopen(tmp_path):
    fs = DPFS.local(tmp_path / "d", n_servers=2)
    fs.write_file("/data", b"x")
    catalog = Catalog(fs)
    run_id = catalog.create_run("persist", attributes={"k": 1})
    catalog.add_dataset(run_id, "d", "/data", step=7)
    fs.close()

    fs2 = DPFS.local(tmp_path / "d", n_servers=2)
    catalog2 = Catalog(fs2)
    assert catalog2.get_run(run_id).attributes == {"k": 1}
    assert catalog2.latest_dataset(run_id, "d").step == 7
    fs2.close()
