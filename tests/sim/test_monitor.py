"""Unit tests for simulation statistics collectors."""

import math

import pytest

from repro.sim import Environment, Tally, TimeWeighted, Trace


def test_tally_empty():
    t = Tally()
    assert t.count == 0
    assert math.isnan(t.mean)
    assert math.isnan(t.variance)


def test_tally_moments():
    t = Tally("latency")
    for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        t.observe(v)
    assert t.count == 8
    assert t.mean == pytest.approx(5.0)
    assert t.minimum == 2.0
    assert t.maximum == 9.0
    assert t.total == pytest.approx(40.0)
    # sample variance of that classic dataset is 32/7
    assert t.variance == pytest.approx(32 / 7)
    assert t.stdev == pytest.approx(math.sqrt(32 / 7))


def test_tally_single_observation_variance_zero():
    t = Tally()
    t.observe(3.0)
    assert t.variance == 0.0


def test_time_weighted_average():
    env = Environment()
    tw = TimeWeighted(env, initial=0.0)

    def proc(env):
        yield env.timeout(2)
        tw.set(4)            # level 0 for [0,2), 4 for [2,6)
        yield env.timeout(4)
        tw.set(0)
        yield env.timeout(2)

    env.process(proc(env))
    env.run()
    # integral = 0*2 + 4*4 + 0*2 = 16 over 8 seconds
    assert tw.time_average() == pytest.approx(2.0)
    assert tw.maximum == 4


def test_time_weighted_add():
    env = Environment()
    tw = TimeWeighted(env, initial=1.0)
    tw.add(2.5)
    assert tw.level == 3.5
    tw.add(-1.5)
    assert tw.level == 2.0


def test_trace_records():
    tr = Trace("queue")
    tr.record(0.0, 1)
    tr.record(2.0, 3)
    assert tr.values() == [1, 3]
    assert tr.times() == [0.0, 2.0]
