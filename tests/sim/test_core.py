"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Interrupt


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(2.5)
        log.append(env.now)
        yield env.timeout(1.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [2.5, 4.0]
    assert env.now == 4.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc(env):
        value = yield env.timeout(1, value="payload")
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3, "c"))
    env.process(proc(env, 1, "a"))
    env.process(proc(env, 2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_fifo_for_simultaneous_events():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_returns_value():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return 42

    def parent(env, out):
        result = yield env.process(child(env))
        out.append(result)

    out = []
    env.process(parent(env, out))
    env.run()
    assert out == [42]


def test_event_succeed_wakes_waiter():
    env = Environment()
    evt = env.event()
    got = []

    def waiter(env):
        value = yield evt
        got.append((env.now, value))

    def trigger(env):
        yield env.timeout(5)
        evt.succeed("done")

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert got == [(5.0, "done")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    evt = env.event()
    caught = []

    def waiter(env):
        try:
            yield evt
        except ValueError as exc:
            caught.append(str(exc))

    def trigger(env):
        yield env.timeout(1)
        evt.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed()
    with pytest.raises(SimulationError):
        evt.succeed()


def test_value_before_trigger_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_unhandled_process_exception_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("kaput")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="kaput"):
        env.run()


def test_yielding_non_event_raises_at_yield():
    env = Environment()
    caught = []

    def bad(env):
        try:
            yield 42
        except SimulationError as exc:
            caught.append(str(exc))

    env.process(bad(env))
    env.run()
    assert caught and "non-event" in caught[0]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1)

    env.process(ticker(env))
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_event_returns_its_value():
    env = Environment()

    def child(env):
        yield env.timeout(2)
        return "finished"

    proc = env.process(child(env))
    assert env.run(until=proc) == "finished"
    assert env.now == 2.0


def test_run_until_past_deadline_rejected():
    env = Environment()

    def noop(env):
        yield env.timeout(1)

    env.process(noop(env))
    env.run()
    with pytest.raises(SimulationError):
        env.run(until=env.now - 1)


def test_run_until_unreachable_event_raises():
    env = Environment()
    orphan = env.event()  # never triggered

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_all_of_waits_for_every_child():
    env = Environment()
    done = []

    def child(env, d):
        yield env.timeout(d)
        return d

    def parent(env):
        procs = [env.process(child(env, d)) for d in (3, 1, 2)]
        results = yield AllOf(env, procs)
        done.append((env.now, sorted(results.values())))

    env.process(parent(env))
    env.run()
    assert done == [(3.0, [1, 2, 3])]


def test_any_of_fires_on_first_child():
    env = Environment()
    done = []

    def child(env, d):
        yield env.timeout(d)
        return d

    def parent(env):
        procs = [env.process(child(env, d)) for d in (3, 1, 2)]
        results = yield AnyOf(env, procs)
        done.append((env.now, list(results.values())))

    env.process(parent(env))
    env.run()
    assert done == [(1.0, [1])]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_peek_reports_next_event_time():
    env = Environment()

    def proc(env):
        yield env.timeout(7)

    env.process(proc(env))
    env.step()  # process the init event
    assert env.peek() == 7.0


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]
