"""Unit tests for simulation resources: Resource, PriorityResource, Store,
Container."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, PriorityResource, Resource, Store


def test_resource_serializes_capacity_one():
    env = Environment()
    spans = []

    def worker(env, res, tag):
        with res.request() as req:
            yield req
            start = env.now
            yield env.timeout(2)
            spans.append((tag, start, env.now))

    res = Resource(env, capacity=1)
    for tag in range(3):
        env.process(worker(env, res, tag))
    env.run()
    assert spans == [(0, 0.0, 2.0), (1, 2.0, 4.0), (2, 4.0, 6.0)]


def test_resource_capacity_two_overlaps():
    env = Environment()
    finished = []

    def worker(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(2)
            finished.append(env.now)

    res = Resource(env, capacity=2)
    for _ in range(4):
        env.process(worker(env, res))
    env.run()
    assert finished == [2.0, 2.0, 4.0, 4.0]


def test_resource_fifo_ordering():
    env = Environment()
    order = []

    def worker(env, res, tag, delay):
        yield env.timeout(delay)
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(10)

    res = Resource(env, capacity=1)
    env.process(worker(env, res, "first", 0))
    env.process(worker(env, res, "second", 1))
    env.process(worker(env, res, "third", 2))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_release_of_queued_request_cancels_it():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    queued = res.request()
    assert not queued.triggered
    res.release(queued)  # cancel while still waiting
    res.release(held)
    assert res.count == 0


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=2)
    a = res.request()
    b = res.request()
    c = res.request()
    assert res.count == 2
    assert res.queue_length == 1
    res.release(a)
    assert res.count == 2  # c granted
    assert c.triggered
    res.release(b)
    res.release(c)
    assert res.count == 0


def test_bad_capacity_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_priority_resource_orders_waiters():
    env = Environment()
    order = []

    def worker(env, res, prio, tag):
        yield env.timeout(0.1)  # let the holder grab it first
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(5)

    res = PriorityResource(env, capacity=1)
    env.process(holder(env, res))
    env.process(worker(env, res, 5, "low"))
    env.process(worker(env, res, 1, "high"))
    env.process(worker(env, res, 3, "mid"))
    env.run()
    assert order == ["high", "mid", "low"]


def test_store_fifo():
    env = Environment()
    got = []

    def producer(env, store):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    store = Store(env)
    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    times = []

    def consumer(env, store):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env, store):
        yield env.timeout(4)
        yield store.put("x")

    store = Store(env)
    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert times == [(4.0, "x")]


def test_store_capacity_backpressure():
    env = Environment()
    put_times = []

    def producer(env, store):
        for i in range(3):
            yield store.put(i)
            put_times.append(env.now)

    def consumer(env, store):
        yield env.timeout(5)
        yield store.get()

    store = Store(env, capacity=2)
    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    # first two puts immediate; third blocked until the get at t=5
    assert put_times == [0.0, 0.0, 5.0]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_container_levels():
    env = Environment()
    container = Container(env, capacity=10, init=5)
    assert container.level == 5

    def taker(env, c):
        yield c.get(3)

    env.process(taker(env, container))
    env.run()
    assert container.level == 2


def test_container_get_blocks_until_put():
    env = Environment()
    times = []

    def taker(env, c):
        yield c.get(4)
        times.append(env.now)

    def filler(env, c):
        yield env.timeout(2)
        yield c.put(2)
        yield env.timeout(2)
        yield c.put(2)

    container = Container(env, capacity=10)
    env.process(taker(env, container))
    env.process(filler(env, container))
    env.run()
    assert times == [4.0]


def test_container_put_blocks_at_capacity():
    env = Environment()
    times = []

    def filler(env, c):
        yield c.put(8)
        yield c.put(5)  # would exceed capacity 10
        times.append(env.now)

    def drainer(env, c):
        yield env.timeout(3)
        yield c.get(6)

    container = Container(env, capacity=10)
    env.process(filler(env, container))
    env.process(drainer(env, container))
    env.run()
    assert times == [3.0]


def test_container_rejects_nonpositive_amounts():
    env = Environment()
    container = Container(env, capacity=10)
    with pytest.raises(SimulationError):
        container.put(0)
    with pytest.raises(SimulationError):
        container.get(-1)
