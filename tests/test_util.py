"""Tests for shared helpers (extent math, size parsing, indexing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    ceil_div,
    clip_extent,
    coalesce_extents,
    format_bytes,
    parse_size,
    row_major_coords,
    row_major_index,
    split_extent,
    total_extent_bytes,
)


def test_ceil_div():
    assert ceil_div(0, 5) == 0
    assert ceil_div(10, 5) == 2
    assert ceil_div(11, 5) == 3
    with pytest.raises(ValueError):
        ceil_div(1, 0)


def test_coalesce_merges_overlap_and_adjacency():
    assert coalesce_extents([(0, 10), (10, 5)]) == [(0, 15)]
    assert coalesce_extents([(0, 10), (5, 10)]) == [(0, 15)]
    assert coalesce_extents([(20, 5), (0, 5)]) == [(0, 5), (20, 5)]
    assert coalesce_extents([(0, 10), (2, 3)]) == [(0, 10)]  # contained
    assert coalesce_extents([]) == []
    assert coalesce_extents([(5, 0)]) == []  # zero-length dropped


def test_total_extent_bytes():
    assert total_extent_bytes([(0, 3), (100, 7)]) == 10


def test_clip_extent():
    assert clip_extent((0, 10), (5, 10)) == (5, 5)
    assert clip_extent((5, 10), (0, 7)) == (5, 2)
    assert clip_extent((0, 5), (5, 5)) is None
    assert clip_extent((3, 4), (0, 100)) == (3, 4)


def test_split_extent():
    assert split_extent((10, 25), 10) == [(10, 10), (20, 10), (30, 5)]
    assert split_extent((0, 5), 100) == [(0, 5)]
    assert split_extent((0, 0), 4) == []
    with pytest.raises(ValueError):
        split_extent((0, 5), 0)


def test_format_bytes():
    assert format_bytes(0) == "0 B"
    assert format_bytes(1023) == "1023 B"
    assert format_bytes(2048) == "2.0 KiB"
    assert format_bytes(2 * 1024 * 1024) == "2.0 MiB"
    assert format_bytes(-2048) == "-2.0 KiB"


def test_parse_size():
    assert parse_size("123") == 123
    assert parse_size("64K") == 64 * 1024
    assert parse_size("64KiB") == 64 * 1024
    assert parse_size("2m") == 2 * 1024 * 1024
    assert parse_size("1.5K") == 1536
    assert parse_size(" 3 GB ") == 3 * 1024**3
    with pytest.raises(ValueError):
        parse_size("abc")
    with pytest.raises(ValueError):
        parse_size("1.0001K")  # fractional bytes


def test_row_major_roundtrip():
    shape = (3, 4, 5)
    assert row_major_index((0, 0, 0), shape) == 0
    assert row_major_index((2, 3, 4), shape) == 59
    assert row_major_coords(23, shape) == (1, 0, 3)
    with pytest.raises(ValueError):
        row_major_index((3, 0, 0), shape)
    with pytest.raises(ValueError):
        row_major_coords(60, shape)


@given(
    st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 100)), max_size=20
    )
)
@settings(max_examples=150, deadline=None)
def test_coalesce_preserves_byte_set(extents):
    merged = coalesce_extents(extents)
    covered = set()
    for off, ln in extents:
        covered.update(range(off, off + ln))
    merged_set = set()
    for off, ln in merged:
        merged_set.update(range(off, off + ln))
    assert merged_set == covered
    # sorted and disjoint with gaps
    for (o1, l1), (o2, _l2) in zip(merged, merged[1:]):
        assert o1 + l1 < o2


@given(st.integers(0, 10_000), st.integers(0, 5_000), st.integers(1, 999))
@settings(max_examples=150, deadline=None)
def test_split_extent_partitions(off, ln, chunk):
    pieces = split_extent((off, ln), chunk)
    assert sum(p[1] for p in pieces) == ln
    pos = off
    for p_off, p_len in pieces:
        assert p_off == pos
        assert 0 < p_len <= chunk
        pos += p_len
