"""Unit tests for derived datatypes: sizes, extents, typemaps."""

import pytest

from repro.datatypes import (
    BYTE,
    FLOAT64,
    INT32,
    Basic,
    Contiguous,
    HIndexed,
    HVector,
    Indexed,
    Subarray,
    Vector,
)
from repro.errors import DatatypeError


def test_basic_types():
    assert BYTE.size == 1 and BYTE.extent == 1
    assert INT32.size == 4
    assert FLOAT64.size == 8
    assert list(FLOAT64.extents(16)) == [(16, 8)]
    with pytest.raises(DatatypeError):
        Basic(0)


def test_contiguous_merges_to_one_run():
    t = Contiguous(10, FLOAT64)
    assert t.size == 80 and t.extent == 80
    assert t.flattened() == [(0, 80)]
    assert t.flattened(100) == [(100, 80)]
    assert t.is_contiguous


def test_contiguous_zero_count():
    t = Contiguous(0)
    assert t.size == 0 and t.flattened() == []


def test_contiguous_negative_count_rejected():
    with pytest.raises(DatatypeError):
        Contiguous(-1)


def test_vector_strided():
    # 3 blocks of 2 doubles, stride 4 doubles
    t = Vector(3, 2, 4, FLOAT64)
    assert t.size == 3 * 2 * 8
    assert t.extent == (2 * 4 + 2) * 8  # span from 0 to last block end
    assert t.flattened() == [(0, 16), (32, 16), (64, 16)]
    assert not t.is_contiguous


def test_vector_with_stride_equal_blocklength_is_contiguous():
    t = Vector(4, 2, 2, BYTE)
    assert t.flattened() == [(0, 8)]
    assert t.is_contiguous


def test_hvector_byte_stride():
    t = HVector(2, 3, 10, BYTE)
    assert t.flattened() == [(0, 3), (10, 3)]
    assert t.extent == 13


def test_indexed_displacements_in_elements():
    t = Indexed([2, 1], [0, 5], INT32)
    assert t.flattened() == [(0, 8), (20, 4)]
    assert t.size == 12
    assert t.extent == 24


def test_hindexed_byte_displacements():
    t = HIndexed([1, 1], [100, 0], BYTE)
    # typemap order preserved: block at 100 first
    assert t.flattened() == [(100, 1), (0, 1)]
    assert t.extent == 101


def test_hindexed_length_mismatch_rejected():
    with pytest.raises(DatatypeError):
        HIndexed([1, 2], [0])


def test_subarray_2d_rows():
    # 4x4 array of bytes, 2x2 window at (1, 1)
    t = Subarray((4, 4), (2, 2), (1, 1))
    assert t.size == 4
    assert t.extent == 16
    assert t.flattened() == [(5, 2), (9, 2)]


def test_subarray_full_array_is_single_run():
    t = Subarray((4, 4), (4, 4), (0, 0))
    assert t.flattened() == [(0, 16)]


def test_subarray_column():
    t = Subarray((4, 4), (4, 1), (0, 2), FLOAT64)
    assert t.flattened() == [(16, 8), (48, 8), (80, 8), (112, 8)]


def test_subarray_1d():
    t = Subarray((10,), (3,), (4,), INT32)
    assert t.flattened() == [(16, 12)]


def test_subarray_3d():
    t = Subarray((2, 3, 4), (1, 2, 2), (1, 1, 1))
    # rows: (1,1,1..3) and (1,2,1..3)
    assert t.flattened() == [(17, 2), (21, 2)]


def test_subarray_bounds_checked():
    with pytest.raises(DatatypeError):
        Subarray((4, 4), (2, 2), (3, 3))
    with pytest.raises(DatatypeError):
        Subarray((4, 4), (2,), (0, 0))
    with pytest.raises(DatatypeError):
        Subarray((), (), ())


def test_subarray_empty_window():
    t = Subarray((4, 4), (0, 2), (0, 0))
    assert t.size == 0
    assert t.flattened() == []


def test_nested_contiguous_of_vector():
    inner = Vector(2, 1, 2, BYTE)      # bytes at 0 and 2, extent 3
    outer = Contiguous(2, inner)
    assert outer.size == 4
    assert list(outer.extents()) == [(0, 1), (2, 1), (3, 1), (5, 1)]


def test_equality_and_hash():
    a = Vector(3, 2, 4, BYTE)
    b = HVector(3, 2, 4, BYTE)
    assert a == b
    assert hash(a) == hash(b)
    assert a != Vector(3, 2, 5, BYTE)
