"""Pack/unpack behaviour of derived datatypes against NumPy ground truth."""

import numpy as np
import pytest

from repro.datatypes import BYTE, FLOAT64, Contiguous, Subarray, Vector
from repro.errors import DatatypeError


def test_pack_contiguous_identity():
    t = Contiguous(8)
    buf = bytes(range(8))
    assert t.pack(buf) == buf


def test_pack_vector_gathers_strided():
    t = Vector(3, 1, 2, BYTE)  # bytes 0, 2, 4
    buf = bytes(range(6))
    assert t.pack(buf) == bytes([0, 2, 4])


def test_unpack_scatter_inverse_of_pack():
    t = Vector(3, 2, 3, BYTE)
    original = bytes(range(t.extent))
    packed = t.pack(original)
    out = bytearray(t.extent)
    t.unpack(packed, out)
    # gathered positions restored; holes remain zero
    for off, ln in t.flattened():
        assert out[off : off + ln] == original[off : off + ln]


def test_pack_subarray_matches_numpy_slice():
    arr = np.arange(36, dtype=np.float64).reshape(6, 6)
    t = Subarray((6, 6), (3, 2), (2, 1), FLOAT64)
    packed = t.pack(arr.tobytes())
    expected = arr[2:5, 1:3]
    assert packed == expected.tobytes()


def test_unpack_subarray_places_block():
    arr = np.zeros((4, 4), dtype=np.float64)
    block = np.arange(4, dtype=np.float64).reshape(2, 2)
    t = Subarray((4, 4), (2, 2), (1, 1), FLOAT64)
    buf = bytearray(arr.tobytes())
    t.unpack(block.tobytes(), buf)
    out = np.frombuffer(bytes(buf), dtype=np.float64).reshape(4, 4)
    assert np.array_equal(out[1:3, 1:3], block)
    assert out[0].sum() == 0


def test_pack_buffer_too_small_rejected():
    t = Contiguous(16)
    with pytest.raises(DatatypeError):
        t.pack(b"short")


def test_unpack_wrong_size_rejected():
    t = Contiguous(4)
    with pytest.raises(DatatypeError):
        t.unpack(b"toolongdata", bytearray(4))


def test_pack_column_matches_numpy():
    arr = np.arange(64, dtype=np.int32).reshape(8, 8)
    t = Subarray((8, 8), (8, 1), (0, 3), Contiguous(4))
    assert t.pack(arr.tobytes()) == arr[:, 3:4].tobytes()
