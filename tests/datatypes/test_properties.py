"""Property-based tests for derived datatypes."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import BYTE, FLOAT64, Contiguous, Subarray, Vector


@st.composite
def subarrays(draw):
    rank = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(1, 8)) for _ in range(rank))
    subsizes = tuple(draw(st.integers(0, n)) for n in shape)
    starts = tuple(
        draw(st.integers(0, n - s)) for n, s in zip(shape, subsizes)
    )
    return Subarray(shape, subsizes, starts, FLOAT64)


@given(subarrays())
@settings(max_examples=100, deadline=None)
def test_subarray_size_is_window_volume(t):
    assert t.size == math.prod(t.subsizes) * 8
    assert t.extent == math.prod(t.shape) * 8


@given(subarrays())
@settings(max_examples=100, deadline=None)
def test_subarray_extents_disjoint_sorted_and_inside(t):
    flat = t.flattened()
    assert sum(ln for _o, ln in flat) == t.size
    last_end = -1
    for off, ln in flat:
        assert ln > 0
        assert off > last_end            # strictly increasing, no overlap
        assert off + ln <= t.extent
        last_end = off + ln - 1


@given(subarrays())
@settings(max_examples=50, deadline=None)
def test_subarray_pack_matches_numpy(t):
    n = math.prod(t.shape)
    arr = np.arange(n, dtype=np.float64).reshape(t.shape)
    window = arr[
        tuple(slice(s, s + z) for s, z in zip(t.starts, t.subsizes))
    ]
    assert t.pack(arr.tobytes()) == window.tobytes()


@given(subarrays())
@settings(max_examples=50, deadline=None)
def test_subarray_pack_unpack_roundtrip(t):
    rng = np.random.default_rng(0)
    data = rng.random(max(t.size // 8, 0)).tobytes()
    buf = bytearray(t.extent)
    t.unpack(data, buf)
    assert t.pack(bytes(buf)) == data


@given(
    st.integers(0, 20),
    st.integers(0, 10),
    st.integers(-5, 25),
)
@settings(max_examples=100, deadline=None)
def test_vector_size_invariant(count, blocklength, stride):
    t = Vector(count, blocklength, stride, BYTE)
    assert t.size == count * blocklength
    flat = t.flattened()
    assert sum(ln for _o, ln in flat) == t.size


@given(st.integers(0, 64), st.integers(1, 16))
@settings(max_examples=100, deadline=None)
def test_contiguous_nesting_associative(count, inner):
    a = Contiguous(count, Contiguous(inner, BYTE))
    b = Contiguous(count * inner, BYTE)
    assert a.size == b.size
    assert a.flattened() == b.flattened()
