"""Request lifecycle tests: streaming pipeline, read/write asymmetry."""

import pytest

from repro.netsim import (
    CostParams,
    Disk,
    DiskParams,
    Link,
    LinkParams,
    Path,
    SimServer,
    WireRequest,
    serve_request,
)
from repro.sim import Environment


def make_server(env, *, disk_bps=1000.0, seek=0.0, link_bps=1000.0, latency=0.0):
    disk = Disk(env, DiskParams(seek_s=seek, read_bps=disk_bps, write_bps=disk_bps))
    link = Link(env, LinkParams(bandwidth_bps=link_bps, latency_s=latency))
    return SimServer(env, 0, disk, Path([link]))


def run_one(env, server, request, costs):
    done = []

    def client(env):
        yield from serve_request(env, server, request, costs)
        done.append(env.now)

    env.process(client(env))
    env.run()
    return done[0]


ZERO = CostParams(
    client_overhead_s=0.0,
    spawn_s=0.0,
    request_header_bytes=0,
    per_extent_bytes=0,
)


def test_read_time_disk_then_net_pipelined():
    env = Environment()
    server = make_server(env)
    # one block: disk 1s then net 1s (no overlap possible for one block)
    t = run_one(
        env, server, WireRequest(0, ((0, 1000),), 1000, True), ZERO
    )
    assert t == pytest.approx(2.0)


def test_read_multiblock_overlaps_disk_and_net():
    env = Environment()
    server = make_server(env)
    costs = CostParams(
        client_overhead_s=0.0,
        spawn_s=0.0,
        request_header_bytes=0,
        per_extent_bytes=0,
        pipeline_block_bytes=1000,
    )
    # 4 blocks of 1000: pipelined ≈ disk 4s + last net block 1s = 5s,
    # far less than serial 8s
    t = run_one(
        env, server, WireRequest(0, ((0, 4000),), 4000, True), costs
    )
    assert t == pytest.approx(5.0)


def test_write_pipeline_symmetric():
    env = Environment()
    server = make_server(env)
    costs = CostParams(
        client_overhead_s=0.0,
        spawn_s=0.0,
        request_header_bytes=0,
        per_extent_bytes=0,
        pipeline_block_bytes=1000,
    )
    t = run_one(
        env, server, WireRequest(0, ((0, 4000),), 4000, False), costs
    )
    assert t == pytest.approx(5.0)


def test_per_request_overheads_counted():
    env = Environment()
    server = make_server(env)
    costs = CostParams(
        client_overhead_s=0.25,
        spawn_s=0.5,
        request_header_bytes=1000,  # 1s on the 1000 B/s link
        per_extent_bytes=0,
    )
    t = run_one(env, server, WireRequest(0, ((0, 1000),), 1000, True), costs)
    # 0.25 client + 1.0 header + 0.5 spawn + 1.0 disk + 1.0 data
    assert t == pytest.approx(3.75)


def test_seek_per_extent():
    """Each contiguous extent pays one seek (visible as disk busy time —
    wall clock may hide it behind the disk/network pipeline overlap)."""
    env = Environment()
    server = make_server(env, seek=0.5)
    run_one(env, server, WireRequest(0, ((0, 1000),), 1000, True), ZERO)
    env2 = Environment()
    server2 = make_server(env2, seek=0.5)
    run_one(
        env2,
        server2,
        WireRequest(0, ((0, 500), (2000, 500)), 1000, True),
        ZERO,
    )
    assert server.disk.seek_count == 1
    assert server2.disk.seek_count == 2
    assert server2.disk.busy_time - server.disk.busy_time == pytest.approx(0.5)


def test_empty_request_costs_spawn_and_header_only():
    env = Environment()
    server = make_server(env, latency=0.1)
    costs = CostParams(
        client_overhead_s=0.0,
        spawn_s=0.5,
        request_header_bytes=0,
        per_extent_bytes=0,
    )
    t = run_one(env, server, WireRequest(0, (), 0, True), costs)
    # header transfer latency 0.1 + spawn 0.5 + final latency 0.1
    assert t == pytest.approx(0.7)
    assert server.requests_served == 1


def test_write_ack_pays_reverse_latency():
    env = Environment()
    server = make_server(env, latency=0.2)
    t_write = run_one(
        env, server, WireRequest(0, ((0, 1000),), 1000, False), ZERO
    )
    env2 = Environment()
    server2 = make_server(env2, latency=0.2)
    t_read = run_one(
        env2, server2, WireRequest(0, ((0, 1000),), 1000, True), ZERO
    )
    # write: hdr(0.2) + data(1+0.2) + disk(1) + ack(0.2) = 2.6
    # read:  hdr(0.2) + disk(1) + data(1+0.2) = 2.4
    assert t_write == pytest.approx(2.6)
    assert t_read == pytest.approx(2.4)


def test_concurrent_requests_contend_on_disk():
    env = Environment()
    server = make_server(env)
    done = []

    def client(env, tag):
        request = WireRequest(0, ((0, 1000),), 1000, True)
        yield from serve_request(env, server, request, ZERO)
        done.append((tag, env.now))

    env.process(client(env, "a"))
    env.process(client(env, "b"))
    env.run()
    # disk serializes (1s each); network serializes after
    finish = sorted(t for _tag, t in done)
    assert finish[0] == pytest.approx(2.0)
    assert finish[1] == pytest.approx(3.0)
    assert server.requests_served == 2


def test_cost_params_validation():
    with pytest.raises(Exception):
        CostParams(client_overhead_s=-1)
    with pytest.raises(Exception):
        CostParams(pipeline_block_bytes=0)
