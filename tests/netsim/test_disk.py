"""Disk model tests: service times, FIFO queueing, block pipeline."""

import pytest

from repro.errors import ConfigError
from repro.netsim import Disk, DiskParams
from repro.sim import Environment


def test_params_validated():
    with pytest.raises(ConfigError):
        DiskParams(seek_s=-1, read_bps=1, write_bps=1)
    with pytest.raises(ConfigError):
        DiskParams(seek_s=0, read_bps=0, write_bps=1)


def test_service_time_seek_plus_transfer():
    p = DiskParams(seek_s=0.01, read_bps=1000, write_bps=500)
    assert p.service_time([(0, 1000)], is_read=True) == pytest.approx(1.01)
    assert p.service_time([(0, 1000)], is_read=False) == pytest.approx(2.01)


def test_service_time_coalesces_adjacent_extents():
    p = DiskParams(seek_s=0.01, read_bps=1000, write_bps=1000)
    adjacent = p.service_time([(0, 500), (500, 500)], is_read=True)
    scattered = p.service_time([(0, 500), (1000, 500)], is_read=True)
    assert adjacent == pytest.approx(1.01)       # one seek
    assert scattered == pytest.approx(1.02)      # two seeks


def test_disk_fifo_serializes():
    env = Environment()
    disk = Disk(env, DiskParams(seek_s=0.0, read_bps=100, write_bps=100))
    finish = []

    def job(env):
        yield from disk.access([(0, 100)], is_read=True)
        finish.append(env.now)

    for _ in range(3):
        env.process(job(env))
    env.run()
    assert finish == [1.0, 2.0, 3.0]
    assert disk.io_count == 3
    assert disk.busy_time == pytest.approx(3.0)


def test_disk_wait_statistics():
    env = Environment()
    disk = Disk(env, DiskParams(seek_s=0.0, read_bps=100, write_bps=100))

    def job(env):
        yield from disk.access([(0, 100)], is_read=True)

    env.process(job(env))
    env.process(job(env))
    env.run()
    assert disk.wait.count == 2
    assert disk.wait.maximum == pytest.approx(1.0)


def test_access_block_seek_accounting():
    env = Environment()
    disk = Disk(env, DiskParams(seek_s=0.5, read_bps=1000, write_bps=1000))

    def job(env):
        yield from disk.access_block(500, pays_seek=True, is_read=True)
        yield from disk.access_block(500, pays_seek=False, is_read=True)

    env.process(job(env))
    env.run()
    assert env.now == pytest.approx(0.5 + 0.5 + 0.5)  # 1 seek + 2 transfers
    assert disk.seek_count == 1
    assert disk.bytes_moved == 1000


def test_write_rate_differs():
    env = Environment()
    disk = Disk(env, DiskParams(seek_s=0.0, read_bps=200, write_bps=100))

    def job(env):
        yield from disk.access([(0, 100)], is_read=False)

    env.process(job(env))
    env.run()
    assert env.now == pytest.approx(1.0)
