"""Property-based tests of the simulation models: conservation laws and
lower bounds that must hold for any workload."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import (
    CostParams,
    Disk,
    DiskParams,
    Link,
    LinkParams,
    Path,
    SimServer,
    WireRequest,
    serve_request,
)
from repro.sim import Environment


def build(env, *, disk_bps=1e6, seek=0.001, link_bps=1e6, latency=0.0):
    disk = Disk(env, DiskParams(seek_s=seek, read_bps=disk_bps, write_bps=disk_bps))
    link = Link(env, LinkParams(bandwidth_bps=link_bps, latency_s=latency))
    return SimServer(env, 0, disk, Path([link]))


ZERO = CostParams(
    client_overhead_s=0.0,
    spawn_s=0.0,
    request_header_bytes=0,
    per_extent_bytes=0,
)


@st.composite
def request_batches(draw):
    n = draw(st.integers(1, 6))
    requests = []
    for _ in range(n):
        n_extents = draw(st.integers(1, 4))
        extents = []
        pos = draw(st.integers(0, 1000))
        for _ in range(n_extents):
            length = draw(st.integers(1, 50_000))
            extents.append((pos, length))
            pos += length + draw(st.integers(1, 1000))
        total = sum(ln for _o, ln in extents)
        requests.append(
            WireRequest(0, tuple(extents), total, draw(st.booleans()))
        )
    return requests


@given(request_batches())
@settings(max_examples=60, deadline=None)
def test_bytes_conserved_and_makespan_bounded(requests):
    """Disk moves exactly the requested bytes; makespan is at least the
    analytic lower bound (total service / parallelism) and at most the
    fully-serialized sum."""
    env = Environment()
    server = build(env)

    def client(env, request):
        yield from serve_request(env, server, request, ZERO)

    for request in requests:
        env.process(client(env, request))
    env.run()

    total_bytes = sum(r.transfer_bytes for r in requests)
    assert server.disk.bytes_moved == total_bytes
    # the link carried the data payloads (headers are zero under ZERO costs)
    assert server.path.links[0].bytes_moved == total_bytes
    assert server.requests_served == len(requests)

    # lower bound: everything must at least pass the disk OR the link
    disk_time = sum(
        server.disk.params.service_time(r.extents, is_read=r.is_read)
        for r in requests
    )
    link_time = total_bytes / 1e6
    lower = max(disk_time, link_time) * 0.999
    upper = (disk_time + link_time) * 1.001 + 1e-9
    assert lower <= env.now <= upper


@given(
    st.integers(1, 8),
    st.integers(1_000, 200_000),
)
@settings(max_examples=40, deadline=None)
def test_concurrent_clients_never_beat_bottleneck(n_clients, nbytes):
    """N identical reads through one disk+link cannot finish faster than
    N x the disk service time (the device is FIFO capacity-1)."""
    env = Environment()
    server = build(env, seek=0.002)

    def client(env):
        request = WireRequest(0, ((0, nbytes),), nbytes, True)
        yield from serve_request(env, server, request, ZERO)

    for _ in range(n_clients):
        env.process(client(env))
    env.run()
    per_request_disk = 0.002 + nbytes / 1e6
    assert env.now >= n_clients * per_request_disk * 0.999


@given(st.integers(0, 64 * 1024), st.floats(1e3, 1e8), st.floats(0, 0.1))
@settings(max_examples=80, deadline=None)
def test_link_transfer_time_exact(nbytes, bandwidth, latency):
    env = Environment()
    link = Link(env, LinkParams(bandwidth_bps=bandwidth, latency_s=latency))
    done = []

    def sender(env):
        yield from link.transfer(nbytes)
        done.append(env.now)

    env.process(sender(env))
    env.run()
    expected = nbytes / bandwidth + latency
    assert math.isclose(done[0], expected, rel_tol=1e-9, abs_tol=1e-12)

