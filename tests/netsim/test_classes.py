"""Storage class and topology construction tests."""

import pytest

from repro.errors import ConfigError
from repro.netsim import (
    CLASS1,
    CLASS2,
    CLASS3,
    CLASSES,
    build_topology,
    scaled_class,
)
from repro.sim import Environment


def test_three_classes_registered():
    assert set(CLASSES) == {1, 2, 3}
    assert CLASSES[1] is CLASS1


def test_performance_ordering_matches_paper():
    """Class 1 is the fastest; §8.2 says ~3x faster than class 3."""
    assert CLASS1.performance == 1.0
    assert CLASS3.performance == 3.0
    assert CLASS2.performance >= CLASS3.performance


def test_class2_is_shared_medium():
    assert CLASS2.nic_shared
    assert not CLASS1.nic_shared and not CLASS3.nic_shared


def test_per_brick_access_time_ratio_about_three():
    """The physical models honour the paper's '3 times faster' claim
    for one 32 KiB brick (within a loose band)."""
    brick = 32 * 1024

    def brick_time(params):
        disk = params.disk.seek_s + brick / params.disk.read_bps
        wire = (
            brick / params.nic.bandwidth_bps
            + brick / params.trunk.bandwidth_bps
            + params.nic.latency_s
            + params.trunk.latency_s
        )
        return disk + wire

    ratio = brick_time(CLASS3) / brick_time(CLASS1)
    assert 2.0 <= ratio <= 4.0


def test_build_topology_private_nics_distinct():
    env = Environment()
    servers = build_topology(env, [CLASS1, CLASS1, CLASS1])
    nics = {id(s.path.links[0]) for s in servers}
    trunks = {id(s.path.links[1]) for s in servers}
    assert len(nics) == 3          # private NICs
    assert len(trunks) == 1        # shared class trunk


def test_build_topology_shared_medium_single_link():
    env = Environment()
    servers = build_topology(env, [CLASS2, CLASS2, CLASS2])
    media = {id(s.path.links[0]) for s in servers}
    assert len(media) == 1         # one 10 Mb Ethernet for everyone


def test_build_topology_mixed_classes_separate_trunks():
    env = Environment()
    servers = build_topology(env, [CLASS1, CLASS3, CLASS1, CLASS3])
    trunk1 = {id(s.path.links[1]) for s in servers if s.storage_class == 1}
    trunk3 = {id(s.path.links[1]) for s in servers if s.storage_class == 3}
    assert len(trunk1) == 1 and len(trunk3) == 1
    assert trunk1 != trunk3


def test_build_topology_empty_rejected():
    with pytest.raises(ConfigError):
        build_topology(Environment(), [])


def test_scaled_class():
    turbo = scaled_class(CLASS1, 2.0)
    assert turbo.disk.read_bps == CLASS1.disk.read_bps * 2
    assert turbo.performance == CLASS1.performance / 2
    with pytest.raises(ConfigError):
        scaled_class(CLASS1, 0)
