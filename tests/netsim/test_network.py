"""Network link/path model tests."""

import pytest

from repro.errors import ConfigError
from repro.netsim import Link, LinkParams, Path
from repro.sim import Environment


def test_params_validated():
    with pytest.raises(ConfigError):
        LinkParams(bandwidth_bps=0)
    with pytest.raises(ConfigError):
        LinkParams(bandwidth_bps=100, latency_s=-1)


def test_transfer_time_bandwidth_plus_latency():
    env = Environment()
    link = Link(env, LinkParams(bandwidth_bps=1000, latency_s=0.25))
    done = []

    def sender(env):
        yield from link.transfer(500)
        done.append(env.now)

    env.process(sender(env))
    env.run()
    assert done == [pytest.approx(0.75)]  # 0.5 transmit + 0.25 propagate
    assert link.bytes_moved == 500
    assert link.messages == 1


def test_shared_link_serializes_but_latency_overlaps():
    env = Environment()
    link = Link(env, LinkParams(bandwidth_bps=1000, latency_s=0.5))
    done = []

    def sender(env, tag):
        yield from link.transfer(1000)
        done.append((tag, env.now))

    env.process(sender(env, "a"))
    env.process(sender(env, "b"))
    env.run()
    # a: holds [0,1], arrives 1.5; b: holds [1,2], arrives 2.5
    assert done == [("a", 1.5), ("b", 2.5)]


def test_zero_byte_message_costs_latency_only():
    env = Environment()
    link = Link(env, LinkParams(bandwidth_bps=1000, latency_s=0.3))
    done = []

    def sender(env):
        yield from link.transfer(0)
        done.append(env.now)

    env.process(sender(env))
    env.run()
    assert done == [pytest.approx(0.3)]


def test_negative_size_rejected():
    env = Environment()
    link = Link(env, LinkParams(bandwidth_bps=1000))

    def sender(env):
        yield from link.transfer(-1)

    env.process(sender(env))
    with pytest.raises(ConfigError):
        env.run()


def test_path_store_and_forward():
    env = Environment()
    fast = Link(env, LinkParams(bandwidth_bps=2000, latency_s=0.0))
    slow = Link(env, LinkParams(bandwidth_bps=500, latency_s=0.1))
    path = Path([fast, slow])
    done = []

    def sender(env):
        yield from path.transfer(1000)
        done.append(env.now)

    env.process(sender(env))
    env.run()
    # 0.5 on fast + 2.0 on slow + 0.1 latency
    assert done == [pytest.approx(2.6)]
    assert path.latency() == pytest.approx(0.1)


def test_shared_trunk_contention_across_paths():
    """Two servers with private NICs share one trunk — trunk serializes."""
    env = Environment()
    trunk = Link(env, LinkParams(bandwidth_bps=1000))
    done = []

    def sender(env, nic, tag):
        yield from Path([nic, trunk]).transfer(1000)
        done.append((tag, env.now))

    nic_a = Link(env, LinkParams(bandwidth_bps=10000))
    nic_b = Link(env, LinkParams(bandwidth_bps=10000))
    env.process(sender(env, nic_a, "a"))
    env.process(sender(env, nic_b, "b"))
    env.run()
    times = dict(done)
    # both NIC stages overlap (0.1s each), trunk serializes 1s each
    assert min(times.values()) == pytest.approx(1.1)
    assert max(times.values()) == pytest.approx(2.1)


def test_utilization_hint():
    env = Environment()
    link = Link(env, LinkParams(bandwidth_bps=100))

    def sender(env):
        yield from link.transfer(100)
        yield env.timeout(1.0)

    env.process(sender(env))
    env.run()
    assert link.utilization_hint == pytest.approx(0.5)
