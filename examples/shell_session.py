#!/usr/bin/env python3
"""A scripted DPFS shell session (§7) over real TCP servers (§2).

Spins up three `dpfs server` instances on localhost (each storing into
its own directory — the paper's per-workstation local file systems),
mounts them as one DPFS, and drives the UNIX-like user interface:
mkdir/ls/put/cp/stat/bricks/get/rm/df.

Run:  python examples/shell_session.py
"""

import os
import tempfile

import numpy as np

from repro import DPFS
from repro.net import DPFSServer, RemoteBackend
from repro.shell import Shell


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        servers = [
            DPFSServer(
                os.path.join(tmp, f"storage{i}"), performance=perf
            ).start()
            for i, perf in enumerate([1.0, 1.0, 2.0])
        ]
        try:
            fs = DPFS(RemoteBackend([s.address for s in servers]))
            shell = Shell(fs)

            # a host-side data file to import
            local_in = os.path.join(tmp, "experiment.bin")
            arr = np.arange(128 * 128, dtype=np.float64)
            with open(local_in, "wb") as fh:
                fh.write(arr.tobytes())
            local_out = os.path.join(tmp, "roundtrip.bin")

            session = [
                "df",
                "mkdir -p /home/xhshen",
                "cd /home/xhshen",
                "pwd",
                f"put {local_in} dpfs.test",
                "ls -l",
                ("cp --level multidim --shape 128x128 --brick-shape 32x32 "
                 "--element-size 8 --placement greedy dpfs.test dpfs.tiled"),
                "stat dpfs.tiled",
                "bricks dpfs.tiled",
                f"get dpfs.tiled {local_out}",
                "rm dpfs.test",
                "ls",
            ]
            for line in session:
                print(f"dpfs:{shell.state.cwd}$ {line}")
                output = shell.run_line(line)
                if output:
                    print(output)
                print()

            with open(local_out, "rb") as fh:
                assert fh.read() == arr.tobytes()
            print("exported bytes match the original — session complete")
            print(f"(servers handled "
                  f"{sum(s.requests_served for s in servers)} requests)")
            fs.close()
        finally:
            for s in servers:
                s.stop()


if __name__ == "__main__":
    main()
