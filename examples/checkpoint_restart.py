#!/usr/bin/env python3
"""Checkpoint / restart with array-level striping (§3.3).

The paper's motivating scenario for the array file level: "many
large-scale scientific applications periodically dump check-pointing
data.  Each processor writes the data it holds to storage and simply
reads it back later when the application resumes."

This example runs a toy 2-D heat-diffusion simulation partitioned
(BLOCK, *) over 8 "processors" (threads), dumps a checkpoint every few
steps as an array-level DPFS file — one coarse-grain brick per
processor — then kills the run and restarts it from the last dump.
Each rank's restore is a SINGLE request, which is the §3.3 point.

Run:  python examples/checkpoint_restart.py
"""

import threading

import numpy as np

from repro import DPFS, Hint
from repro.hpf import decompose
from repro.mdms import Catalog

SHAPE = (256, 256)
NPROCS = 8
STEPS = 12
CHECKPOINT_EVERY = 4


def step(state: np.ndarray) -> np.ndarray:
    """One Jacobi smoothing step (toy PDE kernel)."""
    new = state.copy()
    new[1:-1, 1:-1] = 0.25 * (
        state[:-2, 1:-1] + state[2:, 1:-1] + state[1:-1, :-2] + state[1:-1, 2:]
    )
    return new


def dump(fs: DPFS, path: str, state: np.ndarray) -> None:
    """Every rank writes its (BLOCK, *) chunk as one brick, in parallel."""
    hint = Hint.array(SHAPE, 8, "(BLOCK, *)", nprocs=NPROCS)
    regions = decompose(SHAPE, "(BLOCK, *)", NPROCS)
    with fs.open(path, "w", hint=hint) as f:
        def write_rank(rank: int) -> None:
            r = regions[rank]
            chunk = state[r.starts[0] : r.stops[0], :]
            f.write_chunk(chunk.tobytes(), rank=rank)

        threads = [
            threading.Thread(target=write_rank, args=(rank,))
            for rank in range(NPROCS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        requests = f.stats.requests
    print(f"  dumped {path} ({requests} requests for {NPROCS} ranks)")


def restore(fs: DPFS, path: str) -> np.ndarray:
    """Every rank reads its chunk back — one request each."""
    state = np.empty(SHAPE)
    regions = decompose(SHAPE, "(BLOCK, *)", NPROCS)
    for rank in range(NPROCS):
        with fs.open(path, "r", rank=rank) as f:
            blob = f.read_chunk()
            assert f.stats.requests == 1, "chunk restore must be 1 request"
        r = regions[rank]
        state[r.starts[0] : r.stops[0], :] = np.frombuffer(
            blob, np.float64
        ).reshape(r.shape)
    return state


def main() -> None:
    fs = DPFS.memory(n_servers=4)
    fs.makedirs("/ckpt")
    catalog = Catalog(fs)
    run_id = catalog.create_run(
        "heat-demo", owner="demo", attributes={"shape": list(SHAPE)}
    )

    # ---- the original run: crashes after step 9 --------------------------
    rng = np.random.default_rng(0)
    state = rng.random(SHAPE)
    state[0, :] = 1.0  # hot boundary
    last_dump = None
    print("original run:")
    for s in range(1, STEPS + 1):
        state = step(state)
        if s % CHECKPOINT_EVERY == 0:
            last_dump = f"/ckpt/step{s:03d}"
            dump(fs, last_dump, state)
            catalog.add_dataset(run_id, "ckpt", last_dump, step=s)
        if s == 9:
            print("  ...simulated crash at step 9!")
            crash_step = s
            break

    # ---- restart from the last checkpoint, found via the MDMS catalog -----
    latest = catalog.latest_dataset(run_id, "ckpt")
    assert latest.path == last_dump
    resumed_from = latest.step
    print(f"restarting from {latest.path} (step {resumed_from}, "
          f"located via the MDMS catalog):")
    restored = restore(fs, latest.path)
    for s in range(resumed_from + 1, STEPS + 1):
        restored = step(restored)
    print(f"  resumed and finished step {STEPS}")

    # ---- prove the restart equals an uninterrupted run --------------------
    reference = rng = np.random.default_rng(0).random(SHAPE)
    reference[0, :] = 1.0
    for _ in range(STEPS):
        reference = step(reference)
    assert np.allclose(restored, reference), "restart diverged!"
    print("restart matches the uninterrupted run — checkpoint cycle OK")

    # show what's on storage
    _dirs, files = fs.listdir("/ckpt")
    print(f"checkpoints kept: {files}")
    del crash_step


if __name__ == "__main__":
    main()
