#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation (§8).

Runs the Figure 11-14 experiments on the calibrated simulated hardware
and prints the bandwidth tables next to the paper's qualitative claims.
Equivalent to `dpfs bench all`; kept as an example so the harness is
visible as library code.

Run:  python examples/reproduce_figures.py [--quick]
"""

import sys
import time

from repro.perf import (
    figure11,
    figure12,
    figure13,
    figure14,
    render_file_level,
    render_placement,
)


def main() -> None:
    quick = "--quick" in sys.argv
    shape = (512, 2048) if quick else (2048, 8192)
    label = "quick 8 MiB workload" if quick else "default 128 MiB workload"
    print(f"Reproducing §8 on the simulated testbed ({label})\n")

    t0 = time.perf_counter()
    fig11 = figure11(shape)
    print(render_file_level(fig11, "Figure 11 — File Level Comparisons"))
    ratio = fig11.bandwidth(1, "Multi-dim") / fig11.bandwidth(1, "Linear")
    arr = fig11.bandwidth(1, "Array") / fig11.bandwidth(1, "Multi-dim")
    print(f"paper: multidim 10-20x linear; array ~2x multidim")
    print(f"ours : multidim {ratio:.1f}x linear; array {arr:.1f}x multidim\n")

    fig12 = figure12(shape)
    print(render_file_level(fig12, "Figure 12 — File Level Comparisons"))
    scale = fig12.bandwidth(1, "Array") / fig11.bandwidth(1, "Array")
    print(f"paper: doubling nodes roughly doubles bandwidth (8 -> 16 MB/s)")
    print(f"ours : array level scaled {scale:.1f}x from Fig. 11 to Fig. 12\n")

    fig13 = figure13(shape)
    print(render_placement(fig13, "Figure 13 — Striping Algorithm Comparison"))
    gain = fig13.bandwidth("greedy", "Combined Read") / fig13.bandwidth(
        "round_robin", "Combined Read"
    )
    print(f"paper: greedy 'improved obviously' over round-robin")
    print(f"ours : greedy {gain:.2f}x round-robin on combined reads\n")

    fig14 = figure14(shape)
    print(render_placement(fig14, "Figure 14 — Striping Algorithm Comparison"))
    gain = fig14.bandwidth("greedy", "Combined Read") / fig14.bandwidth(
        "round_robin", "Combined Read"
    )
    print(f"ours : greedy {gain:.2f}x round-robin at 16/16 nodes")
    print(f"\ntotal harness time: {time.perf_counter() - t0:.1f} s")


if __name__ == "__main__":
    main()
