#!/usr/bin/env python3
"""Quickstart — mount a DPFS, stripe a file, read a column, inspect it.

DPFS (Shen & Choudhary, ICPP 2001) aggregates distributed storage into a
striped parallel file system.  This script shows the 90-second tour:

1. mount an in-memory DPFS with 4 I/O nodes,
2. create a *multidimensional* file (a 1024x1024 float64 array tiled
   into 128x128 bricks) — the paper's novel striping method,
3. write the array, read back a column block (the access pattern that
   cripples linear striping), and
4. peek at the metadata the embedded SQL database maintains.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DPFS, Hint
from repro.util import format_bytes


def main() -> None:
    # -- 1. mount ---------------------------------------------------------
    fs = DPFS.memory(n_servers=4)
    fs.makedirs("/home/demo")
    print("mounted DPFS with I/O nodes:")
    for row in fs.servers():
        print(f"  [{row['server_id']}] {row['server_name']}"
              f"  capacity={format_bytes(row['capacity'])}")

    # -- 2. create with a hint (§6: the user knows her access pattern) ------
    shape = (1024, 1024)
    hint = Hint.multidim(shape, element_size=8, brick_shape=(128, 128))
    field = np.random.default_rng(2001).random(shape)

    with fs.open("/home/demo/field", "w", hint=hint) as f:
        f.write_array((0, 0), field)
        print(f"\nwrote {format_bytes(f.size)} as "
              f"{len(f.brick_map)} bricks of 128x128 elements "
              f"({f.stats.requests} combined requests)")

    # -- 3. column access: the multidim striping pay-off --------------------
    with fs.open("/home/demo/field", "r") as f:
        column = f.read_array((0, 256), (1024, 128), np.float64)
        assert np.array_equal(column, field[:, 256:384])
        print(f"read a 1024x128 column block with {f.stats.requests} "
              f"combined requests touching {f.stats.bricks_touched} bricks")

    with fs.open("/home/demo/field", "r", combine=False) as f:
        f.read_array((0, 256), (1024, 128), np.float64)
        print(f"...the same read without request combination needs "
              f"{f.stats.requests} requests (§4.2)")

    # -- 4. metadata lives in SQL tables (§5) --------------------------------
    print("\nDPFS-FILE-ATTR row:")
    st = fs.stat("/home/demo/field")
    print(f"  file={st['filename']}  level={st['filelevel']}  "
          f"size={st['size']}  permission={st['permission']:03o}")
    print("DPFS-FILE-DISTRIBUTION bricklists:")
    _record, bmap = fs.meta.load_file("/home/demo/field")
    for server, bricks in enumerate(bmap.to_lists()):
        print(f"  server {server}: {len(bricks)} bricks, first few {bricks[:6]}")

    # raw SQL works too — the metadata layer is a real database
    count = fs.db.execute(
        "SELECT COUNT(*) FROM dpfs_file_attr WHERE filelevel = 'multidim'"
    ).scalar()
    print(f"\nSQL says there are {count} multidim file(s). Done.")


if __name__ == "__main__":
    main()
