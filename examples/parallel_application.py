#!/usr/bin/env python3
"""A full SPMD application over DPFS: halo exchange + parallel I/O.

The paper's §10 names astrophysics simulations as the target workload.
This example runs a 2-D heat equation as a real SPMD program on the
mini-MPI runtime (`repro.cluster`): 8 ranks own (BLOCK, *) row slabs,
exchange halo rows with neighbours every step (point-to-point
send/recv), and periodically dump the global field to DPFS — each rank
writing its slab concurrently, array-level striping, one brick per rank
(§3.3).  At the end, rank 0 re-reads the field through a multidim view
to cut a column profile (§3.2's access pattern).

Run:  python examples/parallel_application.py
"""

import numpy as np

from repro import DPFS, Hint
from repro.cluster import run_parallel
from repro.core import copy_within
from repro.hpf import decompose

SHAPE = (128, 128)
NPROCS = 8
STEPS = 20
DUMP_EVERY = 10


def simulate(comm, fs: DPFS):
    rank, size = comm.rank, comm.size
    regions = decompose(SHAPE, "(BLOCK, *)", size)
    mine = regions[rank]
    rows = mine.shape[0]

    # initial condition: hot stripe in the middle, scattered by rank 0
    if rank == 0:
        field = np.zeros(SHAPE)
        field[SHAPE[0] // 2 - 4 : SHAPE[0] // 2 + 4, :] = 100.0
        slabs = [field[r.starts[0] : r.stops[0], :] for r in regions]
    else:
        slabs = None
    slab = comm.scatter(slabs).copy()

    hint = Hint.array(SHAPE, 8, "(BLOCK, *)", nprocs=size)
    dumps = []
    for step in range(1, STEPS + 1):
        # -- halo exchange with neighbours (point-to-point) ----------------
        # distinct tags per direction so mailboxes never mix messages
        up, down = rank - 1, rank + 1
        tag_up, tag_down = 2 * step, 2 * step + 1
        if up >= 0:
            comm.send(slab[0].copy(), dest=up, tag=tag_up)
        if down < size:
            comm.send(slab[-1].copy(), dest=down, tag=tag_down)
        top = (
            comm.recv(source=up, tag=tag_down, timeout=10)
            if up >= 0
            else slab[0]
        )
        bottom = (
            comm.recv(source=down, tag=tag_up, timeout=10)
            if down < size
            else slab[-1]
        )

        # -- Jacobi step on the halo-extended slab ---------------------------
        extended = np.vstack([top[None, :], slab, bottom[None, :]])
        slab[:, 1:-1] = 0.25 * (
            extended[:-2, 1:-1]      # north
            + extended[2:, 1:-1]     # south
            + extended[1:-1, :-2]    # west
            + extended[1:-1, 2:]     # east
        )

        # -- periodic parallel dump (array level: 1 request per rank) -------
        if step % DUMP_EVERY == 0:
            path = f"/dumps/step{step:03d}"
            if rank == 0:
                fs.makedirs("/dumps")
                with fs.open(path, "w", hint=hint):
                    pass
            comm.barrier()
            with fs.open(path, "r+", rank=rank) as f:
                f.write_chunk(slab.tobytes(), rank=rank)
                assert f.stats.requests == 1
            comm.barrier()
            dumps.append(path)

    # -- post-processing at rank 0 (the §7 sequential-transfer story) -------
    total = comm.allreduce(float(slab.sum()))
    if rank == 0:
        latest = dumps[-1]
        # re-stripe multidimensionally so column profiles are cheap
        copy_within(
            fs, latest, "/analysis/field",
            hint=Hint.multidim(SHAPE, 8, (32, 32)),
        )
        with fs.open("/analysis/field", "r") as f:
            profile = f.read_array((0, SHAPE[1] // 2), (SHAPE[0], 1), np.float64)
        return {
            "dumps": dumps,
            "total_heat": total,
            "peak_of_profile": float(profile.max()),
            "profile_requests": None,
        }
    return {"total_heat": total}


def main() -> None:
    fs = DPFS.memory(n_servers=4)
    fs.makedirs("/analysis")
    results = run_parallel(simulate, NPROCS, fs)
    rank0 = results[0]
    print(f"{NPROCS} ranks, {STEPS} Jacobi steps on a {SHAPE[0]}x{SHAPE[1]} grid")
    print(f"checkpoints written: {rank0['dumps']}")
    print(f"total heat (allreduce across ranks): {rank0['total_heat']:.1f}")
    print(f"mid-column peak after re-striping:   {rank0['peak_of_profile']:.2f}")
    # every rank agreed on the reduction
    assert all(abs(r["total_heat"] - rank0["total_heat"]) < 1e-9 for r in results)
    dirs, files = fs.listdir("/dumps")
    print(f"DPFS namespace: /dumps holds {files}")


if __name__ == "__main__":
    main()
