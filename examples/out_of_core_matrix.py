#!/usr/bin/env python3
"""Out-of-core matrix multiply: why multidimensional striping exists (§3.2).

C = A x B where A and B live in DPFS, too "big" to hold entirely in a
rank's memory.  Computing a block C[i,j] needs a *row panel* of A and a
*column panel* of B — and column access is exactly the pattern that
makes linear striping touch every brick of the file.

The script stores B twice — linearly striped and 64x64-tile striped —
performs the same blocked multiply against both, and compares the brick
traffic.  (Results are identical; the traffic is not.)

Run:  python examples/out_of_core_matrix.py
"""

import numpy as np

from repro import DPFS, Hint

N = 512           # matrix dimension
PANEL = 128       # panel width
TILE = (64, 64)   # multidim brick


def blocked_multiply(fs: DPFS, a_path: str, b_path: str) -> tuple[np.ndarray, int, int]:
    """Panel-blocked out-of-core multiply; returns (C, requests, bricks)."""
    c = np.zeros((N, N))
    requests = bricks = 0
    for j0 in range(0, N, PANEL):
        # fetch one column panel of B (the hard access pattern)
        with fs.open(b_path, "r") as fb:
            b_panel = fb.read_array((0, j0), (N, PANEL), np.float64)
            requests += fb.stats.requests
            bricks += fb.stats.bricks_touched
        for i0 in range(0, N, PANEL):
            with fs.open(a_path, "r") as fa:
                a_panel = fa.read_array((i0, 0), (PANEL, N), np.float64)
                requests += fa.stats.requests
                bricks += fa.stats.bricks_touched
            c[i0 : i0 + PANEL, j0 : j0 + PANEL] = a_panel @ b_panel
    return c, requests, bricks


def main() -> None:
    rng = np.random.default_rng(7)
    a = rng.random((N, N))
    b = rng.random((N, N))

    fs = DPFS.memory(n_servers=4)
    md_hint = Hint.multidim((N, N), 8, TILE)

    # A is row-panel accessed → any array-aware layout is fine
    with fs.open("/A", "w", hint=md_hint) as f:
        f.write_array((0, 0), a)

    # B stored twice: once per striping method under test
    with fs.open("/B_tiled", "w", hint=md_hint) as f:
        f.write_array((0, 0), b)
    # "linear" B: same data, 1-row-high tiles = row-major linear bricks
    row_hint = Hint.multidim((N, N), 8, (1, N))
    with fs.open("/B_rowmajor", "w", hint=row_hint) as f:
        f.write_array((0, 0), b)

    print(f"C = A x B, N={N}, panel={PANEL}, servers=4")

    c_tiled, req_tiled, bricks_tiled = blocked_multiply(fs, "/A", "/B_tiled")
    print(f"  tiled B  ({TILE[0]}x{TILE[1]} bricks): "
          f"{req_tiled:5d} requests, {bricks_tiled:6d} brick touches")

    c_rows, req_rows, bricks_rows = blocked_multiply(fs, "/A", "/B_rowmajor")
    print(f"  row-striped B (linear model):      "
          f"{req_rows:5d} requests, {bricks_rows:6d} brick touches")

    assert np.allclose(c_tiled, a @ b)
    assert np.allclose(c_rows, a @ b)
    ratio = bricks_rows / bricks_tiled
    print(f"  same result, {ratio:.1f}x more brick touches with the "
          f"linear file model — §3.2's case for multidimensional striping")


if __name__ == "__main__":
    main()
