#!/usr/bin/env python3
"""MPI-IO over DPFS: file views, data sieving, two-phase collective I/O.

The paper closes (§10) by proposing DPFS "as a low level system to
service a high level interface such as MPI-IO".  This example runs that
stack: four logical ranks share one DPFS file through MPI-style *file
views* ((*, BLOCK) column panels — the interleaved worst case), and the
same write is issued three ways:

  independent  one request per hole-separated stripe per rank,
  sieved       read-modify-write of each rank's covering window,
  collective   two-phase I/O: domains are exchanged in memory and
               aggregators write a few large sequential runs.

Run:  python examples/mpi_io_collective.py
"""

import numpy as np

from repro import DPFS, Hint
from repro.backends.simulated import SimulatedBackend
from repro.datatypes import FLOAT64, Subarray
from repro.mpiio import FileView, MPIFile, SieveConfig
from repro.netsim import CLASS1

N = 256
NPROCS = 4


def fresh_fs() -> DPFS:
    return DPFS(SimulatedBackend([CLASS1] * 4))


def column_view(rank: int) -> FileView:
    width = N // NPROCS
    filetype = Subarray((N, N), (N, width), (0, rank * width), FLOAT64)
    return FileView(etype=FLOAT64, filetype=filetype)


def run(strategy: str, array: np.ndarray) -> tuple[float, int]:
    fs = fresh_fs()
    hint = Hint.linear(file_size=N * N * 8, brick_size=64 * 1024)
    width = N // NPROCS
    buffers = [
        np.ascontiguousarray(array[:, r * width : (r + 1) * width]).tobytes()
        for r in range(NPROCS)
    ]
    with MPIFile.open(fs, "/matrix", "w", nprocs=NPROCS, hint=hint) as mf:
        for rank in range(NPROCS):
            mf.set_view(rank, column_view(rank))
        t0 = fs.backend.clock
        if strategy == "independent":
            for rank in range(NPROCS):
                mf.write_at(rank, 0, buffers[rank], sieving=False)
        elif strategy == "sieved":
            mf.sieve = SieveConfig(buffer_bytes=1 << 22, min_useful_fraction=0.1)
            for rank in range(NPROCS):
                mf.write_at(rank, 0, buffers[rank])
        else:
            mf.write_at_all([0] * NPROCS, buffers)
        elapsed = fs.backend.clock - t0
        requests = mf.stats.requests
    assert fs.read_file("/matrix") == array.tobytes(), "data corrupted!"
    return elapsed, requests


def main() -> None:
    array = np.random.default_rng(42).random((N, N))
    print(f"{NPROCS} ranks write a {N}x{N} float64 array through "
          f"(*, BLOCK) column views\n")
    print(f"{'strategy':>12} {'simulated s':>12} {'requests':>9}")
    results = {}
    for strategy in ("independent", "sieved", "collective"):
        elapsed, requests = run(strategy, array)
        results[strategy] = elapsed
        print(f"{strategy:>12} {elapsed:>12.3f} {requests:>9}")
    print(f"\ncollective speedup over independent: "
          f"{results['independent'] / results['collective']:.1f}x — "
          f"the two-phase win of the paper's refs [23][25], served by DPFS")


if __name__ == "__main__":
    main()
