#!/usr/bin/env python3
"""Aggregating heterogeneous storage with greedy placement (§4.1, §8.2).

The scenario the paper opens with: a computing site has fast local disks
plus slower storage across a metropolitan network.  DPFS pools them, and
the greedy striping algorithm gives faster devices proportionally more
bricks (normalized performance numbers: fastest = 1).

This example builds a *simulated* pool — 4 class-1 servers (fast, local)
and 4 class-3 servers (about 3x slower per brick, across a WAN) — and
writes the same file twice, with round-robin and with greedy placement.
The simulated clock shows the makespan difference; the bricklists show
the 3:1 allocation of §8.2.

Run:  python examples/heterogeneous_storage.py
"""

import numpy as np

from repro import DPFS, Hint
from repro.backends.simulated import SimulatedBackend
from repro.netsim import CLASS1, CLASS3


def build_fs() -> DPFS:
    backend = SimulatedBackend([CLASS1] * 4 + [CLASS3] * 4)
    return DPFS(backend)


def run(placement: str) -> tuple[float, list[int]]:
    fs = build_fs()
    shape = (512, 512)
    hint = Hint.multidim(
        shape, 8, (64, 64), placement=placement
    )
    data = np.random.default_rng(1).random(shape)
    t0 = fs.backend.clock
    with fs.open("/bulk", "w", hint=hint) as f:
        f.write_array((0, 0), data)
        counts = f.brick_map.bricks_per_server()
    write_time = fs.backend.clock - t0

    # read it back to double-check integrity on the heterogeneous pool
    with fs.open("/bulk", "r") as f:
        got = f.read_array((0, 0), shape, np.float64)
    assert np.array_equal(got, data)
    return write_time, counts


def main() -> None:
    print("storage pool: 4x class 1 (ANL LAN, perf=1) + "
          "4x class 3 (NWU ATM+WAN, perf=3)\n")

    rr_time, rr_counts = run("round_robin")
    print("round-robin placement:")
    print(f"  bricks/server: {rr_counts}")
    print(f"  simulated write time: {rr_time:8.2f} s")

    greedy_time, greedy_counts = run("greedy")
    print("greedy placement (Fig. 8):")
    print(f"  bricks/server: {greedy_counts}")
    print(f"  simulated write time: {greedy_time:8.2f} s")

    fast = sum(greedy_counts[:4]) / 4
    slow = sum(greedy_counts[4:]) / 4
    print(f"\ngreedy gave each fast server {fast:.0f} bricks vs {slow:.0f} "
          f"per slow server — the 3:1 split §8.2 describes")
    print(f"speedup over round-robin: {rr_time / greedy_time:.2f}x")


if __name__ == "__main__":
    main()
