"""The DPFS shell commands (§7).

"Like traditional UNIX file system, DPFS also provides a user interface
... these commands include cp, mkdir, rm, ls, pwd and so on.  DPFS also
allows data transfer between sequential files and DPFS."

Each command takes the shell state and an argv list and returns output
text.  :data:`COMMANDS` maps names to handlers; ``help`` renders it.
"""

from __future__ import annotations

import posixpath
import shlex
from typing import TYPE_CHECKING, Callable

from ..core.hints import Hint
from ..core.striping import FileLevel
from ..core.transfer import copy_within, export_file, import_file
from ..errors import DPFSError
from ..util import format_bytes, parse_size

if TYPE_CHECKING:  # pragma: no cover
    from .interpreter import ShellState

__all__ = ["COMMANDS", "CommandError", "run_command"]


class CommandError(DPFSError):
    """User-facing command failure (bad arguments, missing file...)."""


CommandHandler = Callable[["ShellState", list[str]], str]
COMMANDS: dict[str, tuple[CommandHandler, str]] = {}


def command(name: str, usage: str):
    def register(fn: CommandHandler) -> CommandHandler:
        COMMANDS[name] = (fn, usage)
        return fn

    return register


def run_command(state: "ShellState", line: str) -> str:
    """Parse and run one shell line; returns its output text."""
    argv = shlex.split(line, comments=True)
    if not argv:
        return ""
    name, args = argv[0], argv[1:]
    entry = COMMANDS.get(name)
    if entry is None:
        raise CommandError(f"{name}: unknown command (try 'help')")
    handler, _usage = entry
    return handler(state, args)


def _hint_from_flags(args: list[str]) -> tuple[Hint | None, list[str]]:
    """Extract --level/--brick-size/--shape/--brick-shape/--pattern flags."""
    level: str | None = None
    brick_size: int | None = None
    shape: tuple[int, ...] | None = None
    brick_shape: tuple[int, ...] | None = None
    pattern: str | None = None
    element_size = 8
    nprocs: int | None = None
    placement = "round_robin"
    rest: list[str] = []
    it = iter(range(len(args)))
    i = 0

    def need_value(flag: str) -> str:
        nonlocal i
        i += 1
        if i >= len(args):
            raise CommandError(f"{flag} needs a value")
        return args[i]

    while i < len(args):
        arg = args[i]
        if arg == "--level":
            level = need_value(arg)
        elif arg == "--brick-size":
            brick_size = parse_size(need_value(arg))
        elif arg == "--shape":
            shape = tuple(int(x) for x in need_value(arg).split("x"))
        elif arg == "--brick-shape":
            brick_shape = tuple(int(x) for x in need_value(arg).split("x"))
        elif arg == "--pattern":
            pattern = need_value(arg)
        elif arg == "--element-size":
            element_size = int(need_value(arg))
        elif arg == "--nprocs":
            nprocs = int(need_value(arg))
        elif arg == "--placement":
            placement = need_value(arg)
        else:
            rest.append(arg)
        i += 1

    if level is None:
        return None, rest
    try:
        file_level = FileLevel(level)
    except ValueError:
        raise CommandError(
            f"--level must be linear/multidim/array, got {level!r}"
        ) from None
    if file_level is FileLevel.LINEAR:
        hint = Hint.linear(
            brick_size=brick_size or Hint().brick_size, placement=placement
        )
    elif file_level is FileLevel.MULTIDIM:
        if shape is None or brick_shape is None:
            raise CommandError("--level multidim needs --shape and --brick-shape")
        hint = Hint.multidim(
            shape, element_size, brick_shape, placement=placement
        )
    else:
        if shape is None or pattern is None or nprocs is None:
            raise CommandError(
                "--level array needs --shape, --pattern and --nprocs"
            )
        hint = Hint.array(
            shape, element_size, pattern, nprocs, placement=placement
        )
    return hint, rest


# ---------------------------------------------------------------------------
# navigation
# ---------------------------------------------------------------------------

@command("pwd", "pwd — print the working directory")
def cmd_pwd(state: "ShellState", args: list[str]) -> str:
    return state.cwd


@command("cd", "cd [dir] — change the working directory")
def cmd_cd(state: "ShellState", args: list[str]) -> str:
    target = state.resolve(args[0]) if args else "/"
    if not state.fs.isdir(target):
        raise CommandError(f"cd: no such directory: {target}")
    state.cwd = target
    return ""


@command("ls", "ls [-l] [path] — list a directory (or stat a file)")
def cmd_ls(state: "ShellState", args: list[str]) -> str:
    long_format = "-l" in args
    paths = [a for a in args if not a.startswith("-")]
    path = state.resolve(paths[0]) if paths else state.cwd
    fs = state.fs
    if fs.isfile(path):
        entries = [path]
        base = posixpath.dirname(path)
    else:
        dirs, files = fs.listdir(path)
        if not long_format:
            return "  ".join([d + "/" for d in dirs] + files)
        entries = [posixpath.join(path, d) for d in dirs] + [
            posixpath.join(path, f) for f in files
        ]
        base = path
    del base
    lines = []
    for entry in entries:
        st = fs.stat(entry)
        if st.get("is_dir"):
            lines.append(f"d---------  {'-':>10}  {posixpath.basename(entry)}/")
        else:
            perm = st["permission"]
            level = st["filelevel"]
            lines.append(
                f"-{perm:03o}  {st['size']:>12}  {level:<9} "
                f"{st['owner']:<8}  {posixpath.basename(entry)}"
            )
    return "\n".join(lines)


@command("mkdir", "mkdir [-p] dir... — create directories")
def cmd_mkdir(state: "ShellState", args: list[str]) -> str:
    recursive = "-p" in args
    targets = [a for a in args if not a.startswith("-")]
    if not targets:
        raise CommandError("mkdir: missing operand")
    for target in targets:
        path = state.resolve(target)
        if recursive:
            state.fs.makedirs(path)
        else:
            state.fs.mkdir(path)
    return ""


@command("rmdir", "rmdir dir... — remove empty directories")
def cmd_rmdir(state: "ShellState", args: list[str]) -> str:
    if not args:
        raise CommandError("rmdir: missing operand")
    for target in args:
        state.fs.rmdir(state.resolve(target))
    return ""


@command("rm", "rm file... — remove files")
def cmd_rm(state: "ShellState", args: list[str]) -> str:
    if not args:
        raise CommandError("rm: missing operand")
    for target in args:
        state.fs.remove(state.resolve(target))
    return ""


@command("chmod", "chmod octal file — change permission bits")
def cmd_chmod(state: "ShellState", args: list[str]) -> str:
    if len(args) != 2:
        raise CommandError("chmod: usage: chmod 644 /path")
    try:
        bits = int(args[0], 8)
    except ValueError:
        raise CommandError(f"chmod: bad mode {args[0]!r}") from None
    state.fs.chmod(state.resolve(args[1]), bits)
    return ""


# ---------------------------------------------------------------------------
# data movement
# ---------------------------------------------------------------------------

@command(
    "cp",
    "cp [striping flags] src dst — copy inside DPFS "
    "(flags: --level linear|multidim|array --brick-size 64K "
    "--shape RxC --brick-shape RxC --pattern '(BLOCK,*)' --nprocs N)",
)
def cmd_cp(state: "ShellState", args: list[str]) -> str:
    hint, rest = _hint_from_flags(args)
    if len(rest) != 2:
        raise CommandError("cp: usage: cp [flags] src dst")
    src, dst = (state.resolve(p) for p in rest)
    nbytes = copy_within(state.fs, src, dst, hint=hint)
    return f"copied {format_bytes(nbytes)}"


@command("put", "put [striping flags] local-file dpfs-path — import a host file")
def cmd_put(state: "ShellState", args: list[str]) -> str:
    hint, rest = _hint_from_flags(args)
    if len(rest) != 2:
        raise CommandError("put: usage: put [flags] local-file dpfs-path")
    local, remote = rest[0], state.resolve(rest[1])
    nbytes = import_file(state.fs, local, remote, hint=hint)
    return f"imported {format_bytes(nbytes)}"


@command("get", "get dpfs-path local-file — export to a sequential host file")
def cmd_get(state: "ShellState", args: list[str]) -> str:
    if len(args) != 2:
        raise CommandError("get: usage: get dpfs-path local-file")
    nbytes = export_file(state.fs, state.resolve(args[0]), args[1])
    return f"exported {format_bytes(nbytes)}"


@command("mv", "mv src dst — rename a file")
def cmd_mv(state: "ShellState", args: list[str]) -> str:
    if len(args) != 2:
        raise CommandError("mv: usage: mv src dst")
    state.fs.rename(state.resolve(args[0]), state.resolve(args[1]))
    return ""


@command("du", "du [path] — total bytes under a path")
def cmd_du(state: "ShellState", args: list[str]) -> str:
    path = state.resolve(args[0]) if args else state.cwd
    total = state.fs.du(path)
    return f"{total}\t{format_bytes(total)}\t{path}"


@command("cat", "cat file — print a (small, textual) file")
def cmd_cat(state: "ShellState", args: list[str]) -> str:
    if len(args) != 1:
        raise CommandError("cat: usage: cat file")
    data = state.fs.read_file(state.resolve(args[0]))
    return data.decode("utf-8", errors="replace")


# ---------------------------------------------------------------------------
# inspection
# ---------------------------------------------------------------------------

@command("stat", "stat path — full attributes incl. striping geometry")
def cmd_stat(state: "ShellState", args: list[str]) -> str:
    if len(args) != 1:
        raise CommandError("stat: usage: stat path")
    st = state.fs.stat(state.resolve(args[0]))
    if st.get("is_dir"):
        return f"{st['filename']}: directory"
    geometry = st["geometry"]
    lines = [
        f"file:       {st['filename']}",
        f"owner:      {st['owner']}   permission: {st['permission']:03o}",
        f"size:       {st['size']} ({format_bytes(st['size'])})",
        f"level:      {st['filelevel']}   element size: {st['element_size']}",
        f"placement:  {st['placement']}",
    ]
    if geometry["array_shape"]:
        lines.append(f"array:      {'x'.join(map(str, geometry['array_shape']))}")
    if geometry["brick_shape"]:
        lines.append(f"brick:      {'x'.join(map(str, geometry['brick_shape']))}")
    if geometry["pattern"]:
        lines.append(
            f"pattern:    {geometry['pattern']}   nprocs: {geometry['nprocs']}"
        )
    lines.append(f"bricks:     {len(geometry['brick_sizes'])}")
    return "\n".join(lines)


@command("df", "df — show the DPFS-SERVER table with usage (I/O nodes)")
def cmd_df(state: "ShellState", args: list[str]) -> str:
    rows = state.fs.df()
    lines = [
        f"{'id':>3}  {'server':<28} {'capacity':>10} {'used':>10} "
        f"{'avail':>10}  {'perf':>5}"
    ]
    for row in rows:
        lines.append(
            f"{row['server_id']:>3}  {row['server_name']:<28} "
            f"{format_bytes(row['capacity']):>10} {format_bytes(row['used']):>10} "
            f"{format_bytes(row['available']):>10}  {row['performance']:>5.1f}"
        )
    return "\n".join(lines)


@command("bricks", "bricks file — per-server bricklists (DPFS-FILE-DISTRIBUTION)")
def cmd_bricks(state: "ShellState", args: list[str]) -> str:
    if len(args) != 1:
        raise CommandError("bricks: usage: bricks file")
    path = state.resolve(args[0])
    _record, brick_map = state.fs.meta.load_file(path)
    lines = []
    for server, bricklist in enumerate(brick_map.to_lists()):
        preview = ",".join(map(str, bricklist[:12]))
        if len(bricklist) > 12:
            preview += ",..."
        lines.append(f"server {server}: {len(bricklist):>5} bricks  [{preview}]")
    return "\n".join(lines)


@command("fsck", "fsck [--repair] — check metadata/storage consistency")
def cmd_fsck(state: "ShellState", args: list[str]) -> str:
    from ..core.fsck import fsck

    repair = "--repair" in args
    report = fsck(state.fs, repair=repair)
    return str(report)


@command("help", "help [command] — this text")
def cmd_help(state: "ShellState", args: list[str]) -> str:
    if args:
        entry = COMMANDS.get(args[0])
        if entry is None:
            raise CommandError(f"help: unknown command {args[0]!r}")
        return entry[1]
    lines = ["DPFS shell commands:"]
    for name in sorted(COMMANDS):
        lines.append(f"  {COMMANDS[name][1]}")
    return "\n".join(lines)
