"""Shell state and REPL loop."""

from __future__ import annotations

import posixpath
import sys
from typing import TextIO

from ..core.filesystem import DPFS
from ..errors import DPFSError
from .commands import run_command

__all__ = ["ShellState", "Shell"]


class ShellState:
    """Working directory + file system reference shared by commands."""

    def __init__(self, fs: DPFS, cwd: str = "/") -> None:
        self.fs = fs
        self.cwd = cwd

    def resolve(self, path: str) -> str:
        """Resolve a possibly-relative DPFS path against the cwd."""
        if not path.startswith("/"):
            path = posixpath.join(self.cwd, path)
        norm = posixpath.normpath(path)
        return norm if norm.startswith("/") else "/" + norm


class Shell:
    """Line-oriented interpreter; usable programmatically or as a REPL."""

    def __init__(self, fs: DPFS, cwd: str = "/") -> None:
        self.state = ShellState(fs, cwd)

    def run_line(self, line: str) -> str:
        """Run one command line, returning its output (raises on error)."""
        return run_command(self.state, line)

    def run_script(self, lines: list[str]) -> list[str]:
        """Run several lines; collects outputs, stops at the first error."""
        return [self.run_line(line) for line in lines]

    def repl(
        self,
        stdin: TextIO = sys.stdin,
        stdout: TextIO = sys.stdout,
    ) -> None:
        """Interactive loop: ``dpfs shell``."""
        stdout.write("DPFS shell — 'help' lists commands, 'exit' leaves.\n")
        while True:
            stdout.write(f"dpfs:{self.state.cwd}$ ")
            stdout.flush()
            line = stdin.readline()
            if not line:
                break
            line = line.strip()
            if line in ("exit", "quit"):
                break
            if not line:
                continue
            try:
                output = self.run_line(line)
            except DPFSError as exc:
                output = f"error: {exc}"
            if output:
                stdout.write(output + "\n")
