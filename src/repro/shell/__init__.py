"""UNIX-like user interface for DPFS (§7)."""

from .commands import COMMANDS, CommandError, run_command
from .interpreter import Shell, ShellState

__all__ = ["Shell", "ShellState", "COMMANDS", "CommandError", "run_command"]
