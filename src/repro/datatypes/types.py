"""Derived datatype constructors (MPI-IO analogues).

==============  =======================================
MPI             here
==============  =======================================
MPI_BYTE etc.   BYTE, CHAR, INT32, INT64, FLOAT32, FLOAT64
Type_contiguous Contiguous(count, base)
Type_vector     Vector(count, blocklength, stride, base)
Type_hvector    HVector(count, blocklength, stride_bytes, base)
Type_indexed    Indexed(blocklengths, displacements, base)
Type_hindexed   HIndexed(blocklengths, byte_displacements, base)
Type_subarray   Subarray(shape, subsizes, starts, base)
==============  =======================================

``Subarray`` is the workhorse for DPFS: a processor's (BLOCK, \\*) or
(\\*, BLOCK) piece of a global array is exactly a subarray type over the
file.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

from ..errors import DatatypeError
from ..util import Extent
from .base import Basic, Datatype

__all__ = [
    "BYTE",
    "CHAR",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "Contiguous",
    "Vector",
    "HVector",
    "Indexed",
    "HIndexed",
    "Subarray",
]

BYTE = Basic(1, "byte")
CHAR = Basic(1, "char")
INT32 = Basic(4, "int32")
INT64 = Basic(8, "int64")
FLOAT32 = Basic(4, "float32")
FLOAT64 = Basic(8, "float64")


class Contiguous(Datatype):
    """``count`` repetitions of ``base`` laid end to end."""

    __slots__ = ("count", "base")

    def __init__(self, count: int, base: Datatype = BYTE) -> None:
        if count < 0:
            raise DatatypeError(f"count must be >= 0, got {count}")
        self.count = count
        self.base = base

    @property
    def size(self) -> int:
        return self.count * self.base.size

    @property
    def extent(self) -> int:
        return self.count * self.base.extent

    def extents(self, base: int = 0) -> Iterator[Extent]:
        stride = self.base.extent
        if self.base.is_contiguous and self.base.size == stride:
            # Fast path: one merged run.
            if self.count:
                yield (base, self.count * stride)
            return
        for i in range(self.count):
            yield from self.base.extents(base + i * stride)

    def __repr__(self) -> str:
        return f"Contiguous({self.count}, {self.base!r})"


class HVector(Datatype):
    """``count`` blocks of ``blocklength`` bases, byte stride between blocks."""

    __slots__ = ("count", "blocklength", "stride_bytes", "base")

    def __init__(
        self, count: int, blocklength: int, stride_bytes: int, base: Datatype = BYTE
    ) -> None:
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be >= 0")
        self.count = count
        self.blocklength = blocklength
        self.stride_bytes = stride_bytes
        self.base = base

    @property
    def size(self) -> int:
        return self.count * self.blocklength * self.base.size

    @property
    def extent(self) -> int:
        if self.count == 0 or self.blocklength == 0:
            return 0
        block_extent = self.blocklength * self.base.extent
        lo = min(0, (self.count - 1) * self.stride_bytes)
        hi = max(block_extent, (self.count - 1) * self.stride_bytes + block_extent)
        return hi - lo

    def extents(self, base: int = 0) -> Iterator[Extent]:
        block = Contiguous(self.blocklength, self.base)
        for i in range(self.count):
            yield from block.extents(base + i * self.stride_bytes)

    def __repr__(self) -> str:
        return (
            f"HVector({self.count}, {self.blocklength}, "
            f"{self.stride_bytes}, {self.base!r})"
        )


class Vector(HVector):
    """Like :class:`HVector` but the stride is in units of ``base`` extents."""

    __slots__ = ("stride",)

    def __init__(
        self, count: int, blocklength: int, stride: int, base: Datatype = BYTE
    ) -> None:
        super().__init__(count, blocklength, stride * base.extent, base)
        self.stride = stride

    def __repr__(self) -> str:
        return f"Vector({self.count}, {self.blocklength}, {self.stride}, {self.base!r})"


class HIndexed(Datatype):
    """Blocks of varying length at arbitrary byte displacements."""

    __slots__ = ("blocklengths", "displacements", "base")

    def __init__(
        self,
        blocklengths: Sequence[int],
        byte_displacements: Sequence[int],
        base: Datatype = BYTE,
    ) -> None:
        if len(blocklengths) != len(byte_displacements):
            raise DatatypeError("blocklengths/displacements length mismatch")
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("blocklengths must be >= 0")
        self.blocklengths = tuple(blocklengths)
        self.displacements = tuple(byte_displacements)
        self.base = base

    @property
    def size(self) -> int:
        return sum(self.blocklengths) * self.base.size

    @property
    def extent(self) -> int:
        if not self.blocklengths:
            return 0
        lo = min(min(self.displacements), 0)
        hi = max(
            d + b * self.base.extent
            for d, b in zip(self.displacements, self.blocklengths)
        )
        return hi - lo

    def extents(self, base: int = 0) -> Iterator[Extent]:
        for blocklength, disp in zip(self.blocklengths, self.displacements):
            block = Contiguous(blocklength, self.base)
            yield from block.extents(base + disp)

    def __repr__(self) -> str:
        return f"HIndexed({self.blocklengths}, {self.displacements}, {self.base!r})"


class Indexed(HIndexed):
    """Like :class:`HIndexed` with displacements in base-extent units."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        base: Datatype = BYTE,
    ) -> None:
        super().__init__(
            blocklengths,
            [d * base.extent for d in displacements],
            base,
        )


class Subarray(Datatype):
    """An N-dimensional rectangular window of a row-major global array.

    ``shape``    — global array shape (elements),
    ``subsizes`` — window shape,
    ``starts``   — window origin.

    The type's extent equals the whole global array, as in MPI, so a
    file view set to a Subarray addresses absolute array positions.
    """

    __slots__ = ("shape", "subsizes", "starts", "base")

    def __init__(
        self,
        shape: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        base: Datatype = BYTE,
    ) -> None:
        if not (len(shape) == len(subsizes) == len(starts)):
            raise DatatypeError("shape/subsizes/starts rank mismatch")
        if not shape:
            raise DatatypeError("subarray rank must be >= 1")
        for dim, (n, sub, start) in enumerate(zip(shape, subsizes, starts)):
            if n <= 0:
                raise DatatypeError(f"dimension {dim}: size must be positive")
            if sub < 0 or start < 0 or start + sub > n:
                raise DatatypeError(
                    f"dimension {dim}: window [{start}, {start + sub}) "
                    f"outside [0, {n})"
                )
        self.shape = tuple(shape)
        self.subsizes = tuple(subsizes)
        self.starts = tuple(starts)
        self.base = base

    @property
    def size(self) -> int:
        return math.prod(self.subsizes) * self.base.size

    @property
    def extent(self) -> int:
        return math.prod(self.shape) * self.base.extent

    def extents(self, base: int = 0) -> Iterator[Extent]:
        if math.prod(self.subsizes) == 0:
            return
        elem = self.base.extent
        rank = len(self.shape)
        # Row-major strides in elements.
        strides = [1] * rank
        for d in range(rank - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        contiguous_base = self.base.is_contiguous and self.base.size == elem
        # Iterate all outer coordinates; the innermost dim is one run when
        # the base has no holes, else per-element.
        outer = self.subsizes[:-1]
        inner = self.subsizes[-1]
        coords = [0] * max(len(outer), 1)

        def offset_of(outer_coords: Sequence[int]) -> int:
            off = self.starts[-1] * strides[-1]
            for d, c in enumerate(outer_coords[: rank - 1]):
                off += (self.starts[d] + c) * strides[d]
            return off * elem

        if rank == 1:
            start = self.starts[0] * elem
            if contiguous_base:
                yield (base + start, inner * elem)
            else:
                for i in range(inner):
                    yield from self.base.extents(base + start + i * elem)
            return

        total_outer = math.prod(outer)
        for _ in range(total_outer):
            off = offset_of(coords)
            if contiguous_base:
                yield (base + off, inner * elem)
            else:
                for i in range(inner):
                    yield from self.base.extents(base + off + i * elem)
            # increment odometer over outer dims
            for d in range(len(outer) - 1, -1, -1):
                coords[d] += 1
                if coords[d] < outer[d]:
                    break
                coords[d] = 0

    def __repr__(self) -> str:
        return f"Subarray({self.shape}, {self.subsizes}, {self.starts}, {self.base!r})"
