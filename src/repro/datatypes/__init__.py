"""MPI-IO-style derived datatypes for non-contiguous DPFS access (§6)."""

from .base import Basic, Datatype
from .types import (
    BYTE,
    CHAR,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    Contiguous,
    HIndexed,
    HVector,
    Indexed,
    Subarray,
    Vector,
)

__all__ = [
    "Datatype",
    "Basic",
    "BYTE",
    "CHAR",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "Contiguous",
    "Vector",
    "HVector",
    "Indexed",
    "HIndexed",
    "Subarray",
]
