"""Derived datatype core abstractions.

DPFS adopts MPI-IO's derived-datatype approach for describing
non-contiguous file/buffer regions (§6 of the paper).  A datatype is a
typemap: an ordered sequence of byte extents relative to a base offset.

Key quantities (MPI semantics):

``size``
    Number of bytes of actual data the type describes.
``extent``
    Span from the first to one past the last byte, including holes —
    the stride used when a type is repeated.

``extents(base)`` yields ``(offset, length)`` pairs *in typemap order*
(not sorted), so packing a user buffer into file order is a plain
concatenation walk.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

from ..errors import DatatypeError
from ..util import Extent

__all__ = ["Datatype", "Basic"]


class Datatype(ABC):
    """Abstract base for all derived datatypes."""

    __slots__ = ()

    @property
    @abstractmethod
    def size(self) -> int:
        """Bytes of data (holes excluded)."""

    @property
    @abstractmethod
    def extent(self) -> int:
        """Total span in bytes (holes included)."""

    @abstractmethod
    def extents(self, base: int = 0) -> Iterator[Extent]:
        """Yield ``(offset, length)`` byte extents in typemap order.

        Adjacent extents are *not* merged here — callers that want
        merged layouts use :meth:`flattened`.
        """

    def flattened(self, base: int = 0) -> list[Extent]:
        """Typemap with adjacent extents merged (order preserved).

        Only *abutting* extents (next starts exactly where the previous
        ended) are merged, so the result still packs/unpacks in the same
        order as :meth:`extents`.
        """
        out: list[Extent] = []
        for off, ln in self.extents(base):
            if ln <= 0:
                continue
            if out and out[-1][0] + out[-1][1] == off:
                out[-1] = (out[-1][0], out[-1][1] + ln)
            else:
                out.append((off, ln))
        return out

    # -- pack / unpack ------------------------------------------------------
    def pack(self, buffer: bytes | bytearray | memoryview) -> bytes:
        """Gather the typed bytes of ``buffer`` into one contiguous blob."""
        view = memoryview(buffer)
        if len(view) < self.extent:
            raise DatatypeError(
                f"buffer too small: need {self.extent} bytes, got {len(view)}"
            )
        parts = [view[off : off + ln] for off, ln in self.extents()]
        return b"".join(bytes(p) for p in parts)

    def unpack(self, data: bytes, buffer: bytearray | memoryview) -> None:
        """Scatter a contiguous blob back into ``buffer`` at the typemap."""
        if len(data) != self.size:
            raise DatatypeError(
                f"data length {len(data)} != datatype size {self.size}"
            )
        view = memoryview(buffer)
        if len(view) < self.extent:
            raise DatatypeError(
                f"buffer too small: need {self.extent} bytes, got {len(view)}"
            )
        pos = 0
        for off, ln in self.extents():
            view[off : off + ln] = data[pos : pos + ln]
            pos += ln

    # -- misc ---------------------------------------------------------------
    @property
    def is_contiguous(self) -> bool:
        """True when the typemap is one gap-free extent from offset 0."""
        flat = self.flattened()
        return len(flat) <= 1 and (not flat or flat[0][0] == 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Datatype):
            return NotImplemented
        return (
            self.size == other.size
            and self.extent == other.extent
            and self.flattened() == other.flattened()
        )

    def __hash__(self) -> int:
        return hash((self.size, self.extent, tuple(self.flattened())))


class Basic(Datatype):
    """A predefined elementary type of ``nbytes`` bytes (e.g. DOUBLE=8)."""

    __slots__ = ("nbytes", "name")

    def __init__(self, nbytes: int, name: str = "basic") -> None:
        if nbytes <= 0:
            raise DatatypeError(f"basic type size must be positive, got {nbytes}")
        self.nbytes = nbytes
        self.name = name

    @property
    def size(self) -> int:
        return self.nbytes

    @property
    def extent(self) -> int:
        return self.nbytes

    def extents(self, base: int = 0) -> Iterator[Extent]:
        yield (base, self.nbytes)

    def __repr__(self) -> str:
        return f"Basic({self.name}, {self.nbytes})"
