"""MDMS-style dataset catalog over DPFS (§10 future work, §9 ref [18])."""

from .catalog import Catalog, Dataset, Run

__all__ = ["Catalog", "Dataset", "Run"]
