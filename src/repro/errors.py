"""Exception hierarchy shared by every DPFS subsystem.

All errors raised by the library derive from :class:`DPFSError` so callers
can catch one base class.  Substrate packages (the embedded database, the
simulator, the network transport) define their own subtrees here as well,
keeping a single import point for error handling.
"""

from __future__ import annotations

__all__ = [
    "DPFSError",
    "ConfigError",
    # file system
    "FileSystemError",
    "FileNotFound",
    "FileExists",
    "NotADirectory",
    "IsADirectory",
    "DirectoryNotEmpty",
    "InvalidPath",
    "PermissionDenied",
    "BadFileHandle",
    "InvalidHint",
    "StripingError",
    "PlacementError",
    "ChecksumError",
    "ReplicationError",
    "IntentError",
    "MultiServerError",
    # parallel dispatch
    "DispatchError",
    "DispatchTimeout",
    "RetryExhausted",
    # metadata database
    "MetaDBError",
    "SQLSyntaxError",
    "SchemaError",
    "ConstraintError",
    "TransactionError",
    # simulation
    "SimulationError",
    "SimStopped",
    # network transport
    "TransportError",
    "ConnectionLost",
    "ProtocolError",
    "ServerError",
    "ServerBusyError",
    # datatypes / HPF
    "DatatypeError",
    "DistributionError",
]


class DPFSError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(DPFSError):
    """Invalid configuration value (cost model, topology, backend...)."""


# ---------------------------------------------------------------------------
# File system layer
# ---------------------------------------------------------------------------

class FileSystemError(DPFSError):
    """Base class for DPFS file-system level errors."""


class FileNotFound(FileSystemError):
    """The named DPFS file or directory does not exist."""


class FileExists(FileSystemError):
    """Attempt to create a file or directory that already exists."""


class NotADirectory(FileSystemError):
    """A path component used as a directory is a regular file."""


class IsADirectory(FileSystemError):
    """A file operation was attempted on a directory."""


class DirectoryNotEmpty(FileSystemError):
    """``rmdir`` on a directory that still has children."""


class InvalidPath(FileSystemError):
    """Malformed DPFS path."""


class PermissionDenied(FileSystemError):
    """Operation not allowed by the file's permission bits."""


class BadFileHandle(FileSystemError):
    """Operation on a closed or invalid file handle."""


class InvalidHint(FileSystemError):
    """The hint structure passed to DPFS-Open is inconsistent."""


class StripingError(DPFSError):
    """Request region is inconsistent with the file's striping method."""


class PlacementError(DPFSError):
    """Invalid arguments to a brick placement algorithm."""


class ChecksumError(FileSystemError):
    """A brick's payload failed end-to-end checksum verification and no
    replica held a good copy to fail over to."""


class ReplicationError(FileSystemError):
    """Replica configuration or layout violation (replicas > servers,
    two copies of a brick on one server, ...)."""


class IntentError(FileSystemError):
    """Malformed intent-journal record or illegal journal operation."""


class MultiServerError(FileSystemError):
    """A fan-out subfile operation failed on one or more servers.

    The operation was still *applied* to every reachable server (no
    abort at the first failure) and its intent stays journalled, so a
    later recovery sweep can finish the stragglers.  ``errors`` holds
    ``(server, exception)`` pairs for every server that failed.
    """

    def __init__(self, op: str, errors: list[tuple[int, Exception]]) -> None:
        self.op = op
        self.errors = list(errors)
        detail = "; ".join(f"server {s}: {e}" for s, e in self.errors)
        super().__init__(
            f"{op}: {len(self.errors)} server(s) failed ({detail})"
        )


# ---------------------------------------------------------------------------
# Parallel dispatch layer
# ---------------------------------------------------------------------------
#
# Any exception whose ``transient`` attribute is truthy is considered
# retryable by the dispatcher (repro.core.dispatch); everything else
# propagates unchanged on first occurrence.

class DispatchError(FileSystemError):
    """Failure inside the parallel per-server dispatch layer."""


class DispatchTimeout(DispatchError):
    """A per-server request missed the dispatcher's deadline."""


class RetryExhausted(DispatchError):
    """A transient error kept firing past the dispatcher's retry budget."""


# ---------------------------------------------------------------------------
# Embedded metadata database
# ---------------------------------------------------------------------------

class MetaDBError(DPFSError):
    """Base class for the embedded SQL engine."""


class SQLSyntaxError(MetaDBError):
    """The SQL text could not be tokenized or parsed."""


class SchemaError(MetaDBError):
    """Unknown table/column, duplicate table, arity mismatch..."""


class ConstraintError(MetaDBError):
    """Primary key / NOT NULL violation."""


class TransactionError(MetaDBError):
    """Illegal transaction state transition (e.g. COMMIT with no BEGIN)."""


# ---------------------------------------------------------------------------
# Discrete-event simulation kernel
# ---------------------------------------------------------------------------

class SimulationError(DPFSError):
    """Base class for simulator misuse."""


class SimStopped(SimulationError):
    """Raised inside a process when the simulation is force-stopped."""


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------

class TransportError(DPFSError):
    """Base class for the real-socket transport."""


class ConnectionLost(TransportError):
    """The socket to a server broke mid-exchange, or a replacement could
    not be established within the connection pool's reconnect budget.
    Marked transient: the broken socket is discarded before this is
    raised (a desynced socket never serves another request) and every
    operation the dispatch layer replays — extent reads and writes — is
    idempotent, so the dispatcher's retry budget may re-issue the
    request on a fresh connection."""

    transient = True


class ProtocolError(TransportError):
    """Malformed frame or unexpected message type on the wire."""


class ServerError(TransportError):
    """The remote DPFS server reported a failure servicing a request."""


class ServerBusyError(ServerError):
    """§4.2 admission rejection: the server is at ``max_concurrent`` and
    told the client to "try again later".  Marked transient so the
    dispatch layer retries it with backoff."""

    transient = True


# ---------------------------------------------------------------------------
# Derived datatypes / HPF decomposition
# ---------------------------------------------------------------------------

class DatatypeError(DPFSError):
    """Invalid derived-datatype construction or use."""


class DistributionError(DPFSError):
    """Invalid HPF distribution specification."""
