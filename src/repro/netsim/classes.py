"""The three storage classes of §8 and topology construction.

The paper's external storage:

=======  ==========================================================
class 1  Linux machines at Argonne, Fast Ethernet + ATM LAN, close
         to the SP2 (lowest latency; *"accessing a brick from class 1
         is about 3 times faster than from class 3"*)
class 2  8 HP workstations at Northwestern on a shared 10 Mb
         Ethernet, reached over a metropolitan network
class 3  8 SUN workstations at Northwestern on 155 Mb ATM, reached
         over the same metropolitan network
=======  ==========================================================

The parameters below are calibrated (see EXPERIMENTS.md) so the §8
figures land in the paper's single-digit-MB/s range with the paper's
orderings; they are *models*, not measurements of 2001 hardware.

``build_topology`` turns class specs into :class:`SimServer` objects:
per-server NIC links (or one shared medium for class 2), plus one
shared trunk per class (the LAN backbone for class 1, the metro WAN
for classes 2 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from ..errors import ConfigError
from ..sim import Environment
from ..util import MiB
from .disk import Disk, DiskParams
from .network import Link, LinkParams, Path
from .node import SimServer

__all__ = ["StorageClassParams", "CLASS1", "CLASS2", "CLASS3", "CLASSES", "build_topology"]


@dataclass(frozen=True)
class StorageClassParams:
    """Everything needed to instantiate servers of one storage class."""

    class_id: int
    description: str
    disk: DiskParams
    nic: LinkParams                  # per-server link (or the shared medium)
    nic_shared: bool                 # True → one medium for every server
    trunk: LinkParams                # shared backbone/WAN for the class
    #: normalized brick access time for the greedy algorithm (fastest = 1)
    performance: float

    def __post_init__(self) -> None:
        if self.performance <= 0:
            raise ConfigError("performance number must be positive")


#: Argonne Linux boxes — switched Fast Ethernet LAN next to the SP2.
CLASS1 = StorageClassParams(
    class_id=1,
    description="ANL Linux workstations, Fast Ethernet + ATM LAN",
    disk=DiskParams(seek_s=0.018, read_bps=3.0 * MiB, write_bps=2.25 * MiB),
    nic=LinkParams(bandwidth_bps=12.0 * MiB, latency_s=0.0005),
    nic_shared=False,
    trunk=LinkParams(bandwidth_bps=24.0 * MiB, latency_s=0.0005),
    performance=1.0,
)

#: Northwestern HP workstations — one shared 10 Mb Ethernet + metro WAN.
CLASS2 = StorageClassParams(
    class_id=2,
    description="NWU HP workstations, shared 10 Mb Ethernet, metro WAN",
    disk=DiskParams(seek_s=0.020, read_bps=2.5 * MiB, write_bps=1.9 * MiB),
    nic=LinkParams(bandwidth_bps=1.1 * MiB, latency_s=0.003),   # shared medium
    nic_shared=True,
    trunk=LinkParams(bandwidth_bps=3.0 * MiB, latency_s=0.015),
    performance=4.0,
)

#: Northwestern SUN workstations — 155 Mb ATM + the same metro WAN.
CLASS3 = StorageClassParams(
    class_id=3,
    description="NWU SUN workstations, 155 Mb ATM, metro WAN",
    disk=DiskParams(seek_s=0.020, read_bps=1.0 * MiB, write_bps=0.75 * MiB),
    nic=LinkParams(bandwidth_bps=18.0 * MiB, latency_s=0.001),
    nic_shared=False,
    trunk=LinkParams(bandwidth_bps=6.0 * MiB, latency_s=0.012),
    performance=3.0,
)

CLASSES: dict[int, StorageClassParams] = {1: CLASS1, 2: CLASS2, 3: CLASS3}


def scaled_class(params: StorageClassParams, factor: float) -> StorageClassParams:
    """A uniformly slower/faster variant (ablation helper)."""
    if factor <= 0:
        raise ConfigError("scale factor must be positive")
    return replace(
        params,
        disk=DiskParams(
            seek_s=params.disk.seek_s / factor,
            read_bps=params.disk.read_bps * factor,
            write_bps=params.disk.write_bps * factor,
        ),
        nic=LinkParams(params.nic.bandwidth_bps * factor, params.nic.latency_s / factor),
        trunk=LinkParams(params.trunk.bandwidth_bps * factor, params.trunk.latency_s / factor),
        performance=params.performance / factor,
    )


def build_topology(
    env: Environment,
    class_per_server: Sequence[StorageClassParams],
) -> list[SimServer]:
    """Create one :class:`SimServer` per entry of ``class_per_server``.

    Servers of the same class share that class's trunk link; class-2
    style servers additionally share one medium.  Mixed-class pools
    (Figs. 13/14: half class 1, half class 3) just interleave entries.
    """
    if not class_per_server:
        raise ConfigError("need at least one server")
    trunks: dict[int, Link] = {}
    media: dict[int, Link] = {}
    servers: list[SimServer] = []
    for idx, params in enumerate(class_per_server):
        trunk = trunks.get(params.class_id)
        if trunk is None:
            trunk = Link(env, params.trunk, name=f"trunk.c{params.class_id}")
            trunks[params.class_id] = trunk
        if params.nic_shared:
            nic = media.get(params.class_id)
            if nic is None:
                nic = Link(env, params.nic, name=f"medium.c{params.class_id}")
                media[params.class_id] = nic
        else:
            nic = Link(env, params.nic, name=f"nic.s{idx}")
        disk = Disk(env, params.disk, name=f"disk.s{idx}")
        servers.append(
            SimServer(
                env,
                idx,
                disk,
                Path([nic, trunk]),
                name=f"c{params.class_id}.s{idx}",
                storage_class=params.class_id,
            )
        )
    return servers
