"""Network link models.

:class:`Link` is a store-and-forward pipe: a message holds the link for
``bytes / bandwidth`` seconds (FIFO), then pays the propagation latency
without occupying it.  A *shared medium* (the 10 Mb Ethernet of storage
class 2) is simply one ``Link`` object passed to several servers; a
switched LAN gives each server its own ``Link``.  A *path* is a link
sequence traversed in order — e.g. server NIC → metro-WAN trunk for the
Northwestern classes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..sim import Environment, Resource, Tally

__all__ = ["LinkParams", "Link", "Path"]


@dataclass(frozen=True)
class LinkParams:
    bandwidth_bps: float    # bytes per second
    latency_s: float = 0.0  # one-way propagation

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0 or self.latency_s < 0:
            raise ConfigError(f"invalid link parameters {self}")


class Link:
    """One contended pipe (FIFO, full-duplex approximated as one queue)."""

    def __init__(self, env: Environment, params: LinkParams, name: str = "link") -> None:
        self.env = env
        self.params = params
        self.name = name
        self._pipe = Resource(env, capacity=1)
        self.busy_time = 0.0
        self.messages = 0
        self.bytes_moved = 0
        self.wait = Tally(f"{name}.wait")

    def transfer(self, nbytes: int):
        """Simulation sub-process: move ``nbytes`` across this link."""
        if nbytes < 0:
            raise ConfigError(f"negative message size {nbytes}")
        hold = nbytes / self.params.bandwidth_bps
        arrived = self.env.now
        with self._pipe.request() as grant:
            yield grant
            self.wait.observe(self.env.now - arrived)
            yield self.env.timeout(hold)
        self.busy_time += hold
        self.messages += 1
        self.bytes_moved += nbytes
        if self.params.latency_s:
            yield self.env.timeout(self.params.latency_s)

    @property
    def utilization_hint(self) -> float:
        """Busy fraction so far (diagnostics)."""
        return self.busy_time / self.env.now if self.env.now > 0 else 0.0


class Path:
    """An ordered chain of links (store-and-forward)."""

    def __init__(self, links: list[Link]) -> None:
        self.links = list(links)

    def transfer(self, nbytes: int):
        for link in self.links:
            yield from link.transfer(nbytes)

    def latency(self) -> float:
        return sum(link.params.latency_s for link in self.links)

    def __iter__(self):
        return iter(self.links)
