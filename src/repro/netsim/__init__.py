"""Simulated networks, disks and I/O nodes for the §8 evaluation."""

from .classes import (
    CLASS1,
    CLASS2,
    CLASS3,
    CLASSES,
    StorageClassParams,
    build_topology,
    scaled_class,
)
from .disk import Disk, DiskParams
from .network import Link, LinkParams, Path
from .node import CostParams, SimServer, WireRequest, serve_request

__all__ = [
    "Disk",
    "DiskParams",
    "Link",
    "LinkParams",
    "Path",
    "SimServer",
    "WireRequest",
    "CostParams",
    "serve_request",
    "StorageClassParams",
    "CLASS1",
    "CLASS2",
    "CLASS3",
    "CLASSES",
    "build_topology",
    "scaled_class",
]
