"""Simulated I/O nodes and the synchronous request lifecycle.

A :class:`SimServer` bundles a disk, a network path to the compute
site, and a CPU resource on which request handlers are spawned ("the
server's spawning multiple processes or threads to handle them", §2).

:func:`serve_request` plays out one client request end to end.  DPFS
clients are synchronous — a client process issues its next request only
after the previous one completes — so concurrency comes from many
client processes contending on the shared resources (CPU, disk,
links), which is what produces the queueing/convoy effects §4.2
describes.

Within one request the server *streams*: it reads the extent list from
disk in ``pipeline_block_bytes`` pieces and sends each piece while the
next is being read (and symmetrically for writes).  This matters for
combined requests, whose many-brick payloads would otherwise serialize
disk and network.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..sim import Environment, Resource, Store
from ..util import Extent, split_extent
from .disk import Disk
from .network import Path

__all__ = ["CostParams", "SimServer", "WireRequest", "serve_request"]


@dataclass(frozen=True)
class CostParams:
    """Software per-request costs (seconds / bytes)."""

    client_overhead_s: float = 0.0003   # marshal request, brick math
    spawn_s: float = 0.0015             # server fork/thread + dispatch
    request_header_bytes: int = 256     # base request message size
    per_extent_bytes: int = 16          # wire cost of each extent descriptor
    pipeline_block_bytes: int = 256 * 1024  # server streaming buffer

    def __post_init__(self) -> None:
        if min(self.client_overhead_s, self.spawn_s) < 0:
            raise ConfigError("negative cost parameter")
        if self.request_header_bytes < 0 or self.per_extent_bytes < 0:
            raise ConfigError("negative message size parameter")
        if self.pipeline_block_bytes <= 0:
            raise ConfigError("pipeline block must be positive")

    def request_bytes(self, n_extents: int) -> int:
        return self.request_header_bytes + self.per_extent_bytes * n_extents


class SimServer:
    """One simulated storage server."""

    def __init__(
        self,
        env: Environment,
        server_id: int,
        disk: Disk,
        path: Path,
        *,
        name: str = "",
        storage_class: int = 0,
    ) -> None:
        self.env = env
        self.server_id = server_id
        self.disk = disk
        self.path = path
        self.name = name or f"sim{server_id}"
        self.storage_class = storage_class
        self.cpu = Resource(env, capacity=1)
        self.requests_served = 0


@dataclass(frozen=True)
class WireRequest:
    """One client→server request as the simulator sees it."""

    server: int
    extents: tuple[Extent, ...]     # already coalesced subfile extents
    transfer_bytes: int             # bytes that cross the network as data
    is_read: bool


def _blocks(request: WireRequest, block_bytes: int) -> list[tuple[bool, int]]:
    """(pays_seek, nbytes) stream pieces of the request's extent list."""
    out: list[tuple[bool, int]] = []
    for extent in request.extents:
        for i, (_off, ln) in enumerate(split_extent(extent, block_bytes)):
            out.append((i == 0, ln))
    return out


def serve_request(
    env: Environment,
    server: SimServer,
    request: WireRequest,
    costs: CostParams,
):
    """Simulation sub-process: one synchronous request, start to finish.

    read : client-overhead → request msg out → spawn → pipelined
           {disk-read block | data block back}
    write: client-overhead → request msg out → spawn → pipelined
           {data block out | disk-write block} → ack latency
    """
    if costs.client_overhead_s:
        yield env.timeout(costs.client_overhead_s)

    header = costs.request_bytes(len(request.extents))
    yield from server.path.transfer(header)
    with server.cpu.request() as grant:
        yield grant
        yield env.timeout(costs.spawn_s)

    blocks = _blocks(request, costs.pipeline_block_bytes)
    if not blocks:
        if server.path.latency():
            yield env.timeout(server.path.latency())
        server.requests_served += 1
        return

    # Bounded store between the two stages = the server's buffer pool.
    store = Store(env, capacity=4)

    if request.is_read:

        def read_disk_stage():
            for pays_seek, nbytes in blocks:
                yield from server.disk.access_block(
                    nbytes, pays_seek=pays_seek, is_read=True
                )
                yield store.put((pays_seek, nbytes))
            yield store.put(None)

        def read_net_stage():
            while True:
                item = yield store.get()
                if item is None:
                    return
                _pays_seek, nbytes = item
                yield from server.path.transfer(nbytes)

        producer = env.process(read_disk_stage(), name="srv.disk")
        consumer = env.process(read_net_stage(), name="srv.net")
    else:

        def write_net_stage():
            for pays_seek, nbytes in blocks:
                yield from server.path.transfer(nbytes)
                yield store.put((pays_seek, nbytes))
            yield store.put(None)

        def write_disk_stage():
            while True:
                item = yield store.get()
                if item is None:
                    return
                pays_seek, nbytes = item
                yield from server.disk.access_block(
                    nbytes, pays_seek=pays_seek, is_read=False
                )

        producer = env.process(write_net_stage(), name="srv.net")
        consumer = env.process(write_disk_stage(), name="srv.disk")

    yield env.all_of([producer, consumer])
    if not request.is_read and server.path.latency():
        # zero-byte ack rides the reverse latency
        yield env.timeout(server.path.latency())
    server.requests_served += 1
