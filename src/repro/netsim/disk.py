"""Disk device model.

A storage device serves one I/O at a time (§4.2: "the actual I/O has to
be sequentialized locally due to the nature of sequential storage
device") — a FIFO :class:`~repro.sim.Resource` of capacity 1.  Each
*contiguous* extent costs one positioning delay (seek + rotational,
folded into ``seek_s``) plus ``bytes / rate``; the extent list of a
combined request is coalesced first, so combined requests whose bricks
abut in the subfile become single sequential transfers — exactly the
benefit the paper's request combination earns at the device level.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..errors import ConfigError
from ..sim import Environment, Resource, Tally
from ..util import Extent, coalesce_extents

__all__ = ["DiskParams", "Disk"]


@dataclass(frozen=True)
class DiskParams:
    """Device timing parameters."""

    seek_s: float          # positioning cost per contiguous extent
    read_bps: float        # sequential read bandwidth, bytes/s
    write_bps: float       # sequential write bandwidth, bytes/s

    def __post_init__(self) -> None:
        if self.seek_s < 0 or self.read_bps <= 0 or self.write_bps <= 0:
            raise ConfigError(f"invalid disk parameters {self}")

    def service_time(self, extents: Sequence[Extent], *, is_read: bool) -> float:
        """Pure service time (no queueing) of an extent list."""
        merged = coalesce_extents(extents)
        nbytes = sum(ln for _o, ln in merged)
        rate = self.read_bps if is_read else self.write_bps
        return len(merged) * self.seek_s + nbytes / rate


class Disk:
    """A FIFO device bound to a simulation environment."""

    def __init__(self, env: Environment, params: DiskParams, name: str = "disk") -> None:
        self.env = env
        self.params = params
        self.name = name
        self._device = Resource(env, capacity=1)
        self.busy_time = 0.0
        self.io_count = 0
        self.seek_count = 0
        self.bytes_moved = 0
        self.wait = Tally(f"{name}.wait")

    def access(self, extents: Sequence[Extent], *, is_read: bool):
        """Simulation sub-process: perform one I/O (queue + service)."""
        merged = coalesce_extents(extents)
        service = self.params.service_time(merged, is_read=is_read)
        arrived = self.env.now
        with self._device.request() as grant:
            yield grant
            self.wait.observe(self.env.now - arrived)
            yield self.env.timeout(service)
        self.busy_time += service
        self.io_count += 1
        self.seek_count += len(merged)
        self.bytes_moved += sum(ln for _o, ln in merged)

    def access_block(self, nbytes: int, *, pays_seek: bool, is_read: bool):
        """Simulation sub-process: one pipeline block of a larger I/O.

        The streaming server issues a request's extents block by block
        so disk and network overlap; only the first block of each
        contiguous extent pays the positioning cost.  The device is
        acquired per block, so concurrent handlers interleave fairly.
        """
        rate = self.params.read_bps if is_read else self.params.write_bps
        service = (self.params.seek_s if pays_seek else 0.0) + nbytes / rate
        arrived = self.env.now
        with self._device.request() as grant:
            yield grant
            self.wait.observe(self.env.now - arrived)
            yield self.env.timeout(service)
        self.busy_time += service
        self.bytes_moved += nbytes
        if pays_seek:
            self.seek_count += 1
            self.io_count += 1

    @property
    def queue_length(self) -> int:
        return self._device.queue_length
