"""Discrete-event simulation kernel.

A minimal, dependency-free process-based simulator in the style of
SimPy: simulation *processes* are Python generators that ``yield``
events (timeouts, resource requests, other processes) and are resumed
by the :class:`Environment` event loop when those events fire.

The DPFS performance harness (:mod:`repro.netsim`, :mod:`repro.perf`)
builds compute nodes, servers, network links and disks as processes and
resources on top of this kernel.

Example::

    env = Environment()

    def worker(env, disk):
        with disk.request() as req:
            yield req
            yield env.timeout(0.005)      # seek + transfer

    disk = Resource(env, capacity=1)
    env.process(worker(env, disk))
    env.run()
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Generator
from typing import Any, Callable

from ..errors import SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
]


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* (scheduled) by :meth:`succeed` or
    :meth:`fail` and *processed* when the environment pops it from the
    event queue and runs its callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before it was triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, resuming waiters with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception thrown into waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """Wraps a generator; itself an event that fires when the generator ends.

    ``yield``-able values inside the generator must be :class:`Event`
    instances (timeouts, resource requests, other processes...).
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self, env: "Environment", generator: Generator, name: str | None = None
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick-start on the next event-loop iteration.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself")
        # Deliver asynchronously through a failed event so that the
        # interrupt arrives via the normal resume path.
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        evt = Event(self.env)
        evt.callbacks.append(self._resume)
        evt.fail(Interrupt(cause))

    # -- engine ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, SimStoppedSignal):
                raise
            if not self._triggered:
                self.fail(exc)
            else:  # pragma: no cover - defensive
                raise
            return

        if not isinstance(target, Event):
            # Push the error into the generator so user code sees a clear
            # traceback at the offending yield.
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            try:
                self._generator.throw(exc)
            except StopIteration:
                self.succeed(None)
            except BaseException as err:
                self.fail(err)
            return

        self._waiting_on = target
        if target.callbacks is None:
            # Already processed: resume immediately on next loop turn.
            bridge = Event(self.env)
            bridge.callbacks.append(self._resume)
            if target.ok:
                bridge.succeed(target._value)
            else:
                bridge.fail(target._value)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        for evt in self.events:
            if evt.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for evt in self.events:
            if evt.callbacks is None:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value maps event -> value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed({evt: evt._value for evt in self.events})


class AnyOf(_Condition):
    """Fires as soon as one child fires; value maps that event -> value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self.succeed({event: event._value})


class SimStoppedSignal(BaseException):
    """Internal control-flow signal used by Environment.run(until=...)."""


class Environment:
    """The event loop: a clock plus a priority queue of triggered events."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self.active_process: Process | None = None

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention in this repo)."""
        return self._now

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok:
            # An un-waited-for failure must not pass silently.
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain), a number (advance the clock to
        that time), or an :class:`Event` (run until it is processed and
        return its value).
        """
        stop_event: Event | None = None
        deadline: float | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is in the past (now={self._now})"
                )

        while self._queue:
            if deadline is not None and self.peek() > deadline:
                self._now = deadline
                return None
            self.step()
            if stop_event is not None and stop_event.processed:
                if not stop_event.ok:
                    raise stop_event._value
                return stop_event._value

        if stop_event is not None and not stop_event.processed:
            raise SimulationError(
                "run(until=event): queue drained before the event fired"
            )
        if deadline is not None:
            self._now = deadline
        return None
