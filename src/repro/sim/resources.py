"""Shared-resource primitives for the simulation kernel.

:class:`Resource`
    A server with fixed capacity and a FIFO wait queue — models a disk
    (capacity 1: the paper's "I/O has to be sequentialized locally"), a
    network link, or a bounded thread pool.

:class:`PriorityResource`
    Same, but waiters carry a priority (lower first).

:class:`Store`
    An unbounded (or bounded) FIFO queue of items — models a server's
    inbound request mailbox.

:class:`Container`
    A counter of continuous "stuff" with put/get — models buffer space.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any

from ..errors import SimulationError
from .core import Environment, Event

__all__ = ["Request", "Resource", "PriorityResource", "Store", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource`; usable as a context manager."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """FIFO resource with integral capacity.

    Usage inside a process::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self._waiters: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            # Releasing a still-queued (never granted) request cancels it.
            try:
                self._waiters.remove(request)
            except ValueError:
                pass

    def _grant_next(self) -> None:
        while self._waiters and len(self.users) < self.capacity:
            nxt = self._waiters.popleft()
            self.users.append(nxt)
            nxt.succeed()


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-value first."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: list[tuple[float, int, Request]] = []
        self._seq = itertools.count()

    def request(self, priority: float = 0.0) -> Request:  # type: ignore[override]
        req = Request(self, priority)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            heapq.heappush(self._heap, (priority, next(self._seq), req))
        return req

    def release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            self._heap = [entry for entry in self._heap if entry[2] is not request]
            heapq.heapify(self._heap)

    def _grant_next(self) -> None:
        while self._heap and len(self.users) < self.capacity:
            _prio, _seq, nxt = heapq.heappop(self._heap)
            self.users.append(nxt)
            nxt.succeed()

    @property
    def queue_length(self) -> int:
        return len(self._heap)


class Store:
    """FIFO item queue with optional capacity bound.

    ``put(item)`` and ``get()`` both return events to ``yield`` on.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        evt = Event(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            evt.succeed()
            self._serve_getters()
        else:
            self._putters.append((evt, item))
        return evt

    def get(self) -> Event:
        evt = Event(self.env)
        if self.items:
            evt.succeed(self.items.popleft())
            self._serve_putters()
        else:
            self._getters.append(evt)
        return evt

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            self._getters.popleft().succeed(self.items.popleft())

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            evt, item = self._putters.popleft()
            self.items.append(item)
            evt.succeed()
            self._serve_getters()


class Container:
    """Continuous quantity with blocking put/get (e.g. buffer bytes)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("container init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError("container put amount must be positive")
        evt = Event(self.env)
        self._putters.append((evt, amount))
        self._settle()
        return evt

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError("container get amount must be positive")
        evt = Event(self.env)
        self._getters.append((evt, amount))
        self._settle()
        return evt

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                evt, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.popleft()
                    evt.succeed()
                    progressed = True
            if self._getters:
                evt, amount = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.popleft()
                    evt.succeed()
                    progressed = True
