"""Statistics collection for simulation runs.

:class:`Tally` accumulates scalar observations (request latencies, queue
waits) without storing every sample; :class:`TimeWeighted` tracks a
piecewise-constant level (queue length, utilization) integrated over
simulated time; :class:`Trace` keeps raw (time, value) samples for
debugging and plotting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .core import Environment

__all__ = ["Tally", "TimeWeighted", "Trace"]


class Tally:
    """Streaming count/mean/variance/min/max of scalar observations."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0 if self.count == 1 else math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tally({self.name!r}, n={self.count}, mean={self.mean:.6g}, "
            f"min={self.minimum:.6g}, max={self.maximum:.6g})"
        )


class TimeWeighted:
    """Time-integral of a piecewise-constant level (e.g. queue length)."""

    def __init__(self, env: Environment, initial: float = 0.0, name: str = "") -> None:
        self.env = env
        self.name = name
        self._level = initial
        self._last_change = env.now
        self._area = 0.0
        self._start = env.now
        self.maximum = initial

    @property
    def level(self) -> float:
        return self._level

    def set(self, level: float) -> None:
        now = self.env.now
        self._area += self._level * (now - self._last_change)
        self._level = level
        self._last_change = now
        self.maximum = max(self.maximum, level)

    def add(self, delta: float) -> None:
        self.set(self._level + delta)

    def time_average(self) -> float:
        elapsed = self.env.now - self._start
        if elapsed <= 0:
            return self._level
        area = self._area + self._level * (self.env.now - self._last_change)
        return area / elapsed


@dataclass
class Trace:
    """Raw (time, value) sample log."""

    name: str = ""
    samples: list[tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def values(self) -> list[float]:
        return [v for _t, v in self.samples]

    def times(self) -> list[float]:
        return [t for t, _v in self.samples]
