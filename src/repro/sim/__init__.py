"""Discrete-event simulation kernel (mini-SimPy).

Public surface::

    from repro.sim import Environment, Resource, Store

    env = Environment()
    env.process(my_generator(env))
    env.run()
"""

from .core import AllOf, AnyOf, Environment, Event, Interrupt, Process, Timeout
from .monitor import Tally, TimeWeighted, Trace
from .resources import Container, PriorityResource, Request, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "PriorityResource",
    "Request",
    "Store",
    "Container",
    "Tally",
    "TimeWeighted",
    "Trace",
]
