"""The MPI-IO-style file object over DPFS.

Emulates the MPI-2 I/O interface for a fixed number of logical ranks in
one process: per-rank file views, independent ``read_at``/``write_at``
(with optional data sieving), and collective
``read_at_all``/``write_at_all`` using two-phase I/O.

    mf = MPIFile.open(fs, "/data", "w", nprocs=4,
                      hint=Hint.linear(file_size=N))
    mf.set_view(rank, FileView(displacement=0, filetype=Vector(...)))
    mf.write_at(rank, 0, payload)            # independent
    mf.write_at_all(offsets, payloads)       # collective, two-phase
"""

from __future__ import annotations

from ..core.filesystem import DPFS
from ..core.handle import FileHandle
from ..core.hints import Hint
from ..errors import BadFileHandle, DPFSError
from .collective import (
    SieveConfig,
    sieved_read,
    sieved_write,
    two_phase_read,
    two_phase_write,
)
from .views import FileView, view_extents

__all__ = ["MPIFile"]


class MPIFile:
    """An open MPI-IO file: one shared DPFS handle + per-rank views."""

    def __init__(
        self,
        handle: FileHandle,
        nprocs: int,
        sieve: SieveConfig | None = None,
    ) -> None:
        if nprocs < 1:
            raise DPFSError("nprocs must be >= 1")
        self.handle = handle
        self.nprocs = nprocs
        self.views = [FileView() for _ in range(nprocs)]
        self.sieve = sieve or SieveConfig()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def open(
        cls,
        fs: DPFS,
        path: str,
        mode: str = "r",
        *,
        nprocs: int = 1,
        hint: Hint | None = None,
        sieve: SieveConfig | None = None,
    ) -> "MPIFile":
        handle = fs.open(path, mode, hint=hint)
        return cls(handle, nprocs, sieve)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.handle.close()

    def __enter__(self) -> "MPIFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check(self, rank: int) -> None:
        if self._closed:
            raise BadFileHandle("MPI file is closed")
        if not 0 <= rank < self.nprocs:
            raise DPFSError(f"rank {rank} outside [0, {self.nprocs})")

    # -- views ----------------------------------------------------------------
    def set_view(self, rank: int, view: FileView) -> None:
        """MPI_File_set_view for one logical rank."""
        self._check(rank)
        self.views[rank] = view

    def view_of(self, rank: int) -> FileView:
        self._check(rank)
        return self.views[rank]

    # -- independent I/O ----------------------------------------------------------
    def read_at(self, rank: int, offset: int, nbytes: int, *, sieving: bool = True) -> bytes:
        """Independent read of ``nbytes`` at ``offset`` (etypes) in the
        rank's view; data sieving kicks in for hole-y typemaps."""
        self._check(rank)
        extents = view_extents(self.views[rank], offset, nbytes)
        if sieving:
            return sieved_read(self.handle, extents, self.sieve)
        return self.handle.read_extents(extents)

    def write_at(self, rank: int, offset: int, data: bytes, *, sieving: bool = True) -> int:
        """Independent write at ``offset`` (etypes) in the rank's view."""
        self._check(rank)
        extents = view_extents(self.views[rank], offset, len(data))
        if sieving:
            return sieved_write(self.handle, extents, data, self.sieve)
        return self.handle.write_extents(extents, data)

    # -- collective I/O --------------------------------------------------------------
    def read_at_all(
        self,
        offsets: list[int],
        nbytes: list[int],
        *,
        n_aggregators: int | None = None,
    ) -> list[bytes]:
        """Collective read: every rank passes its (offset, byte count);
        returns each rank's packed data (two-phase I/O)."""
        if len(offsets) != self.nprocs or len(nbytes) != self.nprocs:
            raise DPFSError("collective call needs one entry per rank")
        rank_extents = [
            view_extents(self.views[r], offsets[r], nbytes[r])
            for r in range(self.nprocs)
        ]
        return two_phase_read(self.handle, rank_extents, n_aggregators)

    def write_at_all(
        self,
        offsets: list[int],
        buffers: list[bytes],
        *,
        n_aggregators: int | None = None,
    ) -> int:
        """Collective write (two-phase): interleaved per-rank typemaps
        become a few large contiguous accesses."""
        if len(offsets) != self.nprocs or len(buffers) != self.nprocs:
            raise DPFSError("collective call needs one entry per rank")
        rank_extents = [
            view_extents(self.views[r], offsets[r], len(buffers[r]))
            for r in range(self.nprocs)
        ]
        return two_phase_write(self.handle, rank_extents, buffers, n_aggregators)

    # -- stats -----------------------------------------------------------------
    @property
    def stats(self):
        """The underlying DPFS handle's request/byte counters."""
        return self.handle.stats
