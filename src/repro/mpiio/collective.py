"""Two-phase collective I/O and data sieving (Thakur/Gropp/Lusk, the
paper's refs [23] and [25], implemented over DPFS as its §10 future
work proposes).

*Data sieving* (independent, non-contiguous): instead of one request
per hole-separated piece, read the single covering extent and extract
the pieces in memory — profitable while the useful fraction is above a
threshold and the covering window fits the sieve buffer.  Sieved writes
do read-modify-write on the covering window.

*Two-phase collective I/O*: all processes' requests are combined, the
aggregate byte range is split into one contiguous *file domain* per
aggregator, data is exchanged so each aggregator holds its domain
(phase 1, in-memory here), and each aggregator issues one large
contiguous file access (phase 2).  The win on DPFS is the same as in
ROMIO: a flurry of interleaved small accesses becomes ``n_aggregators``
big sequential ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.handle import FileHandle
from ..errors import DPFSError
from ..util import Extent, coalesce_extents, total_extent_bytes

__all__ = [
    "SieveConfig",
    "sieved_read",
    "sieved_write",
    "two_phase_read",
    "two_phase_write",
]


@dataclass(frozen=True)
class SieveConfig:
    """When is sieving worth it?"""

    buffer_bytes: int = 4 * 1024 * 1024   # max covering window
    min_useful_fraction: float = 0.25     # below this, holes dominate

    def should_sieve(self, extents: list[Extent]) -> bool:
        if len(extents) < 2:
            return False
        lo = min(off for off, _ln in extents)
        hi = max(off + ln for off, ln in extents)
        span = hi - lo
        if span > self.buffer_bytes:
            return False
        useful = total_extent_bytes(coalesce_extents(extents))
        return useful / span >= self.min_useful_fraction


def sieved_read(
    handle: FileHandle, extents: list[Extent], config: SieveConfig | None = None
) -> bytes:
    """Read ``extents`` (in list order), sieving through one covering
    window when profitable."""
    config = config or SieveConfig()
    extents = [e for e in extents if e[1] > 0]
    if not extents:
        return b""
    if not config.should_sieve(extents):
        return handle.read_extents(extents)
    lo = min(off for off, _ln in extents)
    hi = max(off + ln for off, ln in extents)
    window = handle.read(lo, hi - lo)
    out = bytearray()
    for off, ln in extents:
        out += window[off - lo : off - lo + ln]
    return bytes(out)


def sieved_write(
    handle: FileHandle,
    extents: list[Extent],
    data: bytes,
    config: SieveConfig | None = None,
) -> int:
    """Write ``data`` across ``extents``, via read-modify-write of the
    covering window when profitable."""
    config = config or SieveConfig()
    extents = [e for e in extents if e[1] > 0]
    if not extents:
        return 0
    if total_extent_bytes(extents) != len(data):
        raise DPFSError(
            f"extents cover {total_extent_bytes(extents)} bytes, "
            f"payload is {len(data)}"
        )
    if not config.should_sieve(extents):
        return handle.write_extents(extents, data)
    lo = min(off for off, _ln in extents)
    hi = max(off + ln for off, ln in extents)
    window = bytearray(handle.read(lo, hi - lo))
    if len(window) < hi - lo:                 # writing past EOF
        window.extend(b"\x00" * (hi - lo - len(window)))
    pos = 0
    for off, ln in extents:
        window[off - lo : off - lo + ln] = data[pos : pos + ln]
        pos += ln
    handle.write(lo, bytes(window))
    return len(data)


# ---------------------------------------------------------------------------
# two-phase collective I/O
# ---------------------------------------------------------------------------

def _file_domains(lo: int, hi: int, n_aggregators: int) -> list[Extent]:
    """Split [lo, hi) into contiguous, nearly equal file domains."""
    span = hi - lo
    n = max(1, min(n_aggregators, span))
    base = span // n
    extra = span % n
    domains: list[Extent] = []
    pos = lo
    for i in range(n):
        size = base + (1 if i < extra else 0)
        if size:
            domains.append((pos, size))
            pos += size
    return domains


def two_phase_write(
    handle: FileHandle,
    rank_extents: list[list[Extent]],
    rank_data: list[bytes],
    n_aggregators: int | None = None,
) -> int:
    """Collective write: every rank contributes (extents, packed data).

    Returns total bytes written.  Overlapping writes from different
    ranks are resolved in rank order (higher rank wins), matching the
    determinism MPI requires of conforming programs.
    """
    if len(rank_extents) != len(rank_data):
        raise DPFSError("rank_extents/rank_data length mismatch")
    pieces: list[tuple[int, int, bytes]] = []  # (file_off, len, data)
    for extents, data in zip(rank_extents, rank_data):
        expected = total_extent_bytes(extents)
        if expected != len(data):
            raise DPFSError(
                f"rank payload is {len(data)} bytes, extents cover {expected}"
            )
        pos = 0
        for off, ln in extents:
            if ln > 0:
                pieces.append((off, ln, data[pos : pos + ln]))
            pos += ln
    if not pieces:
        return 0

    lo = min(off for off, _ln, _d in pieces)
    hi = max(off + ln for off, ln, _d in pieces)
    aggregators = n_aggregators or handle.brick_map.n_servers
    total = 0
    for dom_off, dom_len in _file_domains(lo, hi, aggregators):
        dom_hi = dom_off + dom_len
        # phase 1: gather this domain's bytes from every rank (rank order)
        buffer = bytearray(dom_len)
        mask = bytearray(dom_len)
        for off, ln, data in pieces:
            a = max(off, dom_off)
            b = min(off + ln, dom_hi)
            if a >= b:
                continue
            buffer[a - dom_off : b - dom_off] = data[a - off : b - off]
            for i in range(a - dom_off, b - dom_off):
                mask[i] = 1
        # phase 2: the aggregator writes its (coalesced) touched ranges
        runs: list[Extent] = []
        i = 0
        while i < dom_len:
            if mask[i]:
                j = i
                while j < dom_len and mask[j]:
                    j += 1
                runs.append((dom_off + i, j - i))
                i = j
            else:
                i += 1
        if runs:
            payload = b"".join(
                bytes(buffer[off - dom_off : off - dom_off + ln])
                for off, ln in runs
            )
            handle.write_extents(runs, payload)
            total += len(payload)
    return total


def two_phase_read(
    handle: FileHandle,
    rank_extents: list[list[Extent]],
    n_aggregators: int | None = None,
) -> list[bytes]:
    """Collective read: returns each rank's packed bytes.

    Aggregators read whole contiguous file domains (one large access
    each); phase 2 redistributes to the requesting ranks in memory.
    """
    all_extents = [e for extents in rank_extents for e in extents if e[1] > 0]
    if not all_extents:
        return [b"" for _ in rank_extents]
    lo = min(off for off, _ln in all_extents)
    hi = max(off + ln for off, ln in all_extents)
    aggregators = n_aggregators or handle.brick_map.n_servers

    window = bytearray(hi - lo)
    for dom_off, dom_len in _file_domains(lo, hi, aggregators):
        chunk = handle.read(dom_off, dom_len)
        window[dom_off - lo : dom_off - lo + len(chunk)] = chunk

    results: list[bytes] = []
    for extents in rank_extents:
        out = bytearray()
        for off, ln in extents:
            out += window[off - lo : off - lo + ln]
        results.append(bytes(out))
    return results
