"""MPI-IO file views.

A view = (displacement, etype, filetype): the file, as seen by one
process, is the filetype *tiled* end to end starting at the
displacement; only the typemap bytes are visible, holes belong to other
processes.  Offsets in data operations count etypes within that visible
stream (MPI-2 semantics).

:func:`view_extents` converts (view, offset-in-etypes, byte-count) into
absolute file extents — the workhorse used by both independent and
collective operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datatypes import BYTE, Contiguous, Datatype
from ..errors import DatatypeError
from ..util import Extent

__all__ = ["FileView", "view_extents"]


@dataclass(frozen=True)
class FileView:
    """One process's window onto the file."""

    displacement: int = 0
    etype: Datatype = BYTE
    filetype: Datatype = BYTE

    def __post_init__(self) -> None:
        if self.displacement < 0:
            raise DatatypeError("negative view displacement")
        if self.etype.size <= 0:
            raise DatatypeError("etype must have positive size")
        if self.filetype.size % self.etype.size:
            raise DatatypeError(
                f"filetype size {self.filetype.size} is not a whole number "
                f"of etypes ({self.etype.size} B)"
            )

    @property
    def etypes_per_tile(self) -> int:
        return self.filetype.size // self.etype.size

    def tile_extents(self, tile_index: int) -> list[Extent]:
        """Absolute byte extents of one filetype repetition."""
        base = self.displacement + tile_index * self.filetype.extent
        return self.filetype.flattened(base)


def view_extents(view: FileView, offset_etypes: int, nbytes: int) -> list[Extent]:
    """Absolute file extents for ``nbytes`` starting at ``offset_etypes``
    within the view's visible stream, in stream order (uncoalesced)."""
    if offset_etypes < 0 or nbytes < 0:
        raise DatatypeError("negative offset/length")
    if nbytes == 0:
        return []
    if view.filetype.size == 0:
        raise DatatypeError("view filetype selects no bytes")
    esize = view.etype.size
    skip_bytes = offset_etypes * esize

    out: list[Extent] = []
    tile = skip_bytes // view.filetype.size
    within = skip_bytes % view.filetype.size
    remaining = nbytes
    while remaining > 0:
        for ext_off, ext_len in view.tile_extents(tile):
            if within >= ext_len:
                within -= ext_len
                continue
            start = ext_off + within
            take = min(ext_len - within, remaining)
            within = 0
            if out and out[-1][0] + out[-1][1] == start:
                out[-1] = (out[-1][0], out[-1][1] + take)
            else:
                out.append((start, take))
            remaining -= take
            if remaining == 0:
                break
        tile += 1
    return out


def contiguous_view(nbytes_visible: int | None = None) -> FileView:
    """The default MPI view: the whole file as a byte stream."""
    if nbytes_visible is None:
        return FileView()
    return FileView(filetype=Contiguous(nbytes_visible))
