"""MPI-IO-style interface over DPFS (§10 future work: "use DPFS as a low
level system to service a high level interface such as MPI-IO").

Features: per-rank file views over derived datatypes, independent I/O
with data sieving, and two-phase collective I/O — the ROMIO techniques
of the paper's refs [23] and [25]."""

from .collective import (
    SieveConfig,
    sieved_read,
    sieved_write,
    two_phase_read,
    two_phase_write,
)
from .file import MPIFile
from .views import FileView, view_extents

__all__ = [
    "MPIFile",
    "FileView",
    "view_extents",
    "SieveConfig",
    "sieved_read",
    "sieved_write",
    "two_phase_read",
    "two_phase_write",
]
