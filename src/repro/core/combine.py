"""Request combination and scheduling (§4.2).

Without combination, a processor issues one request per brick slice —
the paper's "general approach", which floods servers with small
requests *and* convoys all processors onto the same device (brick 0, 8,
16, 24 of Fig. 3 live on server 0, so every processor starts there).

With combination, all of a processor's slices that live on one server
are folded into one request carrying a subfile extent list, and the
per-processor request sequence is *staggered*: processor ``p`` starts
with server ``(p mod S)`` so the processors fan out across devices —
exactly the schedule the paper walks through (processor 0 starts at
subfile-0, processor 1 at subfile-1, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..errors import DPFSError
from ..util import Extent, coalesce_extents, total_extent_bytes
from .brick import BrickMap, BrickSlice

__all__ = ["SlicePlacement", "ServerRequest", "plan_requests"]


@dataclass(frozen=True)
class SlicePlacement:
    """A brick slice resolved to its physical position on a server."""

    slice: BrickSlice
    server: int
    subfile_offset: int   # byte offset of the slice inside the subfile

    @property
    def extent(self) -> Extent:
        return (self.subfile_offset, self.slice.length)


@dataclass
class ServerRequest:
    """One wire request to one server.

    ``placements`` keeps the payload mapping (buffer offsets) so the
    client can gather/scatter user data; ``extents`` is the physical
    subfile extent list the server works through.

    ``name`` overrides the subfile the request targets (replica copies
    live in a separate subfile); ``None`` means the file's primary
    subfile.  ``copy`` tags which copy (0 = primary) the request serves
    so write fan-out can account per-copy outcomes.
    """

    server: int
    placements: list[SlicePlacement] = field(default_factory=list)
    name: str | None = None
    copy: int = 0

    @property
    def extents(self) -> list[Extent]:
        return [p.extent for p in self.placements]

    @property
    def coalesced_extents(self) -> list[Extent]:
        """Physically merged extents (what the disk actually sees)."""
        return coalesce_extents(self.extents)

    @property
    def payload_bytes(self) -> int:
        return total_extent_bytes(self.extents)

    @property
    def brick_ids(self) -> list[int]:
        return [p.slice.brick_id for p in self.placements]


def _place(slices: Sequence[BrickSlice], brick_map: BrickMap) -> list[SlicePlacement]:
    placed: list[SlicePlacement] = []
    for s in slices:
        loc = brick_map.location(s.brick_id)
        if s.offset + s.length > loc.size:
            raise DPFSError(
                f"slice {s} exceeds brick size {loc.size} of brick {s.brick_id}"
            )
        placed.append(
            SlicePlacement(s, loc.server, loc.local_offset + s.offset)
        )
    return placed


def plan_requests(
    slices: Sequence[BrickSlice],
    brick_map: BrickMap,
    *,
    combine: bool,
    rank: int = 0,
    stagger: bool = True,
) -> list[ServerRequest]:
    """Turn brick slices into an *ordered* wire-request plan.

    With ``combine=False`` (general approach): one request per slice, in
    payload order.  With ``combine=True``: one request per touched
    server; request order is staggered by ``rank`` when ``stagger``.
    """
    placed = _place(slices, brick_map)
    if not combine:
        return [ServerRequest(p.server, [p]) for p in placed]

    by_server: dict[int, ServerRequest] = {}
    for p in placed:
        req = by_server.get(p.server)
        if req is None:
            req = ServerRequest(p.server)
            by_server[p.server] = req
        req.placements.append(p)

    servers = sorted(by_server)
    if stagger and servers:
        n = brick_map.n_servers
        # Rotate so this rank starts at server (rank mod S), or the next
        # touched server after it.
        start = rank % n
        servers = sorted(servers, key=lambda s: (s - start) % n)
    return [by_server[s] for s in servers]
