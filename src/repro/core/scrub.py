"""At-rest checksum scrubbing and replica repair.

Read-repair (:mod:`repro.core.handle`) only heals bricks that get
*read*; the scrubber is its offline twin — it walks every file, reads
every copy of every brick, and compares each copy's checksum against
the one stored in metadata.  The stored checksum arbitrates:

=====================  ====================================================
``checksum-mismatch``  a copy differs from the stored checksum while some
                       copy still matches (repair: rewrite the bad copy
                       from a matching one)
``stale-checksum``     every readable copy agrees but none matches the
                       stored checksum — the metadata record is the stale
                       party, e.g. a crash between data and metadata
                       updates (repair: store the agreed checksum)
``replica-divergence`` copies disagree and the stored checksum matches
                       none of them; with three or more copies a strict
                       majority wins (repair: rewrite the minority and
                       store the majority checksum), otherwise the brick
                       is reported unrepairable
``unreadable-copy``    a copy could not be read at all (repair: rewrite
                       from a verified copy, recreating the subfile)
``pending-intent``     the intent journal holds an unfinished multi-step
                       operation — data findings on that path may be
                       transient (report-only: ``dpfs recover`` or
                       ``dpfs fsck --repair`` resolve it)
=====================  ====================================================

Bricks whose stored checksum is ``None`` (never written, or created
before checksums existed) are not findings; ``repair=True`` silently
backfills their checksum when every copy agrees.

Repaired copies are lifted from the file system's quarantine set;
unrepairable bad copies are added to it so reads avoid them.

    report = scrub(fs)
    if not report.clean:
        scrub(fs, repair=True)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import DPFSError
from .brick import replica_subfile
from .checksum import checksum_fn

if TYPE_CHECKING:  # pragma: no cover
    from .filesystem import DPFS

__all__ = ["ScrubFinding", "ScrubReport", "scrub", "verify_file_copies"]


@dataclass(frozen=True)
class ScrubFinding:
    """One bad brick copy (or stale metadata checksum)."""

    kind: str
    path: str
    brick_id: int
    server: int          # -1 for metadata-side findings
    detail: str
    repaired: bool = False

    def __str__(self) -> str:
        mark = "FIXED" if self.repaired else "FOUND"
        where = f"server {self.server}" if self.server >= 0 else "metadata"
        return (
            f"[{mark}] {self.kind}: {self.path} brick {self.brick_id} "
            f"({where}) — {self.detail}"
        )


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    files_checked: int = 0
    bricks_checked: int = 0
    copies_checked: int = 0
    checksums_backfilled: int = 0
    findings: list[ScrubFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def unrepaired(self) -> list[ScrubFinding]:
        return [f for f in self.findings if not f.repaired]

    def by_kind(self, kind: str) -> list[ScrubFinding]:
        return [f for f in self.findings if f.kind == kind]

    def __str__(self) -> str:
        lines = [
            f"scrub: {self.files_checked} files, "
            f"{self.bricks_checked} bricks, "
            f"{self.copies_checked} copies, "
            f"{len(self.findings)} finding(s), "
            f"{self.checksums_backfilled} checksum(s) backfilled"
        ]
        lines += [str(f) for f in self.findings]
        return "\n".join(lines)


def scrub(fs: "DPFS", repair: bool = False) -> ScrubReport:
    """Verify every copy of every brick against stored checksums."""
    report = ScrubReport()
    c_bricks = fs.metrics.counter(
        "dpfs_scrub_bricks_total", "bricks verified by the scrubber"
    )
    c_findings = fs.metrics.counter(
        "dpfs_scrub_findings_total", "bad copies found by the scrubber"
    )
    # a crashed multi-step operation can make a path look corrupt
    # (half-renamed subfiles, missing replicas); surface the journal
    # state so the operator recovers before trusting data findings
    for intent in fs.intents.pending():
        report.findings.append(
            ScrubFinding(
                "pending-intent", intent.path, -1, -1,
                f"{intent.op} interrupted mid-flight; run `dpfs recover` "
                f"(or `dpfs fsck --repair`) first",
            )
        )
    for path in fs.meta.iter_files():
        report.files_checked += 1
        try:
            findings = verify_file_copies(fs, path, repair=repair, report=report)
        except DPFSError as exc:
            report.findings.append(
                ScrubFinding(
                    "bad-brick-map", path, -1, -1, str(exc)
                )
            )
            continue
        report.findings.extend(findings)
        c_findings.inc(len(findings))
    c_bricks.inc(report.bricks_checked)
    return report


def verify_file_copies(
    fs: "DPFS",
    path: str,
    *,
    repair: bool = False,
    report: ScrubReport | None = None,
) -> list[ScrubFinding]:
    """Checksum-verify (and optionally repair) all copies of one file.

    Shared by :func:`scrub` and :func:`repro.core.fsck.fsck` so both
    tools agree on what corruption means.  Raises on an unloadable brick
    map; the caller classifies that.
    """
    meta = fs.meta
    backend = fs.backend
    record, bmap = meta.load_file(path)
    rmap = (
        meta.load_replica_map(path, record) if record.replicas > 1 else None
    )
    try:
        crc = checksum_fn(record.crc_algo)
    except KeyError:
        return [
            ScrubFinding(
                "unknown-checksum-algorithm", path, -1, -1,
                f"stored checksums use unknown algorithm "
                f"{record.crc_algo!r}; cannot verify",
            )
        ]
    findings: list[ScrubFinding] = []
    new_crcs: dict[int, int | None] = {}
    rname = replica_subfile(path)
    for brick_id in range(len(bmap)):
        if report is not None:
            report.bricks_checked += 1
        loc = bmap.location(brick_id)
        copies = [(loc.server, path, loc.local_offset, loc.size)]
        if rmap is not None:
            copies += [
                (rl.server, rname, rl.local_offset, rl.size)
                for rl in rmap.locations(brick_id)
            ]
        datas: dict[tuple[int, str], bytes] = {}
        unreadable: list[tuple[int, str, int, int, str]] = []
        for server, name, off, size in copies:
            if report is not None:
                report.copies_checked += 1
            try:
                datas[(server, name)] = bytes(
                    backend.read_extents(server, name, [(off, size)])
                )
            except (DPFSError, OSError) as exc:
                unreadable.append((server, name, off, size, str(exc)))
        crcs = {k: crc(v, 0) for k, v in datas.items()}
        stored = (
            record.brick_crcs[brick_id]
            if brick_id < len(record.brick_crcs)
            else None
        )

        good_key = None
        if stored is not None:
            good_key = next(
                (k for k, v in crcs.items() if v == stored), None
            )
        if stored is not None and good_key is not None:
            # stored checksum arbitrates: every other readable copy must
            # match it, unreadable copies are rewritten from the good one
            for key, value in crcs.items():
                if value == stored:
                    continue
                server, name = key
                off, size = _copy_extent(copies, key)
                repaired = repair and _rewrite_copy(
                    fs, path, brick_id, server, name, off, size,
                    datas[good_key],
                )
                if not repaired:
                    fs.quarantine.add((path, brick_id, server))
                findings.append(
                    ScrubFinding(
                        "checksum-mismatch", path, brick_id, server,
                        f"copy in {name!r} does not match stored "
                        f"{record.crc_algo} checksum",
                        repaired,
                    )
                )
            for server, name, off, size, why in unreadable:
                repaired = repair and _rewrite_copy(
                    fs, path, brick_id, server, name, off, size,
                    datas[good_key], create=True,
                )
                if not repaired:
                    fs.quarantine.add((path, brick_id, server))
                findings.append(
                    ScrubFinding(
                        "unreadable-copy", path, brick_id, server,
                        f"copy in {name!r} unreadable: {why}", repaired,
                    )
                )
            continue

        # no arbiter (stored is None or matches nothing)
        if not crcs:
            continue  # nothing readable; existence is fsck's department
        agreed = len(set(crcs.values())) == 1
        if agreed:
            value = next(iter(crcs.values()))
            if stored is None:
                # silent backfill: legacy/unwritten bricks are not findings
                if repair:
                    new_crcs[brick_id] = value
                    if report is not None:
                        report.checksums_backfilled += 1
            else:
                repaired = False
                if repair:
                    new_crcs[brick_id] = value
                    repaired = True
                findings.append(
                    ScrubFinding(
                        "stale-checksum", path, brick_id, -1,
                        f"all {len(crcs)} copies agree but none matches the "
                        f"stored checksum (metadata is stale)",
                        repaired,
                    )
                )
            continue

        # copies disagree with no arbiter: strict majority wins
        counts = Counter(crcs.values())
        value, votes = counts.most_common(1)[0]
        if votes > len(crcs) / 2:
            majority_key = next(k for k, v in crcs.items() if v == value)
            repaired_all = True
            for key, v in crcs.items():
                if v == value:
                    continue
                server, name = key
                off, size = _copy_extent(copies, key)
                ok = repair and _rewrite_copy(
                    fs, path, brick_id, server, name, off, size,
                    datas[majority_key],
                )
                if not ok:
                    fs.quarantine.add((path, brick_id, server))
                    repaired_all = False
                findings.append(
                    ScrubFinding(
                        "replica-divergence", path, brick_id, server,
                        f"copy in {name!r} disagrees with the majority "
                        f"({votes}/{len(crcs)} copies)",
                        ok,
                    )
                )
            if repair and repaired_all:
                new_crcs[brick_id] = value
        else:
            findings.append(
                ScrubFinding(
                    "replica-divergence", path, brick_id, -1,
                    f"{len(crcs)} copies disagree with no majority and no "
                    f"stored checksum to arbitrate; unrepairable",
                )
            )
    if repair and new_crcs:
        meta.update_brick_crcs(path, new_crcs)
    return findings


def _copy_extent(
    copies: list[tuple[int, str, int, int]], key: tuple[int, str]
) -> tuple[int, int]:
    for server, name, off, size in copies:
        if (server, name) == key:
            return off, size
    raise KeyError(key)


def _rewrite_copy(
    fs: "DPFS",
    path: str,
    brick_id: int,
    server: int,
    name: str,
    off: int,
    size: int,
    good: bytes,
    *,
    create: bool = False,
) -> bool:
    """Overwrite one copy with verified bytes; True on success."""
    try:
        if create and not fs.backend.subfile_exists(server, name):
            fs.backend.create_subfile(server, name)
        fs.backend.write_extents(server, name, [(off, size)], good)
    except (DPFSError, OSError):
        return False
    fs.quarantine.discard((path, brick_id, server))
    fs._note_repair()
    if fs.cache is not None:
        fs.cache.invalidate_file(path)
    return True
