"""Parallel per-server I/O dispatch (§4.2, made concurrent).

Request combination folds a processor's bricks into one request per
server and staggers each processor's starting server — but the paper's
speedups (Figs. 11–14) rest on the *independent storage devices then
working simultaneously*.  This module supplies that missing half on the
client: a shared worker pool that fans a wire plan's per-server
requests out concurrently, with a bounded retry-with-exponential-
backoff policy for transient failures (ServerBusy admission rejections,
injected transient faults) and a per-request completion deadline.

Transience is attribute-based: any exception whose ``transient``
attribute is truthy (:func:`is_transient`) is retried up to
``DispatchPolicy.retries`` times; every other error propagates
unchanged on first occurrence.  When a transient error outlives the
budget it is wrapped in :class:`repro.errors.RetryExhausted` naming the
failing server, with the original exception chained.

Invariants:

- results come back in plan order regardless of completion order, so
  staggered schedules keep their meaning;
- a dispatch returns (or raises) only after every submitted request has
  finished — no worker is still scattering into a caller's buffer when
  control returns.  The single exception is the batch deadline: without
  ``collect_errors`` a :class:`DispatchTimeout` is raised, stragglers
  are abandoned and the caller must discard the target buffer; with
  ``collect_errors`` the timed-out slots *hold* a
  :class:`DispatchTimeout` and the batch still accounts for every slot;
- with ``max_workers=1`` requests run inline on the calling thread, in
  plan order — byte-identical semantics to sequential dispatch;
- when the first (permanent) error is raised, every *successful*
  request has already been reported through ``on_result``, so partial-
  progress accounting survives a failure;
- a dispatch issued *from* a pool worker runs inline (never re-enters
  the pool), so nested fan-out cannot deadlock on pool capacity;
- the dispatcher never retries a non-transient error: retrying a
  failed *write* blindly could double-apply side effects, so only
  errors the raiser explicitly marked safe-to-retry are replayed.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

from ..errors import ConfigError, DispatchTimeout, RetryExhausted
from ..obs.registry import MetricsRegistry
from ..obs.trace import current_span, span, use_span

__all__ = [
    "DispatchPolicy",
    "DispatchResult",
    "DispatcherStats",
    "Dispatcher",
    "is_transient",
]

T = TypeVar("T")

#: thread-name prefix of pool workers (the nested-dispatch guard keys
#: off it)
_WORKER_PREFIX = "dpfs-io"


def is_transient(exc: BaseException) -> bool:
    """True when ``exc`` is marked safe to retry (``.transient``)."""
    return bool(getattr(exc, "transient", False))


@dataclass(frozen=True)
class DispatchPolicy:
    """Tuning knobs of one dispatcher.

    ``timeout_s`` is the completion deadline the waiter enforces per
    request (pooled mode only — an inline request cannot be pre-empted
    from its own thread).  ``retries`` counts *re*-attempts: a request
    is tried at most ``retries + 1`` times.
    """

    max_workers: int = 4
    timeout_s: float | None = None
    retries: int = 3
    backoff_s: float = 0.002
    backoff_cap_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive")


class DispatchResult:
    """Per-request completion record handed to ``on_result``.

    ``latency_s`` is total wall time from first attempt to completion
    (failed attempts and backoff sleeps included); ``service_s`` is the
    duration of the *successful* attempt alone and ``backoff_s`` the
    total time slept between attempts, so
    ``latency_s >= service_s + backoff_s`` always holds and the
    difference is time burnt in failed attempts.  ``queue_wait_s`` is
    how long the request sat between submission and its first attempt.

    A plain slotted class, not a dataclass: one record is built per
    request on the dispatch hot path, and a frozen dataclass's
    ``object.__setattr__``-per-field construction costs ~3x as much.
    """

    __slots__ = (
        "value",
        "server",
        "latency_s",
        "retries",
        "queue_wait_s",
        "service_s",
        "backoff_s",
    )

    def __init__(
        self,
        value: Any,
        server: int,
        latency_s: float,
        retries: int,
        queue_wait_s: float = 0.0,
        service_s: float = 0.0,
        backoff_s: float = 0.0,
    ) -> None:
        self.value = value
        self.server = server
        self.latency_s = latency_s   # wall time incl. retries and backoff
        self.retries = retries       # re-attempts needed (0 = first try)
        self.queue_wait_s = queue_wait_s
        self.service_s = service_s
        self.backoff_s = backoff_s

    def __repr__(self) -> str:
        return (
            f"DispatchResult(server={self.server}, "
            f"latency_s={self.latency_s:.6f}, retries={self.retries}, "
            f"queue_wait_s={self.queue_wait_s:.6f}, "
            f"service_s={self.service_s:.6f}, backoff_s={self.backoff_s:.6f})"
        )


class DispatcherStats:
    """Aggregate counters across every dispatch through one pool.

    Since the observability refactor this is a *view* over the shared
    :class:`~repro.obs.registry.MetricsRegistry` — the registry is the
    source of truth and these properties keep the historical attribute
    API (``stats.batches`` etc.) working on top of it.  Unlike the old
    ad-hoc counters, ``retries`` here includes re-attempts of requests
    that ultimately *failed* (``RetryExhausted``), which per-handle
    ``IOStats`` — success-only by construction — never sees.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._batches = registry.counter(
            "dpfs_dispatch_batches_total", "dispatch batches issued"
        )
        self._inline = registry.counter(
            "dpfs_dispatch_inline_batches_total", "batches run without the pool"
        )
        self._requests = registry.counter(
            "dpfs_dispatch_requests_total", "per-server requests dispatched"
        )
        self._retries = registry.counter(
            "dpfs_dispatch_retries_total", "transient re-attempts (incl. failed requests)"
        )
        self._failures = registry.counter(
            "dpfs_dispatch_failures_total", "requests that raised permanently"
        )
        self._timeouts = registry.counter(
            "dpfs_dispatch_timeouts_total", "dispatches abandoned at the deadline"
        )

    @property
    def batches(self) -> int:
        return int(self._batches.total())

    @property
    def inline_batches(self) -> int:
        return int(self._inline.total())

    @property
    def requests(self) -> int:
        return int(self._requests.total())

    @property
    def retries(self) -> int:
        return int(self._retries.total())

    @property
    def failures(self) -> int:
        return int(self._failures.total())

    @property
    def timeouts(self) -> int:
        return int(self._timeouts.total())

    def per_server_retries(self) -> dict[int, int]:
        """Retry counts by server id (every request, failed ones too)."""
        return {
            int(k): int(v) for k, v in self._retries.by_label("server").items()
        }


class Dispatcher:
    """A shared scheduler fanning per-server requests over a thread pool.

    One dispatcher is owned by one :class:`repro.core.filesystem.DPFS`
    instance and shared by every handle it opens; the pool is created
    lazily on the first dispatch that can use it and torn down by
    :meth:`shutdown` (``DPFS.close``).
    """

    def __init__(
        self,
        policy: DispatchPolicy | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy or DispatchPolicy()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = DispatcherStats(self.registry)
        self._h_queue = self.registry.histogram(
            "dpfs_dispatch_queue_wait_seconds",
            "time between submission and first attempt, by server",
        )
        self._h_service = self.registry.histogram(
            "dpfs_dispatch_service_seconds",
            "duration of the successful attempt (no queueing, no backoff)",
        )
        self._c_backoff = self.registry.counter(
            "dpfs_dispatch_backoff_seconds_total",
            "total time slept between transient re-attempts",
        )
        #: per-server bound-series caches (hot path: no label-key churn)
        self._by_server: dict[int, tuple] = {}
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    def _server_series(self, server: int) -> tuple:
        """(requests, retries, service, queue-wait) bound to one server.

        Bound series hold per-series locks, so workers fanning out to
        different servers never contend on metric-wide locks.
        """
        series = self._by_server.get(server)
        if series is None:
            series = (
                self.stats._requests.labels(server=server),
                self.stats._retries.labels(server=server),
                self._h_service.labels(server=server),
                self._h_queue.labels(server=server),
            )
            with self._lock:
                self._by_server.setdefault(server, series)
                series = self._by_server[server]
        return series

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        """Drain and release the worker pool (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def _ensure_pool(self) -> ThreadPoolExecutor | None:
        with self._lock:
            if self._closed:
                return None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.policy.max_workers,
                    thread_name_prefix=_WORKER_PREFIX,
                )
            return self._pool

    @staticmethod
    def _in_worker() -> bool:
        return threading.current_thread().name.startswith(_WORKER_PREFIX)

    # -- execution ---------------------------------------------------------
    def run(
        self,
        items: Sequence[T],
        fn: Callable[[T], Any],
        *,
        server_of: Callable[[T], int] | None = None,
        on_result: Callable[[T, DispatchResult], None] | None = None,
        collect_errors: bool = False,
    ) -> list[Any]:
        """Execute ``fn(item)`` for every item; return values in item order.

        ``server_of`` names the server a request targets (for error
        messages and stats); it defaults to ``item.server``.
        ``on_result`` is invoked once per *successful* request — from
        the worker thread that ran it — as soon as it completes.

        ``collect_errors=True`` changes failure semantics: instead of
        raising the first permanent error (leaving sibling requests'
        outcomes unknown to the caller), every request runs to
        completion and a failed slot holds its exception *instance* in
        the returned list.  Callers use this for all-servers mutations
        (remove/rename fan-out) that must never stop half-way, then
        aggregate the failures themselves.  Only :class:`Exception`
        subclasses are collected — a :class:`BaseException` (simulated
        crash, KeyboardInterrupt) still propagates immediately.  A
        request that misses the batch deadline is collected too (its
        slot holds a :class:`DispatchTimeout`) rather than aborting the
        batch; the underlying request may still finish in the
        background, which is safe for these idempotent journalled
        mutations because a recovery sweep converges the survivors.
        """
        if not items:
            return []
        if server_of is None:
            server_of = lambda item: getattr(item, "server", -1)  # noqa: E731

        self.stats._batches.inc()

        pool = None
        if (
            self.policy.max_workers > 1
            and len(items) > 1
            and not self._in_worker()
        ):
            pool = self._ensure_pool()
        if pool is None:
            self.stats._inline.inc()
            with span("dispatch.batch", requests=len(items), mode="inline"):
                parent = current_span()
                now = time.perf_counter
                if not collect_errors:
                    return [
                        self._attempt(item, fn, server_of(item), on_result, now(), parent)
                        for item in items
                    ]
                collected: list[Any] = []
                for item in items:
                    try:
                        collected.append(
                            self._attempt(
                                item, fn, server_of(item), on_result, now(), parent
                            )
                        )
                    except Exception as exc:  # noqa: BLE001 - returned to caller
                        collected.append(exc)
                return collected

        with span("dispatch.batch", requests=len(items), mode="pool"):
            parent = current_span()
            submitted = time.perf_counter()
            # one deadline for the whole batch, fixed at submission: a
            # batch of N stuck requests must fail after timeout_s, not
            # after N × timeout_s of sequential per-future waits
            deadline = (
                None
                if self.policy.timeout_s is None
                else submitted + self.policy.timeout_s
            )
            futures = [
                pool.submit(
                    self._attempt, item, fn, server_of(item), on_result,
                    submitted, parent,
                )
                for item in items
            ]
            results: list[Any] = [None] * len(items)
            first_error: BaseException | None = None
            for i, future in enumerate(futures):
                try:
                    if deadline is None:
                        results[i] = future.result()
                    else:
                        results[i] = future.result(
                            timeout=max(0.0, deadline - time.perf_counter())
                        )
                except _FutureTimeout:
                    self.stats._timeouts.inc()
                    timeout = DispatchTimeout(
                        f"server {server_of(items[i])}: request still running "
                        f"at the batch deadline ({self.policy.timeout_s}s "
                        f"from submission)"
                    )
                    if collect_errors:
                        # the contract is every-slot-accounted-for: the
                        # timed-out slot holds its exception and the
                        # remaining futures are still collected (each
                        # against the already-expired deadline), instead
                        # of aborting the batch mid-way
                        results[i] = timeout
                        continue
                    for straggler in futures:
                        straggler.cancel()
                    raise timeout from None
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    if collect_errors:
                        results[i] = exc
                    elif first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
            return results

    def _attempt(
        self,
        item: T,
        fn: Callable[[T], Any],
        server: int,
        on_result: Callable[[T, DispatchResult], None] | None,
        submitted: float,
        parent: Any = None,
    ) -> Any:
        """One request: bounded retry loop, timing, success reporting.

        ``submitted`` is the perf_counter timestamp at submission (queue
        wait = first-attempt start − submitted); ``parent`` is the span
        active in the submitting thread, adopted here so per-request
        spans land in the right trace even from pool workers.
        """
        if parent is None:
            return self._attempt_inner(item, fn, server, on_result, submitted)
        with use_span(parent):
            with span("dispatch.request", server=server) as sp:
                return self._attempt_inner(
                    item, fn, server, on_result, submitted, sp
                )

    def _attempt_inner(
        self,
        item: T,
        fn: Callable[[T], Any],
        server: int,
        on_result: Callable[[T, DispatchResult], None] | None,
        submitted: float,
        sp: Any = None,
    ) -> Any:
        policy = self.policy
        c_requests, c_retries, h_service, h_queue = self._server_series(server)
        delay = policy.backoff_s
        retries = 0
        backoff_total = 0.0
        start = time.perf_counter()
        queue_wait = start - submitted
        while True:
            attempt_start = time.perf_counter()
            try:
                value = fn(item)
            except Exception as exc:
                if not is_transient(exc):
                    self.stats._failures.inc(server=server)
                    raise
                if retries >= policy.retries:
                    self.stats._failures.inc(server=server)
                    raise RetryExhausted(
                        f"server {server}: transient error persisted after "
                        f"{retries + 1} attempts: {exc}"
                    ) from exc
                retries += 1
                c_retries.inc()
                if delay:
                    time.sleep(delay)
                    backoff_total += delay
                delay = min(delay * 2 if delay else policy.backoff_s, policy.backoff_cap_s)
                continue
            done = time.perf_counter()
            service = done - attempt_start
            c_requests.inc()
            h_queue.observe(queue_wait)
            h_service.observe(service)
            if backoff_total:
                self._c_backoff.inc(backoff_total, server=server)
            if sp is not None:
                sp.tag(
                    queue_wait_s=queue_wait,
                    service_s=service,
                    retries=retries,
                    backoff_s=backoff_total,
                )
            result = DispatchResult(
                value=value,
                server=server,
                latency_s=done - start,
                retries=retries,
                queue_wait_s=queue_wait,
                service_s=service,
                backoff_s=backoff_total,
            )
            if on_result is not None:
                on_result(item, result)
            return value
