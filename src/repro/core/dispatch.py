"""Parallel per-server I/O dispatch (§4.2, made concurrent).

Request combination folds a processor's bricks into one request per
server and staggers each processor's starting server — but the paper's
speedups (Figs. 11–14) rest on the *independent storage devices then
working simultaneously*.  This module supplies that missing half on the
client: a shared worker pool that fans a wire plan's per-server
requests out concurrently, with a bounded retry-with-exponential-
backoff policy for transient failures (ServerBusy admission rejections,
injected transient faults) and a per-request completion deadline.

Transience is attribute-based: any exception whose ``transient``
attribute is truthy (:func:`is_transient`) is retried up to
``DispatchPolicy.retries`` times; every other error propagates
unchanged on first occurrence.  When a transient error outlives the
budget it is wrapped in :class:`repro.errors.RetryExhausted` naming the
failing server, with the original exception chained.

Invariants:

- results come back in plan order regardless of completion order, so
  staggered schedules keep their meaning;
- a dispatch returns (or raises) only after every submitted request has
  finished — no worker is still scattering into a caller's buffer when
  control returns.  The single exception is :class:`DispatchTimeout`,
  after which stragglers are abandoned and the caller must discard the
  target buffer;
- with ``max_workers=1`` requests run inline on the calling thread, in
  plan order — byte-identical semantics to sequential dispatch;
- when the first (permanent) error is raised, every *successful*
  request has already been reported through ``on_result``, so partial-
  progress accounting survives a failure;
- a dispatch issued *from* a pool worker runs inline (never re-enters
  the pool), so nested fan-out cannot deadlock on pool capacity;
- the dispatcher never retries a non-transient error: retrying a
  failed *write* blindly could double-apply side effects, so only
  errors the raiser explicitly marked safe-to-retry are replayed.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, TypeVar

from ..errors import ConfigError, DispatchTimeout, RetryExhausted

__all__ = [
    "DispatchPolicy",
    "DispatchResult",
    "DispatcherStats",
    "Dispatcher",
    "is_transient",
]

T = TypeVar("T")

#: thread-name prefix of pool workers (the nested-dispatch guard keys
#: off it)
_WORKER_PREFIX = "dpfs-io"


def is_transient(exc: BaseException) -> bool:
    """True when ``exc`` is marked safe to retry (``.transient``)."""
    return bool(getattr(exc, "transient", False))


@dataclass(frozen=True)
class DispatchPolicy:
    """Tuning knobs of one dispatcher.

    ``timeout_s`` is the completion deadline the waiter enforces per
    request (pooled mode only — an inline request cannot be pre-empted
    from its own thread).  ``retries`` counts *re*-attempts: a request
    is tried at most ``retries + 1`` times.
    """

    max_workers: int = 4
    timeout_s: float | None = None
    retries: int = 3
    backoff_s: float = 0.002
    backoff_cap_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive")


@dataclass(frozen=True)
class DispatchResult:
    """Per-request completion record handed to ``on_result``."""

    value: Any
    server: int
    latency_s: float     # wall time including retries and backoff sleeps
    retries: int         # how many re-attempts were needed (0 = first try)


@dataclass
class DispatcherStats:
    """Aggregate counters across every dispatch through one pool."""

    batches: int = 0          # run() calls with at least one request
    inline_batches: int = 0   # batches executed without the pool
    requests: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0


class Dispatcher:
    """A shared scheduler fanning per-server requests over a thread pool.

    One dispatcher is owned by one :class:`repro.core.filesystem.DPFS`
    instance and shared by every handle it opens; the pool is created
    lazily on the first dispatch that can use it and torn down by
    :meth:`shutdown` (``DPFS.close``).
    """

    def __init__(self, policy: DispatchPolicy | None = None) -> None:
        self.policy = policy or DispatchPolicy()
        self.stats = DispatcherStats()
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        """Drain and release the worker pool (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def _ensure_pool(self) -> ThreadPoolExecutor | None:
        with self._lock:
            if self._closed:
                return None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.policy.max_workers,
                    thread_name_prefix=_WORKER_PREFIX,
                )
            return self._pool

    @staticmethod
    def _in_worker() -> bool:
        return threading.current_thread().name.startswith(_WORKER_PREFIX)

    # -- execution ---------------------------------------------------------
    def run(
        self,
        items: Sequence[T],
        fn: Callable[[T], Any],
        *,
        server_of: Callable[[T], int] | None = None,
        on_result: Callable[[T, DispatchResult], None] | None = None,
    ) -> list[Any]:
        """Execute ``fn(item)`` for every item; return values in item order.

        ``server_of`` names the server a request targets (for error
        messages and stats); it defaults to ``item.server``.
        ``on_result`` is invoked once per *successful* request — from
        the worker thread that ran it — as soon as it completes.
        """
        if not items:
            return []
        if server_of is None:
            server_of = lambda item: getattr(item, "server", -1)  # noqa: E731

        with self._lock:
            self.stats.batches += 1
            self.stats.requests += len(items)

        pool = None
        if (
            self.policy.max_workers > 1
            and len(items) > 1
            and not self._in_worker()
        ):
            pool = self._ensure_pool()
        if pool is None:
            with self._lock:
                self.stats.inline_batches += 1
            return [
                self._attempt(item, fn, server_of(item), on_result)
                for item in items
            ]

        futures = [
            pool.submit(self._attempt, item, fn, server_of(item), on_result)
            for item in items
        ]
        results: list[Any] = [None] * len(items)
        first_error: BaseException | None = None
        for i, future in enumerate(futures):
            try:
                results[i] = future.result(timeout=self.policy.timeout_s)
            except _FutureTimeout:
                for straggler in futures:
                    straggler.cancel()
                with self._lock:
                    self.stats.timeouts += 1
                raise DispatchTimeout(
                    f"server {server_of(items[i])}: request still running "
                    f"after {self.policy.timeout_s}s"
                ) from None
            except Exception as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def _attempt(
        self,
        item: T,
        fn: Callable[[T], Any],
        server: int,
        on_result: Callable[[T, DispatchResult], None] | None,
    ) -> Any:
        """One request: bounded retry loop, timing, success reporting."""
        policy = self.policy
        delay = policy.backoff_s
        retries = 0
        start = time.perf_counter()
        while True:
            try:
                value = fn(item)
            except Exception as exc:
                if not is_transient(exc):
                    with self._lock:
                        self.stats.failures += 1
                    raise
                if retries >= policy.retries:
                    with self._lock:
                        self.stats.failures += 1
                    raise RetryExhausted(
                        f"server {server}: transient error persisted after "
                        f"{retries + 1} attempts: {exc}"
                    ) from exc
                retries += 1
                with self._lock:
                    self.stats.retries += 1
                if delay:
                    time.sleep(delay)
                delay = min(delay * 2 if delay else policy.backoff_s, policy.backoff_cap_s)
                continue
            result = DispatchResult(
                value=value,
                server=server,
                latency_s=time.perf_counter() - start,
                retries=retries,
            )
            if on_result is not None:
                on_result(item, result)
            return value
