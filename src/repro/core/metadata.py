"""DPFS metadata management on the embedded SQL database (§5).

The paper keeps all file-system metadata in four POSTGRES tables,
manipulated through SQL; transactions guarantee consistency of
multi-table updates.  We reproduce the same four tables (hyphens in the
paper's names become underscores — SQL identifiers):

``dpfs_server``
    server_id, server_name, capacity, performance — the I/O node
    registry the greedy placement algorithm reads.
``dpfs_file_distribution``
    server_name, filename, bricklist (JSON) — how each file's bricks
    are spread over subfiles.
``dpfs_directory``
    main_dir, sub_dirs (JSON), files (JSON) — the directory tree.
``dpfs_file_attr``
    filename, owner, permission, size, filelevel, striping geometry
    (JSON), placement — per-file attributes incl. the §3 file level.

A fifth table, ``dpfs_file_replica``, extends the paper's schema with
per-server *replica* bricklists (same shape as the distribution table)
for files created with ``replicas > 1``; the geometry JSON additionally
carries ``replicas``, the per-brick ``brick_crcs`` checksum list, and
the ``crc_algo`` those checksums were computed under.

:class:`MetadataManager` is the only component that speaks SQL; the
file system above it works with :class:`FileRecord` objects.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Any

from ..errors import (
    FileExists,
    FileNotFound,
    InvalidPath,
    MetaDBError,
)
from ..metadb import Database
from .brick import BrickMap, ReplicaMap
from .checksum import CRC_ALGORITHM
from .striping import FileLevel

__all__ = ["MetadataManager", "FileRecord", "normalize_path", "split_path"]


def normalize_path(path: str) -> str:
    """Normalise a DPFS path to absolute, no trailing slash (except root)."""
    if not path:
        raise InvalidPath("empty path")
    if "\x00" in path:
        raise InvalidPath("NUL byte in path")
    if not path.startswith("/"):
        path = "/" + path
    norm = posixpath.normpath(path)
    if norm.startswith("/.."):
        raise InvalidPath(f"path escapes root: {path!r}")
    return norm


def split_path(path: str) -> tuple[str, str]:
    """(parent directory, basename) of a normalised path."""
    norm = normalize_path(path)
    if norm == "/":
        raise InvalidPath("root has no parent")
    parent, base = posixpath.split(norm)
    return parent, base


@dataclass
class FileRecord:
    """Everything the metadata layer knows about one DPFS file."""

    path: str
    owner: str
    permission: int
    size: int                       # logical bytes
    level: FileLevel
    element_size: int
    array_shape: tuple[int, ...] | None
    brick_shape: tuple[int, ...] | None
    brick_size: int
    pattern: str | None
    nprocs: int | None
    pgrid: tuple[int, ...] | None
    placement: str
    brick_sizes: list[int]          # per-brick byte sizes (brick-id order)
    #: copies of every brick (1 = unreplicated)
    replicas: int = 1
    #: per-brick payload checksums (brick-id order); ``None`` = never
    #: written / unknown — verification skips those bricks
    brick_crcs: list[int | None] = field(default_factory=list)
    #: algorithm the stored checksums were computed under
    crc_algo: str = CRC_ALGORITHM

    def __post_init__(self) -> None:
        if not self.brick_crcs:
            self.brick_crcs = [None] * len(self.brick_sizes)


class MetadataManager:
    """All DPFS metadata operations, expressed as SQL transactions."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._ensure_schema()

    # ------------------------------------------------------------------
    # schema & servers
    # ------------------------------------------------------------------
    def _ensure_schema(self) -> None:
        self.db.execute(
            "CREATE TABLE IF NOT EXISTS dpfs_server ("
            " server_id INTEGER PRIMARY KEY,"
            " server_name TEXT NOT NULL UNIQUE,"
            " capacity INTEGER NOT NULL,"
            " performance REAL NOT NULL)"
        )
        self.db.execute(
            "CREATE TABLE IF NOT EXISTS dpfs_file_distribution ("
            " dist_id TEXT PRIMARY KEY,"      # f"{server}|{filename}"
            " server_name TEXT NOT NULL,"
            " filename TEXT NOT NULL,"
            " bricklist JSON NOT NULL)"
        )
        self.db.execute(
            "CREATE INDEX IF NOT EXISTS dist_by_filename "
            "ON dpfs_file_distribution (filename)"
        )
        self.db.execute(
            "CREATE TABLE IF NOT EXISTS dpfs_file_replica ("
            " dist_id TEXT PRIMARY KEY,"      # f"{server}|{filename}"
            " server_name TEXT NOT NULL,"
            " filename TEXT NOT NULL,"
            " bricklist JSON NOT NULL)"
        )
        self.db.execute(
            "CREATE INDEX IF NOT EXISTS replica_by_filename "
            "ON dpfs_file_replica (filename)"
        )
        self.db.execute(
            "CREATE TABLE IF NOT EXISTS dpfs_directory ("
            " main_dir TEXT PRIMARY KEY,"
            " sub_dirs JSON NOT NULL,"
            " files JSON NOT NULL)"
        )
        self.db.execute(
            "CREATE TABLE IF NOT EXISTS dpfs_file_attr ("
            " filename TEXT PRIMARY KEY,"
            " owner TEXT NOT NULL,"
            " permission INTEGER NOT NULL,"
            " size INTEGER NOT NULL,"
            " filelevel TEXT NOT NULL,"
            " element_size INTEGER NOT NULL,"
            " geometry JSON NOT NULL,"        # shapes / pattern / grid / sizes
            " placement TEXT NOT NULL)"
        )
        if not self._dir_row("/"):
            self.db.execute(
                "INSERT INTO dpfs_directory VALUES ('/', ?, ?)",
                [[], []],
            )

    def register_servers(self, infos: list[Any]) -> None:
        """Record the backend's servers in dpfs_server (idempotent)."""
        with self.db.transaction():
            for idx, info in enumerate(infos):
                existing = self.db.execute(
                    "SELECT server_id FROM dpfs_server WHERE server_id = ?",
                    [idx],
                ).rows
                if existing:
                    self.db.execute(
                        "UPDATE dpfs_server SET server_name = ?, capacity = ?,"
                        " performance = ? WHERE server_id = ?",
                        [info.name, info.capacity, info.performance, idx],
                    )
                else:
                    self.db.execute(
                        "INSERT INTO dpfs_server VALUES (?, ?, ?, ?)",
                        [idx, info.name, info.capacity, info.performance],
                    )

    def servers(self) -> list[dict[str, Any]]:
        return self.db.execute(
            "SELECT server_id, server_name, capacity, performance "
            "FROM dpfs_server ORDER BY server_id"
        ).rows

    def server_performance(self) -> list[float]:
        return [row["performance"] for row in self.servers()]

    # ------------------------------------------------------------------
    # directories
    # ------------------------------------------------------------------
    def _dir_row(self, path: str) -> dict[str, Any] | None:
        rows = self.db.execute(
            "SELECT main_dir, sub_dirs, files FROM dpfs_directory "
            "WHERE main_dir = ?",
            [path],
        ).rows
        return rows[0] if rows else None

    def dir_exists(self, path: str) -> bool:
        return self._dir_row(normalize_path(path)) is not None

    def file_exists(self, path: str) -> bool:
        rows = self.db.execute(
            "SELECT filename FROM dpfs_file_attr WHERE filename = ?",
            [normalize_path(path)],
        ).rows
        return bool(rows)

    def mkdir(self, path: str) -> None:
        """Create one directory (parent must exist) — the §5 update rule:
        parent row gains the child, and a new row is inserted."""
        norm = normalize_path(path)
        if norm == "/":
            raise FileExists("/ always exists")
        parent, base = split_path(norm)
        with self.db.transaction():
            parent_row = self._dir_row(parent)
            if parent_row is None:
                raise FileNotFound(f"no such directory: {parent}")
            if self._dir_row(norm) is not None or self.file_exists(norm):
                raise FileExists(norm)
            subs = list(parent_row["sub_dirs"])
            subs.append(base)
            self.db.execute(
                "UPDATE dpfs_directory SET sub_dirs = ? WHERE main_dir = ?",
                [sorted(subs), parent],
            )
            self.db.execute(
                "INSERT INTO dpfs_directory VALUES (?, ?, ?)", [norm, [], []]
            )

    def makedirs(self, path: str) -> None:
        """mkdir -p."""
        norm = normalize_path(path)
        if norm == "/":
            return
        parts = norm.strip("/").split("/")
        current = ""
        for part in parts:
            current += "/" + part
            if not self.dir_exists(current):
                self.mkdir(current)

    def rmdir(self, path: str) -> None:
        norm = normalize_path(path)
        if norm == "/":
            raise InvalidPath("cannot remove /")
        with self.db.transaction():
            row = self._dir_row(norm)
            if row is None:
                raise FileNotFound(norm)
            if row["sub_dirs"] or row["files"]:
                from ..errors import DirectoryNotEmpty

                raise DirectoryNotEmpty(norm)
            parent, base = split_path(norm)
            parent_row = self._dir_row(parent)
            assert parent_row is not None
            subs = [s for s in parent_row["sub_dirs"] if s != base]
            self.db.execute(
                "UPDATE dpfs_directory SET sub_dirs = ? WHERE main_dir = ?",
                [subs, parent],
            )
            self.db.execute(
                "DELETE FROM dpfs_directory WHERE main_dir = ?", [norm]
            )

    def listdir(self, path: str) -> tuple[list[str], list[str]]:
        """(sub_dirs, files) of a directory."""
        row = self._dir_row(normalize_path(path))
        if row is None:
            raise FileNotFound(path)
        return list(row["sub_dirs"]), list(row["files"])

    # ------------------------------------------------------------------
    # files
    # ------------------------------------------------------------------
    def create_file(
        self,
        record: FileRecord,
        brick_map: BrickMap,
        server_names: list[str],
        replica_map: ReplicaMap | None = None,
    ) -> None:
        """Insert attr + distribution rows and link into the directory."""
        norm = normalize_path(record.path)
        parent, base = split_path(norm)
        with self.db.transaction():
            parent_row = self._dir_row(parent)
            if parent_row is None:
                raise FileNotFound(f"no such directory: {parent}")
            if self.file_exists(norm) or self._dir_row(norm) is not None:
                raise FileExists(norm)
            files = list(parent_row["files"])
            files.append(base)
            self.db.execute(
                "UPDATE dpfs_directory SET files = ? WHERE main_dir = ?",
                [sorted(files), parent],
            )
            geometry = {
                "array_shape": list(record.array_shape) if record.array_shape else None,
                "brick_shape": list(record.brick_shape) if record.brick_shape else None,
                "brick_size": record.brick_size,
                "pattern": record.pattern,
                "nprocs": record.nprocs,
                "pgrid": list(record.pgrid) if record.pgrid else None,
                "brick_sizes": record.brick_sizes,
                "replicas": record.replicas,
                "brick_crcs": record.brick_crcs,
                "crc_algo": record.crc_algo,
            }
            self.db.execute(
                "INSERT INTO dpfs_file_attr VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    norm,
                    record.owner,
                    record.permission,
                    record.size,
                    record.level.value,
                    record.element_size,
                    geometry,
                    record.placement,
                ],
            )
            for server, bricklist in enumerate(brick_map.to_lists()):
                self.db.execute(
                    "INSERT INTO dpfs_file_distribution VALUES (?, ?, ?, ?)",
                    [
                        f"{server_names[server]}|{norm}",
                        server_names[server],
                        norm,
                        bricklist,
                    ],
                )
            if replica_map is not None:
                for server, bricklist in enumerate(replica_map.to_lists()):
                    if not bricklist:
                        continue
                    self.db.execute(
                        "INSERT INTO dpfs_file_replica VALUES (?, ?, ?, ?)",
                        [
                            f"{server_names[server]}|{norm}",
                            server_names[server],
                            norm,
                            bricklist,
                        ],
                    )

    def load_file(self, path: str) -> tuple[FileRecord, BrickMap]:
        norm = normalize_path(path)
        rows = self.db.execute(
            "SELECT * FROM dpfs_file_attr WHERE filename = ?", [norm]
        ).rows
        if not rows:
            raise FileNotFound(norm)
        attr = rows[0]
        geometry = attr["geometry"]
        record = FileRecord(
            path=norm,
            owner=attr["owner"],
            permission=attr["permission"],
            size=attr["size"],
            level=FileLevel(attr["filelevel"]),
            element_size=attr["element_size"],
            array_shape=tuple(geometry["array_shape"]) if geometry["array_shape"] else None,
            brick_shape=tuple(geometry["brick_shape"]) if geometry["brick_shape"] else None,
            brick_size=geometry["brick_size"],
            pattern=geometry["pattern"],
            nprocs=geometry["nprocs"],
            pgrid=tuple(geometry["pgrid"]) if geometry["pgrid"] else None,
            placement=attr["placement"],
            brick_sizes=list(geometry["brick_sizes"]),
            replicas=geometry.get("replicas", 1),
            brick_crcs=list(
                geometry.get("brick_crcs")
                or [None] * len(geometry["brick_sizes"])
            ),
            crc_algo=geometry.get("crc_algo", CRC_ALGORITHM),
        )
        dist = self.db.execute(
            "SELECT server_name, bricklist FROM dpfs_file_distribution "
            "WHERE filename = ?",
            [norm],
        ).rows
        order = {row["server_name"]: row["server_id"] for row in self.servers()}
        bricklists: list[list[int]] = [[] for _ in order]
        for row in dist:
            try:
                bricklists[order[row["server_name"]]] = list(row["bricklist"])
            except KeyError:
                raise MetaDBError(
                    f"distribution row references unknown server "
                    f"{row['server_name']!r}"
                ) from None
        brick_map = BrickMap.from_lists(bricklists, record.brick_sizes)
        return record, brick_map

    def load_replica_map(self, path: str, record: FileRecord) -> ReplicaMap:
        """The file's replica bricklists (empty map for replicas == 1)."""
        norm = normalize_path(path)
        order = {row["server_name"]: row["server_id"] for row in self.servers()}
        bricklists: list[list[int]] = [[] for _ in order]
        for row in self.db.execute(
            "SELECT server_name, bricklist FROM dpfs_file_replica "
            "WHERE filename = ?",
            [norm],
        ).rows:
            server_id = order.get(row["server_name"])
            if server_id is None:
                raise MetaDBError(
                    f"replica row references unknown server "
                    f"{row['server_name']!r}"
                )
            bricklists[server_id] = list(row["bricklist"])
        return ReplicaMap.build(len(order), bricklists, record.brick_sizes)

    def update_replica_map(
        self, path: str, replica_map: ReplicaMap, server_names: list[str]
    ) -> None:
        """Rewrite replica bricklists after a replicated file grew."""
        norm = normalize_path(path)
        with self.db.transaction():
            self._upsert_replica_rows(norm, replica_map, server_names)

    def _upsert_replica_rows(
        self, norm: str, replica_map: ReplicaMap, server_names: list[str]
    ) -> None:
        """Write replica bricklist rows (caller holds the transaction)."""
        for server, bricklist in enumerate(replica_map.to_lists()):
            if not bricklist:
                continue
            dist_id = f"{server_names[server]}|{norm}"
            existing = self.db.execute(
                "SELECT dist_id FROM dpfs_file_replica WHERE dist_id = ?",
                [dist_id],
            ).rows
            if existing:
                self.db.execute(
                    "UPDATE dpfs_file_replica SET bricklist = ? "
                    "WHERE dist_id = ?",
                    [bricklist, dist_id],
                )
            else:
                self.db.execute(
                    "INSERT INTO dpfs_file_replica VALUES (?, ?, ?, ?)",
                    [dist_id, server_names[server], norm, bricklist],
                )

    def update_brick_crcs(
        self, path: str, crcs: dict[int, int | None]
    ) -> None:
        """Merge freshly computed per-brick checksums into the geometry.

        One transaction per *write call*, not per brick — the handle
        batches every brick a write touched into a single ``crcs`` dict.
        """
        if not crcs:
            return
        norm = normalize_path(path)
        with self.db.transaction():
            rows = self.db.execute(
                "SELECT geometry FROM dpfs_file_attr WHERE filename = ?",
                [norm],
            ).rows
            if not rows:
                raise FileNotFound(norm)
            geometry = dict(rows[0]["geometry"])
            stored = list(
                geometry.get("brick_crcs")
                or [None] * len(geometry["brick_sizes"])
            )
            if len(stored) < len(geometry["brick_sizes"]):
                stored += [None] * (len(geometry["brick_sizes"]) - len(stored))
            for brick_id, crc in crcs.items():
                if not 0 <= brick_id < len(stored):
                    raise MetaDBError(
                        f"brick {brick_id} outside crc table of {len(stored)}"
                    )
                stored[brick_id] = crc
            geometry["brick_crcs"] = stored
            geometry.setdefault("crc_algo", CRC_ALGORITHM)
            self.db.execute(
                "UPDATE dpfs_file_attr SET geometry = ? WHERE filename = ?",
                [geometry, norm],
            )

    def update_file_size(self, path: str, size: int) -> None:
        self.db.execute(
            "UPDATE dpfs_file_attr SET size = ? WHERE filename = ?",
            [size, normalize_path(path)],
        )

    def update_distribution(
        self, path: str, brick_map: BrickMap, brick_sizes: list[int],
        server_names: list[str],
    ) -> None:
        """Rewrite bricklists + geometry after a file grew (linear level)."""
        norm = normalize_path(path)
        with self.db.transaction():
            self._grow_geometry(norm, brick_sizes)
            self._upsert_distribution_rows(norm, brick_map, server_names)

    def _grow_geometry(self, norm: str, brick_sizes: list[int]) -> None:
        """Extend geometry's brick_sizes/brick_crcs (caller holds txn)."""
        rows = self.db.execute(
            "SELECT geometry FROM dpfs_file_attr WHERE filename = ?",
            [norm],
        ).rows
        if not rows:
            raise FileNotFound(norm)
        geometry = dict(rows[0]["geometry"])
        geometry["brick_sizes"] = list(brick_sizes)
        crcs = list(
            geometry.get("brick_crcs") or []
        )
        if len(crcs) < len(brick_sizes):  # new bricks: crc unknown
            crcs += [None] * (len(brick_sizes) - len(crcs))
        geometry["brick_crcs"] = crcs[: len(brick_sizes)]
        self.db.execute(
            "UPDATE dpfs_file_attr SET geometry = ? WHERE filename = ?",
            [geometry, norm],
        )

    def _upsert_distribution_rows(
        self, norm: str, brick_map: BrickMap, server_names: list[str]
    ) -> None:
        """Write distribution bricklist rows (caller holds the transaction)."""
        for server, bricklist in enumerate(brick_map.to_lists()):
            dist_id = f"{server_names[server]}|{norm}"
            existing = self.db.execute(
                "SELECT dist_id FROM dpfs_file_distribution "
                "WHERE dist_id = ?",
                [dist_id],
            ).rows
            if existing:
                self.db.execute(
                    "UPDATE dpfs_file_distribution SET bricklist = ? "
                    "WHERE dist_id = ?",
                    [bricklist, dist_id],
                )
            else:
                self.db.execute(
                    "INSERT INTO dpfs_file_distribution VALUES (?, ?, ?, ?)",
                    [dist_id, server_names[server], norm, bricklist],
                )

    def grow_file(
        self,
        path: str,
        brick_map: BrickMap,
        brick_sizes: list[int],
        server_names: list[str],
        replica_map: ReplicaMap | None,
        new_size: int,
    ) -> None:
        """Every metadata effect of growing a linear file, atomically.

        Historically growth issued three separate transactions
        (distribution, replica map, size) — a crash between them left
        the attr row disagreeing with the bricklists.  One transaction
        makes grow's metadata step all-or-nothing, which is what lets
        the grow intent treat it as its commit point.
        """
        norm = normalize_path(path)
        with self.db.transaction():
            self._grow_geometry(norm, brick_sizes)
            self._upsert_distribution_rows(norm, brick_map, server_names)
            if replica_map is not None:
                self._upsert_replica_rows(norm, replica_map, server_names)
            self.db.execute(
                "UPDATE dpfs_file_attr SET size = ? WHERE filename = ?",
                [new_size, norm],
            )

    def remove_file(self, path: str) -> None:
        norm = normalize_path(path)
        parent, base = split_path(norm)
        with self.db.transaction():
            if not self.file_exists(norm):
                raise FileNotFound(norm)
            parent_row = self._dir_row(parent)
            if parent_row is not None:
                files = [f for f in parent_row["files"] if f != base]
                self.db.execute(
                    "UPDATE dpfs_directory SET files = ? WHERE main_dir = ?",
                    [files, parent],
                )
            self.db.execute(
                "DELETE FROM dpfs_file_attr WHERE filename = ?", [norm]
            )
            self.db.execute(
                "DELETE FROM dpfs_file_distribution WHERE filename = ?",
                [norm],
            )
            self.db.execute(
                "DELETE FROM dpfs_file_replica WHERE filename = ?",
                [norm],
            )

    def rename_file(self, old: str, new: str) -> None:
        """mv: re-key a file's attr/distribution rows and directory links.

        Directories cannot be renamed (children embed the parent path);
        the shell's ``mv`` therefore applies to files only.
        """
        old_norm = normalize_path(old)
        new_norm = normalize_path(new)
        if old_norm == new_norm:
            return
        old_parent, old_base = split_path(old_norm)
        new_parent, new_base = split_path(new_norm)
        with self.db.transaction():
            if not self.file_exists(old_norm):
                if self.dir_exists(old_norm):
                    raise InvalidPath(
                        f"cannot rename directory {old_norm!r} (files only)"
                    )
                raise FileNotFound(old_norm)
            if self.file_exists(new_norm) or self.dir_exists(new_norm):
                raise FileExists(new_norm)
            new_parent_row = self._dir_row(new_parent)
            if new_parent_row is None:
                raise FileNotFound(f"no such directory: {new_parent}")
            # unlink from the old parent
            old_parent_row = self._dir_row(old_parent)
            assert old_parent_row is not None
            if old_parent == new_parent:
                files = [f for f in old_parent_row["files"] if f != old_base]
                files.append(new_base)
                self.db.execute(
                    "UPDATE dpfs_directory SET files = ? WHERE main_dir = ?",
                    [sorted(files), old_parent],
                )
            else:
                self.db.execute(
                    "UPDATE dpfs_directory SET files = ? WHERE main_dir = ?",
                    [
                        [f for f in old_parent_row["files"] if f != old_base],
                        old_parent,
                    ],
                )
                files = list(new_parent_row["files"])
                files.append(new_base)
                self.db.execute(
                    "UPDATE dpfs_directory SET files = ? WHERE main_dir = ?",
                    [sorted(files), new_parent],
                )
            self.db.execute(
                "UPDATE dpfs_file_attr SET filename = ? WHERE filename = ?",
                [new_norm, old_norm],
            )
            for table in ("dpfs_file_distribution", "dpfs_file_replica"):
                rows = self.db.execute(
                    f"SELECT dist_id, server_name FROM {table} "
                    "WHERE filename = ?",
                    [old_norm],
                ).rows
                for row in rows:
                    self.db.execute(
                        f"UPDATE {table} SET dist_id = ?, "
                        "filename = ? WHERE dist_id = ?",
                        [
                            f"{row['server_name']}|{new_norm}",
                            new_norm,
                            row["dist_id"],
                        ],
                    )

    def tree_usage(self, path: str) -> int:
        """Total logical bytes of all files at or under ``path`` (du)."""
        norm = normalize_path(path)
        if self.file_exists(norm):
            return self.stat(norm)["size"]
        if not self.dir_exists(norm):
            raise FileNotFound(norm)
        prefix = norm if norm.endswith("/") else norm + "/"
        total = 0
        for row in self.db.execute(
            "SELECT filename, size FROM dpfs_file_attr"
        ).rows:
            if row["filename"].startswith(prefix):
                total += row["size"]
        return total

    def server_usage(self) -> dict[int, int]:
        """Physical bytes each server holds (sum of its bricks' sizes)."""
        order = {row["server_name"]: row["server_id"] for row in self.servers()}
        usage = {server_id: 0 for server_id in order.values()}
        attrs = {
            row["filename"]: row["geometry"]["brick_sizes"]
            for row in self.db.execute(
                "SELECT filename, geometry FROM dpfs_file_attr"
            ).rows
        }
        for table in ("dpfs_file_distribution", "dpfs_file_replica"):
            for row in self.db.execute(
                f"SELECT server_name, filename, bricklist FROM {table}"
            ).rows:
                sizes = attrs.get(row["filename"])
                if sizes is None:
                    continue
                server_id = order.get(row["server_name"])
                if server_id is None:
                    continue
                usage[server_id] += sum(sizes[b] for b in row["bricklist"])
        return usage

    def set_permission(self, path: str, permission: int) -> None:
        norm = normalize_path(path)
        if not self.file_exists(norm):
            raise FileNotFound(norm)
        self.db.execute(
            "UPDATE dpfs_file_attr SET permission = ? WHERE filename = ?",
            [permission, norm],
        )

    def stat(self, path: str) -> dict[str, Any]:
        """File or directory attributes as a plain dict (shell `ls -l`)."""
        norm = normalize_path(path)
        rows = self.db.execute(
            "SELECT * FROM dpfs_file_attr WHERE filename = ?", [norm]
        ).rows
        if rows:
            attr = dict(rows[0])
            attr["geometry"] = dict(attr["geometry"])
            attr["is_dir"] = False
            return attr
        if self.dir_exists(norm):
            return {"filename": norm, "is_dir": True}
        raise FileNotFound(norm)

    def iter_files(self) -> list[str]:
        return [
            row["filename"]
            for row in self.db.execute(
                "SELECT filename FROM dpfs_file_attr ORDER BY filename"
            ).rows
        ]
