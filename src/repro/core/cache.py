"""Client-side brick cache.

The paper's servers inherit "I/O optimizations such as caching and
prefetching of the local file system"; on the *client* side, repeated
region reads (e.g. the out-of-core multiply's row panels) re-fetch the
same bricks over the network.  :class:`BrickCache` is an LRU,
whole-brick, write-through cache a :class:`~repro.core.filesystem.DPFS`
instance can share across handles.

Design points:

- the unit is the brick — DPFS's "basic accessing unit" (§3) — keyed by
  ``(file path, brick id)``;
- write-through: writes go to the servers immediately, and any cached
  copy of the touched brick is patched in place, so reads after writes
  are always coherent within the process;
- files are invalidated wholesale on remove/rename/growth;
- bricks larger than a quarter of the capacity are never cached (one
  array-level chunk must not evict the whole working set).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..obs.registry import MetricsRegistry

__all__ = ["CacheStats", "BrickCache"]


class CacheStats:
    """Observability counters — a view over the shared metrics registry.

    The registry (``dpfs_cache_*`` series) is the source of truth; this
    class keeps the historical ``cache.stats.hits`` attribute API alive
    on top of it.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._hits = registry.counter("dpfs_cache_hits_total", "brick cache hits")
        self._misses = registry.counter(
            "dpfs_cache_misses_total", "brick cache misses"
        )
        self._insertions = registry.counter(
            "dpfs_cache_insertions_total", "bricks admitted to the cache"
        )
        self._evictions = registry.counter(
            "dpfs_cache_evictions_total", "bricks evicted by the LRU bound"
        )
        self._invalidations = registry.counter(
            "dpfs_cache_invalidations_total", "bricks dropped for coherence"
        )
        self._patched = registry.counter(
            "dpfs_cache_patched_writes_total", "write-through in-place patches"
        )
        self._used = registry.gauge(
            "dpfs_cache_used_bytes", "bytes currently cached"
        )
        self._entries = registry.gauge(
            "dpfs_cache_entries", "bricks currently cached"
        )

    @property
    def hits(self) -> int:
        return int(self._hits.total())

    @property
    def misses(self) -> int:
        return int(self._misses.total())

    @property
    def insertions(self) -> int:
        return int(self._insertions.total())

    @property
    def evictions(self) -> int:
        return int(self._evictions.total())

    @property
    def invalidations(self) -> int:
        return int(self._invalidations.total())

    @property
    def patched_writes(self) -> int:
        return int(self._patched.total())

    @property
    def hit_rate(self) -> float:
        hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0


@dataclass
class _Entry:
    data: bytearray
    size: int = field(init=False)

    def __post_init__(self) -> None:
        self.size = len(self.data)


class BrickCache:
    """LRU cache of whole bricks, bounded by total bytes."""

    def __init__(
        self, capacity_bytes: int, *, registry: MetricsRegistry | None = None
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple[str, int], _Entry] = OrderedDict()
        self._used = 0
        #: one registry per cache unless the owner shares its own (DPFS
        #: passes ``DPFS.metrics`` so cache series land with the rest)
        self.stats = CacheStats(registry if registry is not None else MetricsRegistry())
        #: bound hit/miss series — lookups are the cache's hot path
        self._hit = self.stats._hits.labels()
        self._miss = self.stats._misses.labels()

    # -- bookkeeping ---------------------------------------------------------
    def _sync_gauges(self) -> None:
        self.stats._used.set(self._used)
        self.stats._entries.set(len(self._entries))

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def cacheable(self, size: int) -> bool:
        """Whether a brick of ``size`` bytes is admitted at all."""
        return size <= self.capacity_bytes // 4

    # -- lookup ---------------------------------------------------------------
    def get(self, path: str, brick_id: int) -> bytes | None:
        """Whole-brick lookup; promotes on hit."""
        entry = self._entries.get((path, brick_id))
        if entry is None:
            self._miss.inc()
            return None
        self._entries.move_to_end((path, brick_id))
        self._hit.inc()
        return bytes(entry.data)

    def peek(self, path: str, brick_id: int) -> bool:
        """Presence check without touching LRU order or stats."""
        return (path, brick_id) in self._entries

    # -- population -------------------------------------------------------------
    def put(self, path: str, brick_id: int, data: bytes) -> None:
        """Insert/replace a whole brick (no-op when not cacheable)."""
        if not self.cacheable(len(data)):
            return
        key = (path, brick_id)
        old = self._entries.pop(key, None)
        if old is not None:
            self._used -= old.size
        entry = _Entry(bytearray(data))
        self._entries[key] = entry
        self._used += entry.size
        self.stats._insertions.inc()
        self._sync_gauges()
        self._evict()

    def _evict(self) -> None:
        evicted = False
        while self._used > self.capacity_bytes and self._entries:
            _key, entry = self._entries.popitem(last=False)
            self._used -= entry.size
            self.stats._evictions.inc()
            evicted = True
        if evicted:
            self._sync_gauges()

    # -- coherence ---------------------------------------------------------------
    def patch(self, path: str, brick_id: int, offset: int, data: bytes) -> None:
        """Apply a write-through update to a cached brick, if present."""
        entry = self._entries.get((path, brick_id))
        if entry is None:
            return
        if offset + len(data) > entry.size:
            # write beyond the cached image (shouldn't happen for fixed
            # bricks): drop the stale entry instead of guessing
            self.invalidate_brick(path, brick_id)
            return
        entry.data[offset : offset + len(data)] = data
        self._entries.move_to_end((path, brick_id))
        self.stats._patched.inc()

    def invalidate_brick(self, path: str, brick_id: int) -> None:
        entry = self._entries.pop((path, brick_id), None)
        if entry is not None:
            self._used -= entry.size
            self.stats._invalidations.inc()
            self._sync_gauges()

    def invalidate_file(self, path: str) -> None:
        """Drop every cached brick of one file (remove/rename/growth)."""
        victims = [key for key in self._entries if key[0] == path]
        for key in victims:
            self._used -= self._entries.pop(key).size
        self.stats._invalidations.inc(len(victims))
        self._sync_gauges()

    def clear(self) -> None:
        self.stats._invalidations.inc(len(self._entries))
        self._entries.clear()
        self._used = 0
        self._sync_gauges()
