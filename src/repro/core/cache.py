"""Client-side brick cache.

The paper's servers inherit "I/O optimizations such as caching and
prefetching of the local file system"; on the *client* side, repeated
region reads (e.g. the out-of-core multiply's row panels) re-fetch the
same bricks over the network.  :class:`BrickCache` is an LRU,
whole-brick, write-through cache a :class:`~repro.core.filesystem.DPFS`
instance can share across handles.

Design points:

- the unit is the brick — DPFS's "basic accessing unit" (§3) — keyed by
  ``(file path, brick id)``;
- write-through: writes go to the servers immediately, and any cached
  copy of the touched brick is patched in place, so reads after writes
  are always coherent within the process;
- files are invalidated wholesale on remove/rename/growth;
- bricks larger than a quarter of the capacity are never cached (one
  array-level chunk must not evict the whole working set).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["CacheStats", "BrickCache"]


@dataclass
class CacheStats:
    """Observability counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    patched_writes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    data: bytearray
    size: int = field(init=False)

    def __post_init__(self) -> None:
        self.size = len(self.data)


class BrickCache:
    """LRU cache of whole bricks, bounded by total bytes."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple[str, int], _Entry] = OrderedDict()
        self._used = 0
        self.stats = CacheStats()

    # -- bookkeeping ---------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def cacheable(self, size: int) -> bool:
        """Whether a brick of ``size`` bytes is admitted at all."""
        return size <= self.capacity_bytes // 4

    # -- lookup ---------------------------------------------------------------
    def get(self, path: str, brick_id: int) -> bytes | None:
        """Whole-brick lookup; promotes on hit."""
        entry = self._entries.get((path, brick_id))
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end((path, brick_id))
        self.stats.hits += 1
        return bytes(entry.data)

    def peek(self, path: str, brick_id: int) -> bool:
        """Presence check without touching LRU order or stats."""
        return (path, brick_id) in self._entries

    # -- population -------------------------------------------------------------
    def put(self, path: str, brick_id: int, data: bytes) -> None:
        """Insert/replace a whole brick (no-op when not cacheable)."""
        if not self.cacheable(len(data)):
            return
        key = (path, brick_id)
        old = self._entries.pop(key, None)
        if old is not None:
            self._used -= old.size
        entry = _Entry(bytearray(data))
        self._entries[key] = entry
        self._used += entry.size
        self.stats.insertions += 1
        self._evict()

    def _evict(self) -> None:
        while self._used > self.capacity_bytes and self._entries:
            _key, entry = self._entries.popitem(last=False)
            self._used -= entry.size
            self.stats.evictions += 1

    # -- coherence ---------------------------------------------------------------
    def patch(self, path: str, brick_id: int, offset: int, data: bytes) -> None:
        """Apply a write-through update to a cached brick, if present."""
        entry = self._entries.get((path, brick_id))
        if entry is None:
            return
        if offset + len(data) > entry.size:
            # write beyond the cached image (shouldn't happen for fixed
            # bricks): drop the stale entry instead of guessing
            self.invalidate_brick(path, brick_id)
            return
        entry.data[offset : offset + len(data)] = data
        self._entries.move_to_end((path, brick_id))
        self.stats.patched_writes += 1

    def invalidate_brick(self, path: str, brick_id: int) -> None:
        entry = self._entries.pop((path, brick_id), None)
        if entry is not None:
            self._used -= entry.size
            self.stats.invalidations += 1

    def invalidate_file(self, path: str) -> None:
        """Drop every cached brick of one file (remove/rename/growth)."""
        victims = [key for key in self._entries if key[0] == path]
        for key in victims:
            self._used -= self._entries.pop(key).size
        self.stats.invalidations += len(victims)

    def clear(self) -> None:
        self.stats.invalidations += len(self._entries)
        self._entries.clear()
        self._used = 0
