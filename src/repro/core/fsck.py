"""File system consistency checker (fsck) for DPFS.

The paper's reliability story is "the transaction mechanism provided by
database systems can help maintain meta data consistency" (§5); fsck is
the complementary tool that cross-checks the *two* sources of truth —
the metadata database and the servers' subfiles — and reports (or
repairs) drift between them:

=====================  =====================================================
``pending-intent``     the intent journal holds a multi-step operation a
                       crashed client never finished (repair: run the
                       recovery engine — roll forward past the commit
                       step, roll back before it)
``missing-subfile``    a bricklist references a server where the subfile
                       does not exist (repair: recreate empty; sparse
                       semantics make unwritten bricks read as zeros)
``missing-replica``    a replica bricklist references a server where the
                       replica subfile does not exist (repair: recreate
                       and refill every replica brick from its primary)
``orphan-subfile``     a server holds a subfile no metadata references
                       (repair: delete)
``bad-brick-map``      a file's distribution rows are not a permutation of
                       its bricks (unrepairable: reported only)
``dangling-dir-entry`` a directory row lists a child with no attr/dir row
                       (repair: unlink)
``unlinked-file``      a file has attr rows but no directory entry
                       (repair: link into its parent, creating parents)
=====================  =====================================================

With ``deep=True`` (the default) fsck additionally runs the scrubber's
copy verification over every file, surfacing ``checksum-mismatch``,
``stale-checksum``, ``replica-divergence`` and ``unreadable-copy``
findings with the same repair semantics as ``dpfs scrub``
(:mod:`repro.core.scrub`).

    report = fsck(fs)
    if not report.clean:
        fsck(fs, repair=True)
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import DPFSError

if TYPE_CHECKING:  # pragma: no cover
    from .filesystem import DPFS

__all__ = ["Finding", "FsckReport", "fsck"]


@dataclass(frozen=True)
class Finding:
    """One inconsistency."""

    kind: str
    path: str
    detail: str
    repaired: bool = False

    def __str__(self) -> str:
        mark = "FIXED" if self.repaired else "FOUND"
        return f"[{mark}] {self.kind}: {self.path} — {self.detail}"


@dataclass
class FsckReport:
    """Outcome of one consistency pass."""

    files_checked: int = 0
    directories_checked: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_kind(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def __str__(self) -> str:
        lines = [
            f"fsck: {self.files_checked} files, "
            f"{self.directories_checked} directories, "
            f"{len(self.findings)} finding(s)"
        ]
        lines += [str(f) for f in self.findings]
        return "\n".join(lines)


def fsck(fs: "DPFS", repair: bool = False, *, deep: bool = True) -> FsckReport:
    """Cross-check metadata against storage; optionally repair.

    ``deep=True`` adds the scrubber's checksum verification of every
    brick copy (reads all data; disable for a metadata-only pass).
    """
    from .brick import replica_subfile
    from .scrub import verify_file_copies

    report = FsckReport()
    meta = fs.meta
    backend = fs.backend

    # -- pass 0: crashed multi-step operations (intent journal) ----------------
    # Run before everything else: recovering a half-done remove/rename
    # is what makes the later passes see a consistent tree.
    pending = fs.intents.pending()
    if pending:
        outcome = {}
        if repair:
            outcome = {a.intent_id: a for a in fs.recover().actions}
        for intent in pending:
            action = outcome.get(intent.intent_id)
            detail = (
                f"{intent.op} interrupted mid-flight (steps done: "
                f"{', '.join(intent.done) if intent.done else 'none'})"
            )
            if action is not None and not action.ok and action.detail:
                detail += f" — recovery stuck: {action.detail}"
            report.findings.append(
                Finding(
                    "pending-intent",
                    intent.path,
                    detail,
                    bool(action and action.ok),
                )
            )

    referenced: set[str] = set()

    # -- pass 1: every file's brick map and subfiles --------------------------
    for path in meta.iter_files():
        report.files_checked += 1
        referenced.add(path)
        try:
            record, bmap = meta.load_file(path)
        except DPFSError as exc:
            report.findings.append(
                Finding("bad-brick-map", path, str(exc))
            )
            continue
        for server in range(backend.n_servers):
            if not bmap.bricklist(server):
                continue
            if not backend.subfile_exists(server, path):
                repaired = False
                if repair:
                    backend.create_subfile(server, path)
                    repaired = True
                report.findings.append(
                    Finding(
                        "missing-subfile",
                        path,
                        f"server {server} holds bricks but no subfile",
                        repaired,
                    )
                )
        if record.replicas > 1:
            rname = replica_subfile(path)
            referenced.add(rname)
            try:
                rmap = meta.load_replica_map(path, record)
            except DPFSError as exc:
                report.findings.append(
                    Finding("bad-brick-map", path, f"replica map: {exc}")
                )
                continue
            for server in range(backend.n_servers):
                if not rmap.bricklists[server]:
                    continue
                if not backend.subfile_exists(server, rname):
                    repaired = False
                    if repair:
                        repaired = fs.refill_replica_subfile(path, server)
                    report.findings.append(
                        Finding(
                            "missing-replica",
                            path,
                            f"server {server} holds replica bricks but no "
                            f"replica subfile",
                            repaired,
                        )
                    )

    # -- deep pass: checksum-verify every copy of every brick ------------------
    if deep:
        for path in meta.iter_files():
            try:
                copy_findings = verify_file_copies(fs, path, repair=repair)
            except DPFSError:
                continue  # already reported as bad-brick-map above
            for cf in copy_findings:
                report.findings.append(
                    Finding(
                        cf.kind,
                        cf.path,
                        f"brick {cf.brick_id}"
                        + (f" server {cf.server}" if cf.server >= 0 else "")
                        + f": {cf.detail}",
                        cf.repaired,
                    )
                )

    # -- pass 2: directory tree ↔ attr rows -----------------------------------
    dir_rows: dict[str, tuple[list[str], list[str]]] = {}
    stack = ["/"]
    seen_dirs: set[str] = set()
    while stack:
        current = stack.pop()
        if current in seen_dirs:
            continue
        seen_dirs.add(current)
        report.directories_checked += 1
        try:
            subs, files = meta.listdir(current)
        except DPFSError:
            continue
        dir_rows[current] = (subs, files)
        for sub in subs:
            child = posixpath.join(current, sub)
            if not meta.dir_exists(child):
                repaired = False
                if repair:
                    _unlink_dir_entry(meta, current, sub, is_dir=True)
                    repaired = True
                report.findings.append(
                    Finding(
                        "dangling-dir-entry",
                        child,
                        f"listed in {current} but has no directory row",
                        repaired,
                    )
                )
            else:
                stack.append(child)
        for name in files:
            child = posixpath.join(current, name)
            if not meta.file_exists(child):
                repaired = False
                if repair:
                    _unlink_dir_entry(meta, current, name, is_dir=False)
                    repaired = True
                report.findings.append(
                    Finding(
                        "dangling-dir-entry",
                        child,
                        f"listed in {current} but has no attr row",
                        repaired,
                    )
                )

    linked_files = {
        posixpath.join(d, name)
        for d, (_subs, files) in dir_rows.items()
        for name in files
    }
    for path in meta.iter_files():
        if path not in linked_files:
            repaired = False
            if repair:
                _relink_file(meta, path)
                repaired = True
            report.findings.append(
                Finding(
                    "unlinked-file",
                    path,
                    "attr row exists but no directory lists it",
                    repaired,
                )
            )

    # -- pass 3: orphan subfiles on the servers --------------------------------
    for server in range(backend.n_servers):
        for name in backend.list_subfiles(server):
            if name not in referenced:
                repaired = False
                if repair:
                    backend.delete_subfile(server, name)
                    repaired = True
                report.findings.append(
                    Finding(
                        "orphan-subfile",
                        name,
                        f"server {server} holds a subfile no metadata references",
                        repaired,
                    )
                )
    return report


def _unlink_dir_entry(meta, parent: str, name: str, *, is_dir: bool) -> None:
    subs, files = meta.listdir(parent)
    if is_dir:
        subs = [s for s in subs if s != name]
        meta.db.execute(
            "UPDATE dpfs_directory SET sub_dirs = ? WHERE main_dir = ?",
            [subs, parent],
        )
    else:
        files = [f for f in files if f != name]
        meta.db.execute(
            "UPDATE dpfs_directory SET files = ? WHERE main_dir = ?",
            [files, parent],
        )


def _relink_file(meta, path: str) -> None:
    parent, base = posixpath.split(path)
    meta.makedirs(parent)
    subs, files = meta.listdir(parent)
    if base not in files:
        meta.db.execute(
            "UPDATE dpfs_directory SET files = ? WHERE main_dir = ?",
            [sorted(files + [base]), parent],
        )
