"""The DPFS hint structure (§6).

"Only the user has the best picture of how her data will be utilized"
— the hint carried by DPFS-Open conveys that knowledge: the file level,
the array geometry, the brick (striping unit) shape, the HPF pattern
for array-level files, the suggested number of I/O nodes, and the
placement policy.

:func:`Hint.validate` normalises/completes a hint and
:meth:`Hint.striping` builds the matching striping method.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from collections.abc import Sequence

from ..errors import InvalidHint
from ..hpf.distribution import Dist, parse_pattern
from ..util import ceil_div
from .striping import (
    ArrayStriping,
    FileLevel,
    LinearStriping,
    MultidimStriping,
    StripingMethod,
)

__all__ = ["Hint", "DEFAULT_BRICK_SIZE"]

#: Default linear brick size (64 KiB — the granularity the paper's
#: 64K-row example implies).
DEFAULT_BRICK_SIZE = 64 * 1024


@dataclass(frozen=True)
class Hint:
    """User knowledge conveyed to DPFS-Open at file-creation time."""

    level: FileLevel = FileLevel.LINEAR
    #: logical array geometry (multidim / array levels)
    array_shape: tuple[int, ...] | None = None
    element_size: int = 1
    #: N-d striping unit for multidim files
    brick_shape: tuple[int, ...] | None = None
    #: byte striping unit for linear files
    brick_size: int = DEFAULT_BRICK_SIZE
    #: HPF pattern for array-level files, e.g. "(BLOCK, *)"
    pattern: str | None = None
    #: number of application processes (array level: one chunk each)
    nprocs: int | None = None
    pgrid: tuple[int, ...] | None = None
    #: suggested number of I/O nodes (paper: an Open argument; kept in
    #: the hint so one structure carries all creation knowledge)
    io_nodes: int | None = None
    #: placement policy: "round_robin" or "greedy"
    placement: str = "round_robin"
    #: expected file size for linear files created by this open
    file_size: int = 0
    #: copies kept of every brick (1 = no redundancy); each copy of a
    #: brick lands on a distinct server
    replicas: int = 1

    # -- constructors for the three levels ---------------------------------
    @classmethod
    def linear(
        cls,
        file_size: int = 0,
        brick_size: int = DEFAULT_BRICK_SIZE,
        **kw,
    ) -> "Hint":
        return cls(
            level=FileLevel.LINEAR,
            file_size=file_size,
            brick_size=brick_size,
            **kw,
        )

    @classmethod
    def multidim(
        cls,
        array_shape: Sequence[int],
        element_size: int,
        brick_shape: Sequence[int],
        **kw,
    ) -> "Hint":
        return cls(
            level=FileLevel.MULTIDIM,
            array_shape=tuple(array_shape),
            element_size=element_size,
            brick_shape=tuple(brick_shape),
            **kw,
        )

    @classmethod
    def array(
        cls,
        array_shape: Sequence[int],
        element_size: int,
        pattern: str,
        nprocs: int,
        pgrid: Sequence[int] | None = None,
        **kw,
    ) -> "Hint":
        return cls(
            level=FileLevel.ARRAY,
            array_shape=tuple(array_shape),
            element_size=element_size,
            pattern=pattern,
            nprocs=nprocs,
            pgrid=tuple(pgrid) if pgrid is not None else None,
            **kw,
        )

    # -- validation ------------------------------------------------------
    def validate(self) -> "Hint":
        """Check consistency; returns a normalised copy."""
        hint = self
        if hint.element_size <= 0:
            raise InvalidHint("element_size must be positive")
        if hint.replicas < 1:
            raise InvalidHint("replicas must be >= 1")
        if hint.level is FileLevel.LINEAR:
            if hint.brick_size <= 0:
                raise InvalidHint("brick_size must be positive")
            if hint.file_size < 0:
                raise InvalidHint("file_size must be >= 0")
            return hint
        if hint.array_shape is None:
            raise InvalidHint(f"{hint.level.value} files need array_shape")
        if any(n <= 0 for n in hint.array_shape):
            raise InvalidHint("array_shape extents must be positive")
        if hint.level is FileLevel.MULTIDIM:
            brick_shape = hint.brick_shape
            if brick_shape is None:
                # Default: aim for bricks of DEFAULT_BRICK_SIZE bytes,
                # near-square tiles.
                target = max(1, hint.brick_size // hint.element_size)
                side = max(1, round(target ** (1.0 / len(hint.array_shape))))
                brick_shape = tuple(
                    min(side, n) for n in hint.array_shape
                )
                hint = replace(hint, brick_shape=brick_shape)
            if len(brick_shape) != len(hint.array_shape):
                raise InvalidHint("brick_shape rank != array_shape rank")
            if any(b <= 0 for b in brick_shape):
                raise InvalidHint("brick_shape extents must be positive")
            if any(b > n for b, n in zip(brick_shape, hint.array_shape)):
                raise InvalidHint("brick_shape exceeds array_shape")
            return hint
        # ARRAY level
        if hint.pattern is None:
            raise InvalidHint("array files need an HPF pattern")
        if hint.nprocs is None or hint.nprocs < 1:
            raise InvalidHint("array files need nprocs >= 1")
        symbols = parse_pattern(hint.pattern)
        if len(symbols) != len(hint.array_shape):
            raise InvalidHint("pattern rank != array rank")
        if any(s is Dist.CYCLIC for s in symbols):
            raise InvalidHint("array-level files support BLOCK/* patterns")
        if hint.pgrid is not None and math.prod(hint.pgrid) != hint.nprocs:
            raise InvalidHint("pgrid does not hold nprocs processors")
        return hint

    # -- derived quantities ---------------------------------------------------
    def striping(self) -> StripingMethod:
        """Build the striping method this hint describes."""
        hint = self.validate()
        if hint.level is FileLevel.LINEAR:
            return LinearStriping(hint.brick_size, hint.file_size)
        if hint.level is FileLevel.MULTIDIM:
            assert hint.array_shape is not None and hint.brick_shape is not None
            return MultidimStriping(
                hint.array_shape, hint.element_size, hint.brick_shape
            )
        assert hint.array_shape is not None and hint.pattern is not None
        assert hint.nprocs is not None
        return ArrayStriping(
            hint.array_shape,
            hint.element_size,
            hint.pattern,
            hint.nprocs,
            hint.pgrid,
        )

    def expected_bricks(self) -> int:
        """Brick count implied by the hint (before any growth)."""
        hint = self.validate()
        if hint.level is FileLevel.LINEAR:
            return ceil_div(hint.file_size, hint.brick_size) if hint.file_size else 0
        return self.striping().brick_count
