"""The three DPFS striping methods / file levels (§3).

Each method knows how to

- enumerate the file's bricks and their byte sizes (what the placement
  algorithm consumes at create time), and
- translate a logical request — a byte-extent list for linear files, an
  N-d :class:`~repro.hpf.regions.Region` for multidimensional and array
  files — into :class:`~repro.core.brick.BrickSlice` lists whose
  ``buffer_offset`` fields define the packed payload order.

Layouts
-------
*Linear* (§3.1): the file is a byte stream; brick ``b`` covers bytes
``[b·bs, (b+1)·bs)``.

*Multidimensional* (§3.2): the array is tiled by ``brick_shape``; bricks
are numbered row-major over the tile grid and each brick stores its
tile row-major, padded to the full tile volume when the array does not
divide evenly (so subfile offsets stay uniform).

*Array* (§3.3): one brick per processor chunk of an HPF distribution;
each brick stores its chunk row-major and brick sizes vary with chunk
volume.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence
from enum import Enum

from ..errors import StripingError
from ..hpf.distribution import Dist, decompose, grid_shape, parse_pattern, pattern_str
from ..hpf.regions import Region
from ..util import Extent, ceil_div
from .brick import BrickSlice

__all__ = [
    "FileLevel",
    "StripingMethod",
    "LinearStriping",
    "MultidimStriping",
    "ArrayStriping",
]


class FileLevel(Enum):
    """The three DPFS file levels, lowest (most general) first."""

    LINEAR = "linear"
    MULTIDIM = "multidim"
    ARRAY = "array"


class StripingMethod(ABC):
    """Common interface of the three striping methods."""

    level: FileLevel

    @abstractmethod
    def brick_sizes(self) -> list[int]:
        """Byte size of every brick, in brick-id order."""

    @property
    @abstractmethod
    def brick_count(self) -> int:
        ...

    @abstractmethod
    def total_bytes(self) -> int:
        """Logical file size in bytes (payload, excluding tile padding)."""

    @abstractmethod
    def slices_for_extents(self, extents: Sequence[Extent]) -> list[BrickSlice]:
        """Brick slices for a list of logical byte extents."""

    def slices_for_region(self, region: Region) -> list[BrickSlice]:
        """Brick slices for an N-d element region (array-aware levels)."""
        raise StripingError(
            f"{self.level.value} files do not support region addressing"
        )

    # -- shared helper -----------------------------------------------------
    @staticmethod
    def _merge(slices: list[BrickSlice]) -> list[BrickSlice]:
        """Merge payload-order-adjacent slices that abut inside one brick."""
        out: list[BrickSlice] = []
        for s in slices:
            if (
                out
                and out[-1].brick_id == s.brick_id
                and out[-1].offset + out[-1].length == s.offset
                and out[-1].buffer_offset + out[-1].length == s.buffer_offset
            ):
                prev = out[-1]
                out[-1] = BrickSlice(
                    prev.brick_id,
                    prev.offset,
                    prev.length + s.length,
                    prev.buffer_offset,
                )
            else:
                out.append(s)
        return out


class LinearStriping(StripingMethod):
    """§3.1 — the file is a stream of ``brick_size``-byte linear bricks."""

    level = FileLevel.LINEAR

    def __init__(self, brick_size: int, file_size: int) -> None:
        if brick_size <= 0:
            raise StripingError(f"brick size must be positive, got {brick_size}")
        if file_size < 0:
            raise StripingError(f"file size must be >= 0, got {file_size}")
        self.brick_size = brick_size
        self.file_size = file_size

    @property
    def brick_count(self) -> int:
        return ceil_div(self.file_size, self.brick_size) if self.file_size else 0

    def brick_sizes(self) -> list[int]:
        # The last brick is padded to full size on storage, like the tile
        # padding of the multidim level, so subfile offsets stay uniform.
        return [self.brick_size] * self.brick_count

    def total_bytes(self) -> int:
        return self.file_size

    def grow_to(self, new_size: int) -> int:
        """Grow the logical size; returns how many *new* bricks appeared."""
        if new_size < self.file_size:
            raise StripingError("linear files can only grow")
        old_bricks = self.brick_count
        self.file_size = new_size
        return self.brick_count - old_bricks

    def slices_for_extents(self, extents: Sequence[Extent]) -> list[BrickSlice]:
        slices: list[BrickSlice] = []
        payload = 0
        bs = self.brick_size
        for off, ln in extents:
            if off < 0 or ln < 0:
                raise StripingError(f"invalid extent ({off}, {ln})")
            if off + ln > self.file_size:
                raise StripingError(
                    f"extent [{off}, {off + ln}) beyond EOF {self.file_size}"
                )
            while ln > 0:
                brick = off // bs
                within = off - brick * bs
                take = min(bs - within, ln)
                slices.append(BrickSlice(brick, within, take, payload))
                off += take
                ln -= take
                payload += take
        return self._merge(slices)


class MultidimStriping(StripingMethod):
    """§3.2 — bricks are N-d tiles of the array (the paper's novelty)."""

    level = FileLevel.MULTIDIM

    def __init__(
        self,
        array_shape: Sequence[int],
        element_size: int,
        brick_shape: Sequence[int],
    ) -> None:
        if element_size <= 0:
            raise StripingError("element size must be positive")
        if len(array_shape) != len(brick_shape):
            raise StripingError("array/brick rank mismatch")
        if not array_shape:
            raise StripingError("array rank must be >= 1")
        for dim, (n, b) in enumerate(zip(array_shape, brick_shape)):
            if n <= 0 or b <= 0:
                raise StripingError(f"dimension {dim}: sizes must be positive")
            if b > n:
                raise StripingError(
                    f"dimension {dim}: brick extent {b} exceeds array extent {n}"
                )
        self.array_shape = tuple(array_shape)
        self.element_size = element_size
        self.brick_shape = tuple(brick_shape)
        #: tile-grid shape: bricks per dimension
        self.grid = tuple(
            ceil_div(n, b) for n, b in zip(self.array_shape, self.brick_shape)
        )
        self._brick_volume = math.prod(self.brick_shape)

    @property
    def rank(self) -> int:
        return len(self.array_shape)

    @property
    def brick_count(self) -> int:
        return math.prod(self.grid)

    def brick_sizes(self) -> list[int]:
        size = self._brick_volume * self.element_size
        return [size] * self.brick_count

    def total_bytes(self) -> int:
        return math.prod(self.array_shape) * self.element_size

    # -- brick geometry ----------------------------------------------------
    def brick_id_of(self, grid_coords: Sequence[int]) -> int:
        idx = 0
        for c, g in zip(grid_coords, self.grid):
            if not 0 <= c < g:
                raise StripingError(
                    f"grid coords {tuple(grid_coords)} outside grid {self.grid}"
                )
            idx = idx * g + c
        return idx

    def brick_region(self, brick_id: int) -> Region:
        """The array region a brick covers (clipped at array bounds)."""
        if not 0 <= brick_id < self.brick_count:
            raise StripingError(f"brick {brick_id} outside grid {self.grid}")
        coords = []
        rest = brick_id
        for g in reversed(self.grid):
            coords.append(rest % g)
            rest //= g
        coords.reverse()
        starts = tuple(c * b for c, b in zip(coords, self.brick_shape))
        stops = tuple(
            min(s + b, n)
            for s, b, n in zip(starts, self.brick_shape, self.array_shape)
        )
        return Region(starts, stops)

    def _within_brick_offset(self, cell: Sequence[int]) -> tuple[int, int]:
        """(brick_id, byte offset of `cell` inside its brick)."""
        grid_coords = tuple(c // b for c, b in zip(cell, self.brick_shape))
        local = tuple(c - g * b for c, g, b in zip(cell, grid_coords, self.brick_shape))
        idx = 0
        for c, b in zip(local, self.brick_shape):
            idx = idx * b + c
        return self.brick_id_of(grid_coords), idx * self.element_size

    # -- request translation ----------------------------------------------
    def slices_for_region(self, region: Region) -> list[BrickSlice]:
        if region.rank != self.rank:
            raise StripingError(
                f"region rank {region.rank} != array rank {self.rank}"
            )
        if not Region.full(self.array_shape).covers(region):
            raise StripingError(f"{region!r} outside array {self.array_shape}")
        slices: list[BrickSlice] = []
        payload = 0
        elem = self.element_size
        inner_brick = self.brick_shape[-1]
        for start_cell, run in region.rows():
            # Split the innermost run at brick boundaries.
            col = start_cell[-1]
            remaining = run
            while remaining > 0:
                take = min(inner_brick - (col % inner_brick), remaining)
                cell = tuple(start_cell[:-1]) + (col,)
                brick_id, within = self._within_brick_offset(cell)
                slices.append(
                    BrickSlice(brick_id, within, take * elem, payload)
                )
                payload += take * elem
                col += take
                remaining -= take
        return self._merge(slices)

    def slices_for_extents(self, extents: Sequence[Extent]) -> list[BrickSlice]:
        """Linear byte extents over the *row-major flattened* array.

        Provided so a multidim file can still be read as a stream (e.g.
        export to a sequential file, §7): each flattened extent is
        converted to the array cells it covers, row by row.
        """
        slices: list[BrickSlice] = []
        payload = 0
        elem = self.element_size
        row_len = self.array_shape[-1]
        total = self.total_bytes()
        for off, ln in extents:
            if off < 0 or ln < 0 or off + ln > total:
                raise StripingError(f"extent ({off}, {ln}) outside file")
            if off % elem or ln % elem:
                raise StripingError(
                    "linear access to a multidim file must be element-aligned"
                )
            first = off // elem
            count = ln // elem
            while count > 0:
                coords = []
                rest = first
                for n in reversed(self.array_shape):
                    coords.append(rest % n)
                    rest //= n
                coords.reverse()
                run = min(row_len - coords[-1], count)
                sub = self.slices_for_region(
                    Region(
                        tuple(coords),
                        tuple(c + 1 for c in coords[:-1]) + (coords[-1] + run,),
                    )
                )
                for s in sub:
                    slices.append(
                        BrickSlice(
                            s.brick_id, s.offset, s.length, payload + s.buffer_offset
                        )
                    )
                payload += run * elem
                first += run
                count -= run
        return self._merge(slices)


class ArrayStriping(StripingMethod):
    """§3.3 — one coarse-grain brick per processor chunk (HPF notation)."""

    level = FileLevel.ARRAY

    def __init__(
        self,
        array_shape: Sequence[int],
        element_size: int,
        pattern: str | Sequence[Dist | str],
        nprocs: int,
        pgrid: Sequence[int] | None = None,
    ) -> None:
        if element_size <= 0:
            raise StripingError("element size must be positive")
        if nprocs < 1:
            raise StripingError("array striping needs at least one processor")
        self.array_shape = tuple(array_shape)
        self.element_size = element_size
        self.pattern = parse_pattern(pattern)
        if len(self.pattern) != len(self.array_shape):
            raise StripingError("pattern rank != array rank")
        if any(p is Dist.CYCLIC for p in self.pattern):
            raise StripingError(
                "array-level files support BLOCK/* patterns (per the paper); "
                "CYCLIC chunks are not single bricks"
            )
        self.nprocs = nprocs
        self.pgrid = (
            tuple(pgrid) if pgrid is not None else grid_shape(self.pattern, nprocs)
        )
        self.chunks: list[Region] = decompose(
            self.array_shape, self.pattern, nprocs, self.pgrid
        )

    @property
    def rank(self) -> int:
        return len(self.array_shape)

    @property
    def brick_count(self) -> int:
        return self.nprocs

    def brick_sizes(self) -> list[int]:
        # Empty chunks (more processors than block slots) still get a
        # 1-byte placeholder so every brick id resolves to a location.
        return [
            max(chunk.volume, 1) * self.element_size for chunk in self.chunks
        ]

    def total_bytes(self) -> int:
        return math.prod(self.array_shape) * self.element_size

    def pattern_string(self) -> str:
        return pattern_str(self.pattern)

    def chunk_of(self, rank: int) -> Region:
        if not 0 <= rank < self.nprocs:
            raise StripingError(f"rank {rank} outside [0, {self.nprocs})")
        return self.chunks[rank]

    # -- request translation ------------------------------------------------
    def slices_for_region(self, region: Region) -> list[BrickSlice]:
        if region.rank != self.rank:
            raise StripingError("region rank mismatch")
        if not Region.full(self.array_shape).covers(region):
            raise StripingError(f"{region!r} outside array {self.array_shape}")
        slices: list[BrickSlice] = []
        payload = 0
        elem = self.element_size
        # Walk the region's rows (payload order) and, for each run, find
        # the chunk(s) covering it.  Chunks tile the array, and within one
        # row a run can cross chunk boundaries only along the innermost
        # distributed dimension.
        for start_cell, run in region.rows():
            col = start_cell[-1]
            remaining = run
            while remaining > 0:
                cell = tuple(start_cell[:-1]) + (col,)
                brick_id = self._owner_of(cell)
                chunk = self.chunks[brick_id]
                take = min(chunk.stops[-1] - col, remaining)
                local = [c - s for c, s in zip(cell, chunk.starts)]
                within = 0
                for c, extent in zip(local, chunk.shape):
                    within = within * extent + c
                slices.append(
                    BrickSlice(brick_id, within * elem, take * elem, payload)
                )
                payload += take * elem
                col += take
                remaining -= take
        return self._merge(slices)

    def _owner_of(self, cell: Sequence[int]) -> int:
        # Under the HPF BLOCK rule the owner grid coordinate is a direct
        # division — no search needed.
        rank = 0
        for c, n, symbol, g in zip(
            cell, self.array_shape, self.pattern, self.pgrid
        ):
            if symbol is Dist.STAR:
                coord = 0
            else:
                coord = min(c // ceil_div(n, g), g - 1)
            rank = rank * g + coord
        chunk = self.chunks[rank]
        if chunk.empty or not chunk.contains(cell):  # pragma: no cover
            raise StripingError(f"cell {tuple(cell)} owned by no chunk")
        return rank

    def slices_for_extents(self, extents: Sequence[Extent]) -> list[BrickSlice]:
        """Flattened row-major byte access (export path), as for multidim."""
        slices: list[BrickSlice] = []
        payload = 0
        elem = self.element_size
        row_len = self.array_shape[-1]
        total = self.total_bytes()
        for off, ln in extents:
            if off < 0 or ln < 0 or off + ln > total:
                raise StripingError(f"extent ({off}, {ln}) outside file")
            if off % elem or ln % elem:
                raise StripingError(
                    "linear access to an array file must be element-aligned"
                )
            first = off // elem
            count = ln // elem
            while count > 0:
                coords = []
                rest = first
                for n in reversed(self.array_shape):
                    coords.append(rest % n)
                    rest //= n
                coords.reverse()
                run = min(row_len - coords[-1], count)
                sub = self.slices_for_region(
                    Region(
                        tuple(coords),
                        tuple(c + 1 for c in coords[:-1]) + (coords[-1] + run,),
                    )
                )
                for s in sub:
                    slices.append(
                        BrickSlice(
                            s.brick_id, s.offset, s.length, payload + s.buffer_offset
                        )
                    )
                payload += run * elem
                first += run
                count -= run
        return self._merge(slices)
