"""Brick placement algorithms: round-robin and the greedy algorithm (§4.1).

The paper's greedy algorithm (Fig. 8)::

    B = num of bricks;  S = num of servers;
    initialize P[j], j = 0 to S;      # normalized performance numbers
    A[j] = 0, j = 0 to S;
    for i = 0 to B {
        find k where A[k] + P[k] <= A[j] + P[j] for all j;
        assign brick i to server k;
        A[k] = A[k] + P[k];
    }

``P[k]`` is the normalized access time of one brick on server ``k``
(fastest = 1, slower = larger integers), so ``A[k]`` tracks the total
time server ``k`` would spend serving its bricks and the rule greedily
keeps the projected maximum low.  Fast servers end up with ~``1/P[k]``
of the bricks: with P = 1 vs 3 the fast class receives 3× the bricks,
exactly what §8.2 reports.

Tie-break: the paper's pseudocode leaves ties unspecified; replaying the
worked example of Fig. 9 (32 bricks over 4 servers) shows its
assignments correspond to P = [1, 2, 1, 2] with ties broken toward the
*fastest* (smallest P), then lowest index.  We use that deterministic
rule and reproduce Fig. 9 brick-for-brick (test-asserted).

Policies are stateful so that growable (linear) files can keep
appending bricks under the same rule.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from ..errors import PlacementError
from .brick import BrickMap, ReplicaMap

__all__ = [
    "PlacementPolicy",
    "RoundRobin",
    "Greedy",
    "build_brick_map",
    "build_replicated_maps",
    "make_policy",
]


class PlacementPolicy(ABC):
    """Assigns successive bricks to servers; implementations keep state."""

    def __init__(self, n_servers: int) -> None:
        if n_servers < 1:
            raise PlacementError("placement needs at least one server")
        self.n_servers = n_servers

    @abstractmethod
    def assign_next(self) -> int:
        """Server index for the next brick."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Identifier persisted in file metadata ('round_robin', 'greedy')."""

    def assign(self, n_bricks: int) -> list[int]:
        """Convenience: assignment vector for ``n_bricks`` bricks."""
        return [self.assign_next() for _ in range(n_bricks)]

    @abstractmethod
    def assign_excluding(self, exclude: set[int]) -> int:
        """Server for the next copy of the *current* brick, never one in
        ``exclude`` — replica copies of a brick must land on distinct
        servers.  Advances policy state exactly like :meth:`assign_next`.
        """

    def assign_replicas(self, n_copies: int) -> list[int]:
        """Distinct servers for all copies of the next brick.

        The first entry is the primary; the rest are replicas.  Raises
        :class:`PlacementError` when ``n_copies`` exceeds the server
        count (a brick can't have two copies on one server).
        """
        if n_copies > self.n_servers:
            raise PlacementError(
                f"{n_copies} copies need {n_copies} distinct servers, "
                f"only {self.n_servers} available"
            )
        chosen: list[int] = [self.assign_next()]
        while len(chosen) < n_copies:
            chosen.append(self.assign_excluding(set(chosen)))
        return chosen


class RoundRobin(PlacementPolicy):
    """Brick *i* goes to server ``i mod S`` (Fig. 3)."""

    def __init__(self, n_servers: int, start: int = 0) -> None:
        super().__init__(n_servers)
        self._next = start % n_servers

    @property
    def name(self) -> str:
        return "round_robin"

    def assign_next(self) -> int:
        server = self._next
        self._next = (self._next + 1) % self.n_servers
        return server

    def assign_excluding(self, exclude: set[int]) -> int:
        for _ in range(self.n_servers):
            server = self._next
            self._next = (self._next + 1) % self.n_servers
            if server not in exclude:
                return server
        raise PlacementError("every server excluded")


class Greedy(PlacementPolicy):
    """The paper's greedy algorithm over normalized performance numbers."""

    def __init__(self, performance: Sequence[float]) -> None:
        super().__init__(len(performance))
        if any(p <= 0 for p in performance):
            raise PlacementError("performance numbers must be positive")
        self.performance = [float(p) for p in performance]
        self.accumulated = [0.0] * self.n_servers

    @property
    def name(self) -> str:
        return "greedy"

    def assign_next(self) -> int:
        best = 0
        best_key = (
            self.accumulated[0] + self.performance[0],
            self.performance[0],
            0,
        )
        for k in range(1, self.n_servers):
            key = (
                self.accumulated[k] + self.performance[k],
                self.performance[k],
                k,
            )
            if key < best_key:
                best_key = key
                best = k
        self.accumulated[best] += self.performance[best]
        return best

    def assign_excluding(self, exclude: set[int]) -> int:
        best = -1
        best_key: tuple[float, float, int] | None = None
        for k in range(self.n_servers):
            if k in exclude:
                continue
            key = (
                self.accumulated[k] + self.performance[k],
                self.performance[k],
                k,
            )
            if best_key is None or key < best_key:
                best_key = key
                best = k
        if best < 0:
            raise PlacementError("every server excluded")
        self.accumulated[best] += self.performance[best]
        return best

    @classmethod
    def resume(
        cls, performance: Sequence[float], bricks_per_server: Sequence[int]
    ) -> "Greedy":
        """Rebuild policy state for a file that already has bricks placed."""
        policy = cls(performance)
        if len(bricks_per_server) != policy.n_servers:
            raise PlacementError("bricks_per_server length mismatch")
        policy.accumulated = [
            count * p for count, p in zip(bricks_per_server, policy.performance)
        ]
        return policy


def make_policy(
    name: str,
    n_servers: int,
    performance: Sequence[float] | None = None,
) -> PlacementPolicy:
    """Factory used by the file system when creating files from hints."""
    if name == "round_robin":
        return RoundRobin(n_servers)
    if name == "greedy":
        if performance is None:
            raise PlacementError("greedy placement needs performance numbers")
        if len(performance) != n_servers:
            raise PlacementError(
                f"{len(performance)} performance numbers for {n_servers} servers"
            )
        return Greedy(performance)
    raise PlacementError(f"unknown placement policy {name!r}")


def build_brick_map(
    policy: PlacementPolicy, brick_sizes: Sequence[int]
) -> BrickMap:
    """Run a placement policy over all bricks of a file."""
    bmap = BrickMap(n_servers=policy.n_servers)
    for size in brick_sizes:
        bmap.append(policy.assign_next(), size)
    return bmap


def build_replicated_maps(
    policy: PlacementPolicy, brick_sizes: Sequence[int], replicas: int
) -> tuple[BrickMap, ReplicaMap]:
    """Place every brick ``replicas`` times on distinct servers.

    The first copy of each brick goes into the primary :class:`BrickMap`
    (identical to :func:`build_brick_map` when ``replicas == 1``); extra
    copies go into a :class:`ReplicaMap`.  Greedy weights are charged
    once per copy, so a 2× replicated file loads servers like a file
    with twice the bricks.
    """
    if replicas < 1:
        raise PlacementError(f"replicas must be >= 1, got {replicas}")
    bmap = BrickMap(n_servers=policy.n_servers)
    rmap = ReplicaMap.empty(policy.n_servers, list(brick_sizes))
    for brick_id, size in enumerate(brick_sizes):
        servers = policy.assign_replicas(replicas)
        bmap.append(servers[0], size)
        if len(servers) > 1:
            rmap.append(brick_id, servers[1:], size)
    return bmap, rmap
