"""End-to-end brick checksums.

Every brick payload is protected by a 32-bit CRC that is computed on
the client, stored in file metadata, verified on full-brick reads, and
re-verified at rest by the scrubber (:mod:`repro.core.scrub`).  The
same routine protects wire frames (:mod:`repro.net.protocol`).

Algorithm selection: CRC32C (Castagnoli) is the checksum of choice for
storage systems (iSCSI, ext4, GPFS descendants) because commodity CPUs
compute it in hardware.  Python only exposes hardware CRC32C through
third-party extensions, so we pick the best implementation available
and *record the algorithm name in metadata* so stored checksums remain
verifiable even if the environment changes:

``crc32c``
    the C extension (google's ``crc32c`` package) when importable —
    hardware Castagnoli;
``crc32``
    :func:`zlib.crc32` (IEEE polynomial, C speed) — the default
    fallback for data being written *now*;
pure-python Castagnoli
    kept as a slow compatibility path so metadata written under a
    ``crc32c``-capable interpreter still verifies here.

All algorithms return an unsigned 32-bit int; a brick's stored checksum
is only ever compared against a recomputation under the *same* named
algorithm, so mixing environments degrades to a re-scrub, never to a
false corruption verdict.
"""

from __future__ import annotations

import zlib
from typing import Callable

__all__ = [
    "CRC_ALGORITHM",
    "checksum",
    "checksum_fn",
    "crc32c_soft",
]

_CASTAGNOLI = 0x82F63B78


def _build_table() -> list[int]:
    table = []
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ _CASTAGNOLI if c & 1 else c >> 1
        table.append(c)
    return table


_SOFT_TABLE = _build_table()


def crc32c_soft(data: bytes, crc: int = 0) -> int:
    """Pure-python CRC32C (Castagnoli) — compatibility path only."""
    crc ^= 0xFFFFFFFF
    table = _SOFT_TABLE
    for b in data:
        crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def _crc32(data: bytes, crc: int = 0) -> int:
    return zlib.crc32(data, crc) & 0xFFFFFFFF


try:  # pragma: no cover - depends on environment
    from crc32c import crc32c as _crc32c_hw  # type: ignore[import-not-found]

    def _crc32c(data: bytes, crc: int = 0) -> int:
        return _crc32c_hw(data, crc) & 0xFFFFFFFF

    CRC_ALGORITHM = "crc32c"
except ImportError:
    _crc32c = crc32c_soft
    CRC_ALGORITHM = "crc32"

#: name → implementation; every name ever used as a file's ``crc_algo``
#: must stay resolvable here so old metadata keeps verifying
_ALGORITHMS: dict[str, Callable[[bytes, int], int]] = {
    "crc32": _crc32,
    "crc32c": _crc32c,
}


def checksum_fn(algo: str) -> Callable[[bytes, int], int]:
    """Implementation for a named algorithm (KeyError on unknown)."""
    return _ALGORITHMS[algo]


def checksum(data: bytes, algo: str = CRC_ALGORITHM) -> int:
    """32-bit checksum of ``data`` under the named algorithm."""
    return _ALGORITHMS[algo](data, 0)
