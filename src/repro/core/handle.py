"""DPFS file handles — the object DPFS-Open returns (§6).

A handle executes logical reads/writes by

1. translating them to brick slices with the file's striping method,
2. planning wire requests (combined per server, or one per slice —
   §4.2) against the file's brick map, and
3. gathering/scattering payload bytes through the storage backend.

Three addressing styles are offered:

``read``/``write``
    plain byte streams (natural for linear files),
``read_type``/``write_type``
    MPI-IO derived datatypes: the typemap describes *file* layout, the
    payload is packed bytes,
``read_array``/``write_array``
    NumPy arrays against N-d element regions (multidim/array files).

``rank`` identifies the calling process in a parallel program; it seeds
the staggered schedule of combined requests.  ``stats`` counts requests
and bytes for tests and the §8 harness.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..datatypes import Datatype
from ..errors import BadFileHandle, FileSystemError, StripingError
from ..hpf.regions import Region
from ..obs.registry import MetricsRegistry
from ..obs.trace import span
from ..util import Extent
from .brick import BrickMap, BrickSlice
from .combine import plan_requests
from .metadata import FileRecord
from .striping import FileLevel, LinearStriping, StripingMethod

if TYPE_CHECKING:  # pragma: no cover
    from .filesystem import DPFS

__all__ = ["FileHandle", "IOStats"]


@dataclass
class IOStats:
    """Counters of the traffic a handle generated.

    Updated from dispatcher worker threads, so every mutation goes
    through :meth:`record` under a lock.  Latency accounting is split
    three ways so retries cannot be double-read: per server,
    ``per_server_latency_s`` is total wall time (failed attempts and
    backoff included), ``per_server_service_s`` is the successful
    attempt alone, and ``per_server_backoff_s`` the retry sleeps — so
    ``latency >= service + backoff`` holds per server and the remainder
    is failed-attempt time.  A handle's stats are a handle-scoped view;
    :meth:`bind` forwards the same events into the file system's
    :class:`~repro.obs.registry.MetricsRegistry`, which is the
    system-wide source of truth (``DPFS.metrics``).  Note the registry's
    ``dpfs_dispatch_retries_total`` also counts retries of requests
    that ultimately failed, which no handle ever observes.
    """

    requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bricks_touched: int = 0
    prefetched_bricks: int = 0
    retries: int = 0
    per_server_requests: dict[int, int] = field(default_factory=dict)
    per_server_retries: dict[int, int] = field(default_factory=dict)
    per_server_latency_s: dict[int, float] = field(default_factory=dict)
    per_server_service_s: dict[int, float] = field(default_factory=dict)
    per_server_backoff_s: dict[int, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _fwd: tuple | None = field(default=None, repr=False, compare=False)

    def bind(self, registry: MetricsRegistry) -> "IOStats":
        """Mirror this handle's events into the shared registry.

        Holds the raw series cells (``_cell_for``), not the counter
        objects: :meth:`record` runs once per dispatched request, and a
        direct ``cell.v += n`` under the cell lock is the cheapest
        thread-safe increment available.
        """
        self._fwd = (
            registry.counter(
                "dpfs_io_bytes_read_total", "payload bytes read by handles"
            )._cell_for(()),
            registry.counter(
                "dpfs_io_bytes_written_total", "payload bytes written by handles"
            )._cell_for(()),
            registry.counter(
                "dpfs_io_bricks_touched_total", "bricks covered by handle requests"
            )._cell_for(()),
            registry.counter(
                "dpfs_io_prefetched_bricks_total", "bricks pulled by read-ahead"
            )._cell_for(()),
        )
        return self

    def record(
        self,
        server: int,
        nbytes: int,
        *,
        is_read: bool,
        bricks: int,
        latency_s: float = 0.0,
        retries: int = 0,
        service_s: float = 0.0,
        backoff_s: float = 0.0,
    ) -> None:
        with self._lock:
            self.requests += 1
            self.bricks_touched += bricks
            self.retries += retries
            self.per_server_requests[server] = (
                self.per_server_requests.get(server, 0) + 1
            )
            if retries:
                self.per_server_retries[server] = (
                    self.per_server_retries.get(server, 0) + retries
                )
            if backoff_s:
                self.per_server_backoff_s[server] = (
                    self.per_server_backoff_s.get(server, 0.0) + backoff_s
                )
            self.per_server_latency_s[server] = (
                self.per_server_latency_s.get(server, 0.0) + latency_s
            )
            self.per_server_service_s[server] = (
                self.per_server_service_s.get(server, 0.0) + service_s
            )
            if is_read:
                self.bytes_read += nbytes
            else:
                self.bytes_written += nbytes
        fwd = self._fwd
        if fwd is not None:
            cell = fwd[0] if is_read else fwd[1]
            with cell.lock:
                cell.v += nbytes
            cell = fwd[2]
            with cell.lock:
                cell.v += bricks

    def note_prefetch(self, bricks: int = 1) -> None:
        with self._lock:
            self.prefetched_bricks += bricks
        if self._fwd is not None:
            cell = self._fwd[3]
            with cell.lock:
                cell.v += bricks


class FileHandle:
    """An open DPFS file.  Create via :meth:`repro.core.filesystem.DPFS.open`."""

    def __init__(
        self,
        fs: "DPFS",
        record: FileRecord,
        brick_map: BrickMap,
        striping: StripingMethod,
        mode: str,
        *,
        rank: int = 0,
        combine: bool = True,
        stagger: bool = True,
    ) -> None:
        self.fs = fs
        self.record = record
        self.brick_map = brick_map
        self.striping = striping
        self.mode = mode
        self.rank = rank
        self.combine = combine
        self.stagger = stagger
        self.stats = IOStats().bind(fs.metrics)
        self._closed = False
        #: read-ahead state: one past the last brick id fetched by a
        #: cache-enabled read (sequential-pattern detector)
        self._next_expected_brick = 0

    # -- bookkeeping ---------------------------------------------------------
    @property
    def path(self) -> str:
        return self.record.path

    @property
    def level(self) -> FileLevel:
        return self.record.level

    @property
    def size(self) -> int:
        return self.record.size

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """DPFS-Close: flush metadata and invalidate the handle."""
        if not self._closed:
            self._closed = True
            self.fs._handle_closed(self)

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self, *, writing: bool) -> None:
        if self._closed:
            raise BadFileHandle(f"handle for {self.path!r} is closed")
        if writing and self.mode == "r":
            raise FileSystemError(f"{self.path!r} opened read-only")

    # ------------------------------------------------------------------
    # byte-stream API
    # ------------------------------------------------------------------
    def read(self, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at ``offset`` of the logical byte stream."""
        self._check_open(writing=False)
        if nbytes < 0 or offset < 0:
            raise FileSystemError("negative offset/length")
        nbytes = min(nbytes, max(self.record.size - offset, 0))
        if nbytes == 0:
            return b""
        slices = self.striping.slices_for_extents([(offset, nbytes)])
        return self._execute_read(slices, nbytes)

    def write(self, offset: int, data: bytes) -> int:
        """Write ``data`` at byte ``offset``; grows linear files."""
        self._check_open(writing=True)
        if offset < 0:
            raise FileSystemError("negative offset")
        if not data:
            return 0
        end = offset + len(data)
        if end > self.record.size:
            self._grow_to(end)
        slices = self.striping.slices_for_extents([(offset, len(data))])
        self._execute_write(slices, data)
        return len(data)

    def read_extents(self, extents: Sequence[Extent]) -> bytes:
        """Read a list of byte extents, concatenated in list order."""
        self._check_open(writing=False)
        total = sum(ln for _o, ln in extents)
        if total == 0:
            return b""
        slices = self.striping.slices_for_extents(list(extents))
        return self._execute_read(slices, total)

    def write_extents(self, extents: Sequence[Extent], data: bytes) -> int:
        """Write packed ``data`` across a list of byte extents (in order)."""
        self._check_open(writing=True)
        extents = [e for e in extents if e[1] > 0]
        if not extents:
            return 0
        total = sum(ln for _o, ln in extents)
        if total != len(data):
            raise FileSystemError(
                f"extent list covers {total} bytes but payload is {len(data)}"
            )
        end = max(off + ln for off, ln in extents)
        if end > self.record.size:
            self._grow_to(end)
        slices = self.striping.slices_for_extents(list(extents))
        self._execute_write(slices, data)
        return total

    # ------------------------------------------------------------------
    # derived-datatype API
    # ------------------------------------------------------------------
    def read_type(self, datatype: Datatype, offset: int = 0) -> bytes:
        """Read the file bytes selected by ``datatype`` (packed order)."""
        self._check_open(writing=False)
        extents = datatype.flattened(offset)
        return self.read_extents(extents)

    def write_type(self, datatype: Datatype, data: bytes, offset: int = 0) -> int:
        """Write packed ``data`` into the file at the datatype's typemap."""
        self._check_open(writing=True)
        if len(data) != datatype.size:
            raise FileSystemError(
                f"payload is {len(data)} bytes but datatype size is {datatype.size}"
            )
        extents = datatype.flattened(offset)
        if not extents:
            return 0
        end = max(off + ln for off, ln in extents)
        if end > self.record.size:
            self._grow_to(end)
        slices = self.striping.slices_for_extents(extents)
        self._execute_write(slices, data)
        return len(data)

    # ------------------------------------------------------------------
    # array/region API
    # ------------------------------------------------------------------
    def _region_slices(self, region: Region) -> list[BrickSlice]:
        if self.level is FileLevel.LINEAR:
            raise StripingError(
                "region addressing needs a multidim or array file level"
            )
        return self.striping.slices_for_region(region)

    def read_region(self, starts: Sequence[int], shape: Sequence[int]) -> bytes:
        """Read an N-d element region; returns packed row-major bytes."""
        self._check_open(writing=False)
        region = Region(
            tuple(starts), tuple(s + n for s, n in zip(starts, shape))
        )
        slices = self._region_slices(region)
        return self._execute_read(slices, region.volume * self.record.element_size)

    def write_region(self, starts: Sequence[int], shape: Sequence[int], data: bytes) -> int:
        """Write packed row-major bytes into an N-d element region."""
        self._check_open(writing=True)
        region = Region(
            tuple(starts), tuple(s + n for s, n in zip(starts, shape))
        )
        expected = region.volume * self.record.element_size
        if len(data) != expected:
            raise FileSystemError(
                f"payload is {len(data)} bytes but region holds {expected}"
            )
        slices = self._region_slices(region)
        self._execute_write(slices, data)
        return len(data)

    def read_array(self, starts: Sequence[int], shape: Sequence[int], dtype) -> np.ndarray:
        """Read a region into a NumPy array."""
        dt = np.dtype(dtype)
        if dt.itemsize != self.record.element_size:
            raise FileSystemError(
                f"dtype itemsize {dt.itemsize} != file element size "
                f"{self.record.element_size}"
            )
        raw = self.read_region(starts, shape)
        return np.frombuffer(raw, dtype=dt).reshape(tuple(shape)).copy()

    def write_array(self, starts: Sequence[int], array: np.ndarray) -> int:
        """Write a NumPy array at the region anchored at ``starts``."""
        arr = np.ascontiguousarray(array)
        if arr.dtype.itemsize != self.record.element_size:
            raise FileSystemError(
                f"dtype itemsize {arr.dtype.itemsize} != file element size "
                f"{self.record.element_size}"
            )
        return self.write_region(starts, arr.shape, arr.tobytes())

    def read_chunk(self, rank: int | None = None) -> bytes:
        """Array level: read the whole chunk owned by ``rank`` (default:
        this handle's rank) in one request — the checkpoint-restart path."""
        from .striping import ArrayStriping

        if not isinstance(self.striping, ArrayStriping):
            raise StripingError("read_chunk needs an array-level file")
        chunk = self.striping.chunk_of(self.rank if rank is None else rank)
        return self.read_region(chunk.starts, chunk.shape)

    def write_chunk(self, data: bytes, rank: int | None = None) -> int:
        """Array level: write the whole chunk owned by ``rank``."""
        from .striping import ArrayStriping

        if not isinstance(self.striping, ArrayStriping):
            raise StripingError("write_chunk needs an array-level file")
        chunk = self.striping.chunk_of(self.rank if rank is None else rank)
        return self.write_region(chunk.starts, chunk.shape, data)

    # ------------------------------------------------------------------
    # execution engine
    # ------------------------------------------------------------------
    def _plan(self, slices: list[BrickSlice]):
        return plan_requests(
            slices,
            self.brick_map,
            combine=self.combine,
            rank=self.rank,
            stagger=self.stagger,
        )

    def _execute_read(self, slices: list[BrickSlice], total: int) -> bytes:
        with self.fs.tracer.trace(
            "handle.read", path=self.record.path, bytes=total
        ):
            return self._execute_read_inner(slices, total)

    def _execute_read_inner(self, slices: list[BrickSlice], total: int) -> bytes:
        cache = self.fs.cache
        if cache is None:
            payload = bytearray(total)
            self._fetch_into(slices, payload, offset_map=None)
            return bytes(payload)

        payload = bytearray(total)
        missing: list[BrickSlice] = []
        with span("cache.lookup", slices=len(slices)) as cache_span:
            for s in slices:
                cached = cache.get(self.record.path, s.brick_id)
                if cached is not None:
                    payload[s.buffer_offset : s.buffer_offset + s.length] = cached[
                        s.offset : s.offset + s.length
                    ]
                else:
                    missing.append(s)
            cache_span.tag(hits=len(slices) - len(missing), misses=len(missing))
        if not missing:
            return bytes(payload)

        # Fetch whole bricks for cacheable ones (first-touch order) and
        # exact byte ranges for bricks too large to admit.
        whole: list[BrickSlice] = []
        exact: list[BrickSlice] = []
        seen: set[int] = set()
        fetch_offset = 0
        for s in missing:
            loc = self.brick_map.location(s.brick_id)
            if cache.cacheable(loc.size):
                if s.brick_id not in seen:
                    seen.add(s.brick_id)
                    whole.append(
                        BrickSlice(s.brick_id, 0, loc.size, fetch_offset)
                    )
                    fetch_offset += loc.size
            else:
                exact.append(
                    BrickSlice(s.brick_id, s.offset, s.length, fetch_offset)
                )
                fetch_offset += s.length

        # Read-ahead: when the access continues a sequential brick walk,
        # pull the next few bricks in the same wire plan ("prefetching"
        # is the local-FS optimization the paper credits, §1 fn. 1 —
        # here applied client-side).
        readahead = getattr(self.fs, "readahead_bricks", 0)
        touched = [s.brick_id for s in slices]
        if readahead > 0 and touched:
            lo, hi = min(touched), max(touched)
            if lo <= self._next_expected_brick:
                for brick_id in range(hi + 1, hi + 1 + readahead):
                    if brick_id >= len(self.brick_map):
                        break
                    if brick_id in seen or cache.peek(self.record.path, brick_id):
                        continue
                    loc = self.brick_map.location(brick_id)
                    if not cache.cacheable(loc.size):
                        continue
                    seen.add(brick_id)
                    whole.append(
                        BrickSlice(brick_id, 0, loc.size, fetch_offset)
                    )
                    fetch_offset += loc.size
                    self.stats.note_prefetch()
            self._next_expected_brick = hi + 1

        fetched = bytearray(fetch_offset)
        self._fetch_into(whole + exact, fetched, offset_map=None)

        bricks: dict[int, bytes] = {}
        for w in whole:
            data = bytes(fetched[w.buffer_offset : w.buffer_offset + w.length])
            bricks[w.brick_id] = data
            cache.put(self.record.path, w.brick_id, data)
        exact_by_key = {
            (e.brick_id, e.offset, e.length): e.buffer_offset for e in exact
        }
        for s in missing:
            if s.brick_id in bricks:
                payload[s.buffer_offset : s.buffer_offset + s.length] = bricks[
                    s.brick_id
                ][s.offset : s.offset + s.length]
            else:
                src = exact_by_key[(s.brick_id, s.offset, s.length)]
                payload[s.buffer_offset : s.buffer_offset + s.length] = fetched[
                    src : src + s.length
                ]
        return bytes(payload)

    def _fetch_into(
        self,
        slices: list[BrickSlice],
        payload: bytearray,
        offset_map,
    ) -> None:
        """Run the wire plan for ``slices``, scattering into ``payload``
        at each slice's buffer_offset.

        Per-server requests are fanned out through the file system's
        shared dispatcher; scattering happens in the worker since every
        request owns disjoint buffer_offset ranges by construction.
        """
        backend = self.fs.backend
        with span("combine.plan", slices=len(slices)) as plan_span:
            plan = self._plan(slices)
            plan_span.tag(requests=len(plan), combine=self.combine)

        def fetch(req) -> int:
            data = backend.read_extents(req.server, self.record.path, req.extents)
            pos = 0
            for p in req.placements:
                ln = p.slice.length
                payload[p.slice.buffer_offset : p.slice.buffer_offset + ln] = data[
                    pos : pos + ln
                ]
                pos += ln
            return len(data)

        def done(req, result) -> None:
            self.stats.record(
                req.server,
                result.value,
                is_read=True,
                bricks=len(set(req.brick_ids)),
                latency_s=result.latency_s,
                retries=result.retries,
                service_s=result.service_s,
                backoff_s=result.backoff_s,
            )

        self.fs.dispatcher.run(plan, fetch, on_result=done)

    def _execute_write(self, slices: list[BrickSlice], data: bytes) -> None:
        with self.fs.tracer.trace(
            "handle.write", path=self.record.path, bytes=len(data)
        ):
            self._execute_write_inner(slices, data)

    def _execute_write_inner(self, slices: list[BrickSlice], data: bytes) -> None:
        backend = self.fs.backend
        with span("combine.plan", slices=len(slices)) as plan_span:
            plan = self._plan(slices)
            plan_span.tag(requests=len(plan), combine=self.combine)

        def put(req) -> int:
            blob = b"".join(
                data[p.slice.buffer_offset : p.slice.buffer_offset + p.slice.length]
                for p in req.placements
            )
            backend.write_extents(req.server, self.record.path, req.extents, blob)
            return len(blob)

        def done(req, result) -> None:
            self.stats.record(
                req.server,
                result.value,
                is_read=False,
                bricks=len(set(req.brick_ids)),
                latency_s=result.latency_s,
                retries=result.retries,
                service_s=result.service_s,
                backoff_s=result.backoff_s,
            )

        self.fs.dispatcher.run(plan, put, on_result=done)
        cache = self.fs.cache
        if cache is not None:
            # write-through coherence: patch any cached image in place
            with span("cache.patch", slices=len(slices)):
                for s in slices:
                    cache.patch(
                        self.record.path,
                        s.brick_id,
                        s.offset,
                        data[s.buffer_offset : s.buffer_offset + s.length],
                    )

    # ------------------------------------------------------------------
    # growth (linear level)
    # ------------------------------------------------------------------
    def _grow_to(self, new_size: int) -> None:
        if not isinstance(self.striping, LinearStriping):
            raise StripingError(
                f"{self.level.value} files have fixed size "
                f"{self.record.size}; write within the array"
            )
        self.fs._grow_file(self, new_size)
