"""DPFS file handles — the object DPFS-Open returns (§6).

A handle executes logical reads/writes by

1. translating them to brick slices with the file's striping method,
2. planning wire requests (combined per server, or one per slice —
   §4.2) against the file's brick map, and
3. gathering/scattering payload bytes through the storage backend.

Three addressing styles are offered:

``read``/``write``
    plain byte streams (natural for linear files),
``read_type``/``write_type``
    MPI-IO derived datatypes: the typemap describes *file* layout, the
    payload is packed bytes,
``read_array``/``write_array``
    NumPy arrays against N-d element regions (multidim/array files).

``rank`` identifies the calling process in a parallel program; it seeds
the staggered schedule of combined requests.  ``stats`` counts requests
and bytes for tests and the §8 harness.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..datatypes import Datatype
from ..errors import (
    BadFileHandle,
    ChecksumError,
    DPFSError,
    FileSystemError,
    StripingError,
)
from ..hpf.regions import Region
from ..obs.registry import MetricsRegistry
from ..obs.trace import span
from ..util import Extent
from .brick import BrickLocation, BrickMap, BrickSlice, ReplicaMap, replica_subfile
from .checksum import checksum_fn
from .combine import ServerRequest, SlicePlacement, plan_requests
from .metadata import FileRecord
from .striping import FileLevel, LinearStriping, StripingMethod

if TYPE_CHECKING:  # pragma: no cover
    from .filesystem import DPFS

__all__ = ["FileHandle", "IOStats"]


@dataclass
class IOStats:
    """Counters of the traffic a handle generated.

    Updated from dispatcher worker threads, so every mutation goes
    through :meth:`record` under a lock.  Latency accounting is split
    three ways so retries cannot be double-read: per server,
    ``per_server_latency_s`` is total wall time (failed attempts and
    backoff included), ``per_server_service_s`` is the successful
    attempt alone, and ``per_server_backoff_s`` the retry sleeps — so
    ``latency >= service + backoff`` holds per server and the remainder
    is failed-attempt time.  A handle's stats are a handle-scoped view;
    :meth:`bind` forwards the same events into the file system's
    :class:`~repro.obs.registry.MetricsRegistry`, which is the
    system-wide source of truth (``DPFS.metrics``).  Note the registry's
    ``dpfs_dispatch_retries_total`` also counts retries of requests
    that ultimately failed, which no handle ever observes.
    """

    requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bricks_touched: int = 0
    prefetched_bricks: int = 0
    retries: int = 0
    per_server_requests: dict[int, int] = field(default_factory=dict)
    per_server_retries: dict[int, int] = field(default_factory=dict)
    per_server_latency_s: dict[int, float] = field(default_factory=dict)
    per_server_service_s: dict[int, float] = field(default_factory=dict)
    per_server_backoff_s: dict[int, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _fwd: tuple | None = field(default=None, repr=False, compare=False)

    def bind(self, registry: MetricsRegistry) -> "IOStats":
        """Mirror this handle's events into the shared registry.

        Holds the raw series cells (``_cell_for``), not the counter
        objects: :meth:`record` runs once per dispatched request, and a
        direct ``cell.v += n`` under the cell lock is the cheapest
        thread-safe increment available.
        """
        self._fwd = (
            registry.counter(
                "dpfs_io_bytes_read_total", "payload bytes read by handles"
            )._cell_for(()),
            registry.counter(
                "dpfs_io_bytes_written_total", "payload bytes written by handles"
            )._cell_for(()),
            registry.counter(
                "dpfs_io_bricks_touched_total", "bricks covered by handle requests"
            )._cell_for(()),
            registry.counter(
                "dpfs_io_prefetched_bricks_total", "bricks pulled by read-ahead"
            )._cell_for(()),
        )
        return self

    def record(
        self,
        server: int,
        nbytes: int,
        *,
        is_read: bool,
        bricks: int,
        latency_s: float = 0.0,
        retries: int = 0,
        service_s: float = 0.0,
        backoff_s: float = 0.0,
    ) -> None:
        with self._lock:
            self.requests += 1
            self.bricks_touched += bricks
            self.retries += retries
            self.per_server_requests[server] = (
                self.per_server_requests.get(server, 0) + 1
            )
            if retries:
                self.per_server_retries[server] = (
                    self.per_server_retries.get(server, 0) + retries
                )
            if backoff_s:
                self.per_server_backoff_s[server] = (
                    self.per_server_backoff_s.get(server, 0.0) + backoff_s
                )
            self.per_server_latency_s[server] = (
                self.per_server_latency_s.get(server, 0.0) + latency_s
            )
            self.per_server_service_s[server] = (
                self.per_server_service_s.get(server, 0.0) + service_s
            )
            if is_read:
                self.bytes_read += nbytes
            else:
                self.bytes_written += nbytes
        fwd = self._fwd
        if fwd is not None:
            cell = fwd[0] if is_read else fwd[1]
            with cell.lock:
                cell.v += nbytes
            cell = fwd[2]
            with cell.lock:
                cell.v += bricks

    def note_prefetch(self, bricks: int = 1) -> None:
        with self._lock:
            self.prefetched_bricks += bricks
        if self._fwd is not None:
            cell = self._fwd[3]
            with cell.lock:
                cell.v += bricks


class FileHandle:
    """An open DPFS file.  Create via :meth:`repro.core.filesystem.DPFS.open`."""

    def __init__(
        self,
        fs: "DPFS",
        record: FileRecord,
        brick_map: BrickMap,
        striping: StripingMethod,
        mode: str,
        *,
        rank: int = 0,
        combine: bool = True,
        stagger: bool = True,
        replica_map: ReplicaMap | None = None,
    ) -> None:
        self.fs = fs
        self.record = record
        self.brick_map = brick_map
        self.replica_map = replica_map
        self.striping = striping
        self.mode = mode
        self.rank = rank
        self.combine = combine
        self.stagger = stagger
        self.stats = IOStats().bind(fs.metrics)
        self._closed = False
        #: read-ahead state: one past the last brick id fetched by a
        #: cache-enabled read (sequential-pattern detector)
        self._next_expected_brick = 0
        #: checksum routine matching the file's stored checksums; None
        #: when the algorithm is unknown here (verification is skipped —
        #: never a false corruption verdict)
        try:
            self._crc = checksum_fn(record.crc_algo)
        except KeyError:
            self._crc = None

    # -- bookkeeping ---------------------------------------------------------
    @property
    def path(self) -> str:
        return self.record.path

    @property
    def level(self) -> FileLevel:
        return self.record.level

    @property
    def size(self) -> int:
        return self.record.size

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """DPFS-Close: flush metadata and invalidate the handle."""
        if not self._closed:
            self._closed = True
            self.fs._handle_closed(self)

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self, *, writing: bool) -> None:
        if self._closed:
            raise BadFileHandle(f"handle for {self.path!r} is closed")
        if writing and self.mode == "r":
            raise FileSystemError(f"{self.path!r} opened read-only")

    # ------------------------------------------------------------------
    # byte-stream API
    # ------------------------------------------------------------------
    def read(self, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at ``offset`` of the logical byte stream."""
        self._check_open(writing=False)
        if nbytes < 0 or offset < 0:
            raise FileSystemError("negative offset/length")
        nbytes = min(nbytes, max(self.record.size - offset, 0))
        if nbytes == 0:
            return b""
        slices = self.striping.slices_for_extents([(offset, nbytes)])
        return self._execute_read(slices, nbytes)

    def write(self, offset: int, data: bytes) -> int:
        """Write ``data`` at byte ``offset``; grows linear files."""
        self._check_open(writing=True)
        if offset < 0:
            raise FileSystemError("negative offset")
        if not data:
            return 0
        end = offset + len(data)
        if end > self.record.size:
            self._grow_to(end)
        slices = self.striping.slices_for_extents([(offset, len(data))])
        self._execute_write(slices, data)
        return len(data)

    def read_extents(self, extents: Sequence[Extent]) -> bytes:
        """Read a list of byte extents, concatenated in list order."""
        self._check_open(writing=False)
        total = sum(ln for _o, ln in extents)
        if total == 0:
            return b""
        slices = self.striping.slices_for_extents(list(extents))
        return self._execute_read(slices, total)

    def write_extents(self, extents: Sequence[Extent], data: bytes) -> int:
        """Write packed ``data`` across a list of byte extents (in order)."""
        self._check_open(writing=True)
        extents = [e for e in extents if e[1] > 0]
        if not extents:
            return 0
        total = sum(ln for _o, ln in extents)
        if total != len(data):
            raise FileSystemError(
                f"extent list covers {total} bytes but payload is {len(data)}"
            )
        end = max(off + ln for off, ln in extents)
        if end > self.record.size:
            self._grow_to(end)
        slices = self.striping.slices_for_extents(list(extents))
        self._execute_write(slices, data)
        return total

    # ------------------------------------------------------------------
    # derived-datatype API
    # ------------------------------------------------------------------
    def read_type(self, datatype: Datatype, offset: int = 0) -> bytes:
        """Read the file bytes selected by ``datatype`` (packed order)."""
        self._check_open(writing=False)
        extents = datatype.flattened(offset)
        return self.read_extents(extents)

    def write_type(self, datatype: Datatype, data: bytes, offset: int = 0) -> int:
        """Write packed ``data`` into the file at the datatype's typemap."""
        self._check_open(writing=True)
        if len(data) != datatype.size:
            raise FileSystemError(
                f"payload is {len(data)} bytes but datatype size is {datatype.size}"
            )
        extents = datatype.flattened(offset)
        if not extents:
            return 0
        end = max(off + ln for off, ln in extents)
        if end > self.record.size:
            self._grow_to(end)
        slices = self.striping.slices_for_extents(extents)
        self._execute_write(slices, data)
        return len(data)

    # ------------------------------------------------------------------
    # array/region API
    # ------------------------------------------------------------------
    def _region_slices(self, region: Region) -> list[BrickSlice]:
        if self.level is FileLevel.LINEAR:
            raise StripingError(
                "region addressing needs a multidim or array file level"
            )
        return self.striping.slices_for_region(region)

    def read_region(self, starts: Sequence[int], shape: Sequence[int]) -> bytes:
        """Read an N-d element region; returns packed row-major bytes."""
        self._check_open(writing=False)
        region = Region(
            tuple(starts), tuple(s + n for s, n in zip(starts, shape))
        )
        slices = self._region_slices(region)
        return self._execute_read(slices, region.volume * self.record.element_size)

    def write_region(self, starts: Sequence[int], shape: Sequence[int], data: bytes) -> int:
        """Write packed row-major bytes into an N-d element region."""
        self._check_open(writing=True)
        region = Region(
            tuple(starts), tuple(s + n for s, n in zip(starts, shape))
        )
        expected = region.volume * self.record.element_size
        if len(data) != expected:
            raise FileSystemError(
                f"payload is {len(data)} bytes but region holds {expected}"
            )
        slices = self._region_slices(region)
        self._execute_write(slices, data)
        return len(data)

    def read_array(self, starts: Sequence[int], shape: Sequence[int], dtype) -> np.ndarray:
        """Read a region into a NumPy array."""
        dt = np.dtype(dtype)
        if dt.itemsize != self.record.element_size:
            raise FileSystemError(
                f"dtype itemsize {dt.itemsize} != file element size "
                f"{self.record.element_size}"
            )
        raw = self.read_region(starts, shape)
        return np.frombuffer(raw, dtype=dt).reshape(tuple(shape)).copy()

    def write_array(self, starts: Sequence[int], array: np.ndarray) -> int:
        """Write a NumPy array at the region anchored at ``starts``."""
        arr = np.ascontiguousarray(array)
        if arr.dtype.itemsize != self.record.element_size:
            raise FileSystemError(
                f"dtype itemsize {arr.dtype.itemsize} != file element size "
                f"{self.record.element_size}"
            )
        return self.write_region(starts, arr.shape, arr.tobytes())

    def read_chunk(self, rank: int | None = None) -> bytes:
        """Array level: read the whole chunk owned by ``rank`` (default:
        this handle's rank) in one request — the checkpoint-restart path."""
        from .striping import ArrayStriping

        if not isinstance(self.striping, ArrayStriping):
            raise StripingError("read_chunk needs an array-level file")
        chunk = self.striping.chunk_of(self.rank if rank is None else rank)
        return self.read_region(chunk.starts, chunk.shape)

    def write_chunk(self, data: bytes, rank: int | None = None) -> int:
        """Array level: write the whole chunk owned by ``rank``."""
        from .striping import ArrayStriping

        if not isinstance(self.striping, ArrayStriping):
            raise StripingError("write_chunk needs an array-level file")
        chunk = self.striping.chunk_of(self.rank if rank is None else rank)
        return self.write_region(chunk.starts, chunk.shape, data)

    # ------------------------------------------------------------------
    # execution engine
    # ------------------------------------------------------------------
    def _plan(self, slices: list[BrickSlice]):
        return plan_requests(
            slices,
            self.brick_map,
            combine=self.combine,
            rank=self.rank,
            stagger=self.stagger,
        )

    # -- replica copy bookkeeping -----------------------------------------
    def _has_replicas(self) -> bool:
        rmap = self.replica_map
        return rmap is not None and any(rmap.bricklists)

    def _copy_locations(
        self, brick_id: int
    ) -> list[tuple[int, BrickLocation, str]]:
        """All copies of a brick as ``(copy_index, location, subfile)``.

        Copy 0 is always the primary; replica indices follow the replica
        map's deterministic order, so a request's ``copy`` tag resolves
        back to the same location here.
        """
        copies = [(0, self.brick_map.location(brick_id), self.record.path)]
        if self.replica_map is not None:
            rname = replica_subfile(self.record.path)
            for i, loc in enumerate(
                self.replica_map.locations(brick_id), start=1
            ):
                copies.append((i, loc, rname))
        return copies

    def _choose_copy(self, brick_id: int) -> tuple[int, BrickLocation, str]:
        """Copy to read: primary when UP, else the first healthy copy.

        Quarantined copies (a failed verification not yet repaired) are
        skipped; a DEGRADED server is only used when nothing is UP, and
        when every copy is excluded the primary is returned so the error
        surfaces from the actual read.
        """
        copies = self._copy_locations(brick_id)
        if len(copies) == 1:
            return copies[0]
        quarantine = self.fs.quarantine
        backend = self.fs.backend
        fallback = None
        for entry in copies:
            idx, loc, _name = entry
            if (self.record.path, brick_id, loc.server) in quarantine:
                continue
            health = backend.server_health(loc.server)
            if health >= 2:
                if idx != 0:
                    self.fs._note_failover("health")
                return entry
            if fallback is None and health >= 1:
                fallback = entry
        if fallback is not None:
            if fallback[0] != 0:
                self.fs._note_failover("health")
            return fallback
        return copies[0]

    def _stored_crc(self, brick_id: int) -> int | None:
        crcs = self.record.brick_crcs
        return crcs[brick_id] if brick_id < len(crcs) else None

    def _plan_read(self, slices: list[BrickSlice]) -> list[ServerRequest]:
        """Wire plan with a health/quarantine-aware copy choice per brick."""
        if not self._has_replicas():
            return self._plan(slices)
        primary: list[BrickSlice] = []
        groups: dict[tuple[int, int], list[SlicePlacement]] = {}
        for s in slices:
            idx, loc, _name = self._choose_copy(s.brick_id)
            if idx == 0:
                primary.append(s)
            else:
                groups.setdefault((loc.server, idx), []).append(
                    SlicePlacement(s, loc.server, loc.local_offset + s.offset)
                )
        plan = self._plan(primary) if primary else []
        rname = replica_subfile(self.record.path)
        for (server, idx), placements in sorted(groups.items()):
            plan.append(
                ServerRequest(server, placements, name=rname, copy=idx)
            )
        return plan

    def _plan_write(self, slices: list[BrickSlice]) -> list[ServerRequest]:
        """Primary plan plus one request per (server, replica copy)."""
        plan = self._plan(slices)
        if not self._has_replicas():
            return plan
        groups: dict[tuple[int, int], list[SlicePlacement]] = {}
        for s in slices:
            for idx, loc, _name in self._copy_locations(s.brick_id)[1:]:
                groups.setdefault((loc.server, idx), []).append(
                    SlicePlacement(s, loc.server, loc.local_offset + s.offset)
                )
        rname = replica_subfile(self.record.path)
        for (server, idx), placements in sorted(groups.items()):
            plan.append(
                ServerRequest(server, placements, name=rname, copy=idx)
            )
        return plan

    def _execute_read(self, slices: list[BrickSlice], total: int) -> bytes:
        with self.fs.tracer.trace(
            "handle.read", path=self.record.path, bytes=total
        ):
            return self._execute_read_inner(slices, total)

    def _execute_read_inner(self, slices: list[BrickSlice], total: int) -> bytes:
        cache = self.fs.cache
        if cache is None:
            payload = bytearray(total)
            self._fetch_into(slices, payload, offset_map=None)
            return bytes(payload)

        payload = bytearray(total)
        missing: list[BrickSlice] = []
        with span("cache.lookup", slices=len(slices)) as cache_span:
            for s in slices:
                cached = cache.get(self.record.path, s.brick_id)
                if cached is not None:
                    payload[s.buffer_offset : s.buffer_offset + s.length] = cached[
                        s.offset : s.offset + s.length
                    ]
                else:
                    missing.append(s)
            cache_span.tag(hits=len(slices) - len(missing), misses=len(missing))
        if not missing:
            return bytes(payload)

        # Fetch whole bricks for cacheable ones (first-touch order) and
        # exact byte ranges for bricks too large to admit.
        whole: list[BrickSlice] = []
        exact: list[BrickSlice] = []
        seen: set[int] = set()
        fetch_offset = 0
        for s in missing:
            loc = self.brick_map.location(s.brick_id)
            if cache.cacheable(loc.size):
                if s.brick_id not in seen:
                    seen.add(s.brick_id)
                    whole.append(
                        BrickSlice(s.brick_id, 0, loc.size, fetch_offset)
                    )
                    fetch_offset += loc.size
            else:
                exact.append(
                    BrickSlice(s.brick_id, s.offset, s.length, fetch_offset)
                )
                fetch_offset += s.length

        # Read-ahead: when the access continues a sequential brick walk,
        # pull the next few bricks in the same wire plan ("prefetching"
        # is the local-FS optimization the paper credits, §1 fn. 1 —
        # here applied client-side).
        readahead = getattr(self.fs, "readahead_bricks", 0)
        touched = [s.brick_id for s in slices]
        if readahead > 0 and touched:
            lo, hi = min(touched), max(touched)
            if lo <= self._next_expected_brick:
                for brick_id in range(hi + 1, hi + 1 + readahead):
                    if brick_id >= len(self.brick_map):
                        break
                    if brick_id in seen or cache.peek(self.record.path, brick_id):
                        continue
                    loc = self.brick_map.location(brick_id)
                    if not cache.cacheable(loc.size):
                        continue
                    seen.add(brick_id)
                    whole.append(
                        BrickSlice(brick_id, 0, loc.size, fetch_offset)
                    )
                    fetch_offset += loc.size
                    self.stats.note_prefetch()
            self._next_expected_brick = hi + 1

        fetched = bytearray(fetch_offset)
        self._fetch_into(whole + exact, fetched, offset_map=None)

        bricks: dict[int, bytes] = {}
        for w in whole:
            data = bytes(fetched[w.buffer_offset : w.buffer_offset + w.length])
            bricks[w.brick_id] = data
            cache.put(self.record.path, w.brick_id, data)
        exact_by_key = {
            (e.brick_id, e.offset, e.length): e.buffer_offset for e in exact
        }
        for s in missing:
            if s.brick_id in bricks:
                payload[s.buffer_offset : s.buffer_offset + s.length] = bricks[
                    s.brick_id
                ][s.offset : s.offset + s.length]
            else:
                src = exact_by_key[(s.brick_id, s.offset, s.length)]
                payload[s.buffer_offset : s.buffer_offset + s.length] = fetched[
                    src : src + s.length
                ]
        return bytes(payload)

    def _fetch_into(
        self,
        slices: list[BrickSlice],
        payload: bytearray,
        offset_map,
    ) -> None:
        """Run the wire plan for ``slices``, scattering into ``payload``
        at each slice's buffer_offset.

        Per-server requests are fanned out through the file system's
        shared dispatcher; scattering happens in the worker since every
        request owns disjoint buffer_offset ranges by construction.
        """
        backend = self.fs.backend
        with span("combine.plan", slices=len(slices)) as plan_span:
            plan = self._plan_read(slices)
            plan_span.tag(requests=len(plan), combine=self.combine)

        def fetch(req) -> int:
            name = req.name if req.name is not None else self.record.path
            try:
                data = backend.read_extents(req.server, name, req.extents)
            except (DPFSError, OSError):
                if not self._has_replicas():
                    raise
                # the chosen copy's server failed mid-read: serve every
                # slice of this request from a surviving copy instead
                self.fs._note_failover("error")
                total = 0
                for p in req.placements:
                    blob = self._read_alternate(p.slice, exclude_server=req.server)
                    bo = p.slice.buffer_offset
                    payload[bo : bo + p.slice.length] = blob
                    total += p.slice.length
                return total
            pos = 0
            for p in req.placements:
                ln = p.slice.length
                blob = data[pos : pos + ln]
                pos += ln
                blob = self._verified(p, blob, name)
                payload[p.slice.buffer_offset : p.slice.buffer_offset + ln] = blob
            return len(data)

        def done(req, result) -> None:
            self.stats.record(
                req.server,
                result.value,
                is_read=True,
                bricks=len(set(req.brick_ids)),
                latency_s=result.latency_s,
                retries=result.retries,
                service_s=result.service_s,
                backoff_s=result.backoff_s,
            )

        self.fs.dispatcher.run(plan, fetch, on_result=done)

    # -- verification, failover, read-repair -------------------------------
    def _verified(self, p: SlicePlacement, blob: bytes, name: str) -> bytes:
        """End-to-end check of a full-brick payload against metadata.

        Only full-brick placements can be verified (the stored CRC
        covers the whole brick); partial reads pass through — the
        scrubber covers them at rest.  On mismatch the copy is
        quarantined and the brick is served from a copy that verifies,
        which is then written back over the bad copy (inline
        read-repair).
        """
        s = p.slice
        if self._crc is None:
            return blob
        if s.offset != 0 or s.length != self.brick_map.location(s.brick_id).size:
            return blob
        want = self._stored_crc(s.brick_id)
        if want is None or self._crc(bytes(blob), 0) == want:
            return blob
        self.fs._note_checksum_error()
        self.fs.quarantine.add((self.record.path, s.brick_id, p.server))
        if not self._has_replicas():
            raise ChecksumError(
                f"{self.record.path} brick {s.brick_id}: payload does not "
                f"match stored {self.record.crc_algo} checksum and the file "
                f"has no replicas"
            )
        self.fs._note_failover("checksum")
        good = self._read_alternate(s, exclude_server=p.server)
        self._repair_copy(s.brick_id, p.server, name, good)
        return good

    def _read_alternate(self, s: BrickSlice, *, exclude_server: int) -> bytes:
        """Read one slice from any surviving copy, verifying when possible.

        Tries copies in preference order (primary first), skipping the
        failed server and quarantined copies.  Raises the last transport
        error — or :class:`ChecksumError` when every reachable copy
        fails verification.
        """
        backend = self.fs.backend
        full = (
            s.offset == 0
            and s.length == self.brick_map.location(s.brick_id).size
        )
        want = self._stored_crc(s.brick_id) if full and self._crc else None
        last_exc: Exception | None = None
        for _idx, loc, name in self._copy_locations(s.brick_id):
            if loc.server == exclude_server:
                continue
            if (self.record.path, s.brick_id, loc.server) in self.fs.quarantine:
                continue
            try:
                blob = backend.read_extents(
                    loc.server, name,
                    [(loc.local_offset + s.offset, s.length)],
                )
            except (DPFSError, OSError) as exc:
                last_exc = exc
                continue
            if want is not None and self._crc(bytes(blob), 0) != want:
                self.fs._note_checksum_error()
                self.fs.quarantine.add(
                    (self.record.path, s.brick_id, loc.server)
                )
                continue
            return blob
        if last_exc is not None:
            raise last_exc
        raise ChecksumError(
            f"{self.record.path} brick {s.brick_id}: no reachable copy "
            f"matches the stored {self.record.crc_algo} checksum"
        )

    def _repair_copy(
        self, brick_id: int, server: int, name: str, good: bytes
    ) -> None:
        """Overwrite a corrupt copy with verified bytes (best-effort).

        Success lifts the quarantine and counts a repair; failure (the
        server may be down) leaves the copy quarantined for the scrubber.
        """
        for _idx, loc, cname in self._copy_locations(brick_id):
            if loc.server != server or cname != name:
                continue
            try:
                self.fs.backend.write_extents(
                    server, name, [(loc.local_offset, loc.size)], bytes(good)
                )
            except (DPFSError, OSError):
                return
            self.fs.quarantine.discard((self.record.path, brick_id, server))
            self.fs._note_repair()
            return

    def _execute_write(self, slices: list[BrickSlice], data: bytes) -> None:
        with self.fs.tracer.trace(
            "handle.write", path=self.record.path, bytes=len(data)
        ):
            self._execute_write_inner(slices, data)

    def _execute_write_inner(self, slices: list[BrickSlice], data: bytes) -> None:
        backend = self.fs.backend
        with span("combine.plan", slices=len(slices)) as plan_span:
            plan = self._plan_write(slices)
            plan_span.tag(requests=len(plan), combine=self.combine)

        succeeded: list[ServerRequest] = []
        success_lock = threading.Lock()

        def put(req) -> int:
            blob = b"".join(
                data[p.slice.buffer_offset : p.slice.buffer_offset + p.slice.length]
                for p in req.placements
            )
            name = req.name if req.name is not None else self.record.path
            backend.write_extents(req.server, name, req.extents, blob)
            return len(blob)

        def done(req, result) -> None:
            with success_lock:
                succeeded.append(req)
            self.stats.record(
                req.server,
                result.value,
                is_read=False,
                bricks=len(set(req.brick_ids)),
                latency_s=result.latency_s,
                retries=result.retries,
                service_s=result.service_s,
                backoff_s=result.backoff_s,
            )

        try:
            self.fs.dispatcher.run(plan, put, on_result=done)
        except (DPFSError, OSError):
            # Quorum-less degraded write: the write stands as long as
            # every touched brick reached at least one copy — stale
            # copies on the failed server are caught later by checksum
            # verification and repaired by read-repair or the scrubber.
            if not self._has_replicas():
                raise
            written: set[int] = set()
            for req in succeeded:
                written.update(req.brick_ids)
            if not {s.brick_id for s in slices} <= written:
                raise
            self.fs._note_degraded_write()
        self._update_crcs(slices, data, succeeded)
        cache = self.fs.cache
        if cache is not None:
            # write-through coherence: patch any cached image in place
            with span("cache.patch", slices=len(slices)):
                for s in slices:
                    cache.patch(
                        self.record.path,
                        s.brick_id,
                        s.offset,
                        data[s.buffer_offset : s.buffer_offset + s.length],
                    )

    def _update_crcs(
        self,
        slices: list[BrickSlice],
        data: bytes,
        succeeded: list[ServerRequest],
    ) -> None:
        """Recompute and persist the checksums of every written brick.

        A brick fully covered by one slice hashes the payload directly;
        a partially written brick is read back in full from a copy that
        took this write.  All touched bricks land in one metadata
        transaction.

        Read-back and update run under a per-path lock: concurrent
        disjoint-extent writers share boundary bricks, and the last
        updater must hash a snapshot that already holds every earlier
        updater's bytes — an unlocked read-back can persist a CRC that
        misses a peer's landed data.  (Full-brick slices need no lock:
        disjoint writers by definition never share a fully-covered
        brick, and overlapping writers are a data race regardless.)
        """
        if self._crc is None:
            return
        by_brick: dict[int, list[BrickSlice]] = {}
        for s in slices:
            by_brick.setdefault(s.brick_id, []).append(s)
        written_copies: set[tuple[int, int]] = set()  # (brick, copy)
        for req in succeeded:
            for b in req.brick_ids:
                written_copies.add((b, req.copy))
        with self.fs._crc_lock(self.record.path):
            new_crcs: dict[int, int | None] = {}
            for brick_id, ss in by_brick.items():
                size = self.brick_map.location(brick_id).size
                full = next(
                    (s for s in ss if s.offset == 0 and s.length == size), None
                )
                if full is not None:
                    blob = data[full.buffer_offset : full.buffer_offset + size]
                    new_crcs[brick_id] = self._crc(bytes(blob), 0)
                else:
                    back = self._read_back(brick_id, size, written_copies)
                    new_crcs[brick_id] = (
                        self._crc(back, 0) if back is not None else None
                    )
            self.fs.meta.update_brick_crcs(self.record.path, new_crcs)
            crcs = self.record.brick_crcs
            if len(crcs) < len(self.brick_map):
                crcs += [None] * (len(self.brick_map) - len(crcs))
            for brick_id, crc in new_crcs.items():
                crcs[brick_id] = crc

    def _read_back(
        self, brick_id: int, size: int, written_copies: set[tuple[int, int]]
    ) -> bytes | None:
        """Full brick contents from a copy this write reached, else None."""
        backend = self.fs.backend
        for idx, loc, name in self._copy_locations(brick_id):
            if written_copies and (brick_id, idx) not in written_copies:
                continue
            try:
                return bytes(
                    backend.read_extents(
                        loc.server, name, [(loc.local_offset, size)]
                    )
                )
            except (DPFSError, OSError):
                continue
        return None

    # ------------------------------------------------------------------
    # growth (linear level)
    # ------------------------------------------------------------------
    def _grow_to(self, new_size: int) -> None:
        if not isinstance(self.striping, LinearStriping):
            raise StripingError(
                f"{self.level.value} files have fixed size "
                f"{self.record.size}; write within the array"
            )
        self.fs._grow_file(self, new_size)
