"""Bricks — the basic striping unit of DPFS (§3) — and brick→server maps.

A DPFS file is a sequence of bricks numbered from 0.  A striping method
(:mod:`repro.core.striping`) translates logical requests into
:class:`BrickSlice` lists; a placement algorithm
(:mod:`repro.core.placement`) assigns each brick to a server; the
resulting :class:`BrickMap` records, for every brick, its server and its
byte offset inside that server's *subfile* (the paper's term for the
per-server local file holding that server's bricks, in assignment
order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..errors import PlacementError

__all__ = [
    "BrickSlice",
    "BrickLocation",
    "BrickMap",
    "ReplicaMap",
    "replica_subfile",
    "is_replica_subfile",
]

#: Suffix appended to a DPFS path to name the per-server subfile holding
#: that server's *replica* bricks.  Normalised DPFS paths never contain
#: ``//``, so this can't collide with any real file's subfile.
_REPLICA_SUFFIX = "//r"


def replica_subfile(path: str) -> str:
    """Subfile name holding a file's replica bricks on a server."""
    return path + _REPLICA_SUFFIX


def is_replica_subfile(name: str) -> bool:
    return name.endswith(_REPLICA_SUFFIX)


@dataclass(frozen=True)
class BrickSlice:
    """A byte range inside one brick, tied to a position in the payload.

    ``buffer_offset`` is where these bytes sit in the packed user
    payload, so scattering/gathering between user buffer and bricks is
    mechanical for both reads and writes.
    """

    brick_id: int
    offset: int          # byte offset inside the brick
    length: int          # bytes
    buffer_offset: int   # byte offset inside the packed request payload

    def __post_init__(self) -> None:
        if self.brick_id < 0 or self.offset < 0 or self.length <= 0 or self.buffer_offset < 0:
            raise PlacementError(f"invalid brick slice {self!r}")


@dataclass(frozen=True)
class BrickLocation:
    """Where a brick physically lives."""

    brick_id: int
    server: int          # server index
    local_offset: int    # byte offset of the brick inside the subfile
    size: int            # brick size in bytes


@dataclass
class BrickMap:
    """Brick → (server, subfile offset, size) for one DPFS file.

    Built by feeding brick sizes through a placement policy; can be
    *extended* later (linear files grow), continuing the same policy.
    """

    n_servers: int
    locations: list[BrickLocation] = field(default_factory=list)
    _server_tail: list[int] = field(default_factory=list)  # next free subfile offset

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise PlacementError("brick map needs at least one server")
        if not self._server_tail:
            self._server_tail = [0] * self.n_servers
        if len(self._server_tail) != self.n_servers:
            raise PlacementError("server tail list length mismatch")

    # -- construction ------------------------------------------------------
    def append(self, server: int, size: int) -> BrickLocation:
        """Place the next brick on ``server`` with the given byte size."""
        if not 0 <= server < self.n_servers:
            raise PlacementError(
                f"server {server} outside [0, {self.n_servers})"
            )
        if size <= 0:
            raise PlacementError(f"brick size must be positive, got {size}")
        loc = BrickLocation(
            brick_id=len(self.locations),
            server=server,
            local_offset=self._server_tail[server],
            size=size,
        )
        self.locations.append(loc)
        self._server_tail[server] += size
        return loc

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.locations)

    def location(self, brick_id: int) -> BrickLocation:
        try:
            return self.locations[brick_id]
        except IndexError:
            raise PlacementError(
                f"brick {brick_id} outside map of {len(self.locations)} bricks"
            ) from None

    def server_of(self, brick_id: int) -> int:
        return self.location(brick_id).server

    def bricklist(self, server: int) -> list[int]:
        """Brick ids held by ``server`` in subfile order (the paper's
        DPFS-FILE-DISTRIBUTION ``bricklist`` attribute)."""
        return [loc.brick_id for loc in self.locations if loc.server == server]

    def subfile_size(self, server: int) -> int:
        if not 0 <= server < self.n_servers:
            raise PlacementError(f"server {server} outside [0, {self.n_servers})")
        return self._server_tail[server]

    def bricks_per_server(self) -> list[int]:
        counts = [0] * self.n_servers
        for loc in self.locations:
            counts[loc.server] += 1
        return counts

    # -- (de)serialisation for the metadata tables -------------------------
    def to_lists(self) -> list[list[int]]:
        """Per-server brick id lists (what gets stored in the database)."""
        return [self.bricklist(s) for s in range(self.n_servers)]

    @classmethod
    def from_lists(
        cls, bricklists: Sequence[Sequence[int]], sizes: Sequence[int]
    ) -> "BrickMap":
        """Rebuild a map from per-server bricklists + per-brick sizes.

        Brick ``bricklists[s][i]`` lives on server ``s`` at the subfile
        offset implied by the sizes of the bricks before it in the list.
        """
        n_servers = len(bricklists)
        total = sum(len(bl) for bl in bricklists)
        if total != len(sizes):
            raise PlacementError(
                f"bricklists hold {total} bricks but {len(sizes)} sizes given"
            )
        owner: dict[int, tuple[int, int]] = {}
        for server, bricklist in enumerate(bricklists):
            offset = 0
            for brick_id in bricklist:
                if brick_id in owner:
                    raise PlacementError(f"brick {brick_id} appears twice")
                owner[brick_id] = (server, offset)
                offset += sizes[brick_id]
        if set(owner) != set(range(total)):
            raise PlacementError("bricklists are not a permutation of 0..n-1")
        bmap = cls(n_servers=n_servers)
        for brick_id in range(total):
            server, offset = owner[brick_id]
            bmap.locations.append(
                BrickLocation(brick_id, server, offset, sizes[brick_id])
            )
        for server, bricklist in enumerate(bricklists):
            bmap._server_tail[server] = sum(sizes[b] for b in bricklist)
        return bmap


@dataclass
class ReplicaMap:
    """Extra copies of each brick, beyond the primary :class:`BrickMap`.

    Replica copies live in a *separate* per-server subfile (see
    :func:`replica_subfile`) so the primary subfile layout — and the
    permutation invariant of :meth:`BrickMap.from_lists` — is untouched.
    Each server's replica subfile holds that server's replica bricks
    back-to-back in ``bricklists[server]`` order; a brick may appear in
    several servers' lists (one per extra copy) but never twice on one
    server.

    ``locations(brick_id)`` returns the replica copies of a brick as
    :class:`BrickLocation` records against the replica subfile.
    """

    n_servers: int
    bricklists: list[list[int]] = field(default_factory=list)
    _sizes: Sequence[int] = field(default_factory=list)
    _index: dict[int, list[tuple[int, int]]] = field(default_factory=dict)

    @classmethod
    def build(
        cls, n_servers: int, bricklists: Sequence[Sequence[int]],
        sizes: Sequence[int],
    ) -> "ReplicaMap":
        if len(bricklists) != n_servers:
            raise PlacementError(
                f"{len(bricklists)} replica bricklists for {n_servers} servers"
            )
        rmap = cls(n_servers=n_servers, bricklists=[list(bl) for bl in bricklists])
        rmap._sizes = list(sizes)
        rmap._reindex()
        return rmap

    def _reindex(self) -> None:
        self._index = {}
        for server, bricklist in enumerate(self.bricklists):
            offset = 0
            seen: set[int] = set()
            for brick_id in bricklist:
                if not 0 <= brick_id < len(self._sizes):
                    raise PlacementError(
                        f"replica brick {brick_id} has no size entry"
                    )
                if brick_id in seen:
                    raise PlacementError(
                        f"brick {brick_id} replicated twice on server {server}"
                    )
                seen.add(brick_id)
                self._index.setdefault(brick_id, []).append((server, offset))
                offset += self._sizes[brick_id]

    # -- construction ------------------------------------------------------
    def append(self, brick_id: int, servers: Sequence[int], size: int) -> None:
        """Record replica copies of a (new) brick on ``servers``."""
        if len(self._sizes) <= brick_id:
            self._sizes = list(self._sizes) + [0] * (
                brick_id + 1 - len(self._sizes)
            )
        self._sizes[brick_id] = size  # type: ignore[index]
        for server in servers:
            if not 0 <= server < self.n_servers:
                raise PlacementError(
                    f"server {server} outside [0, {self.n_servers})"
                )
            self.bricklists[server].append(brick_id)
        self._reindex()

    # -- queries -----------------------------------------------------------
    def locations(self, brick_id: int) -> list[BrickLocation]:
        """Replica copies of a brick (offsets inside the replica subfile)."""
        return [
            BrickLocation(brick_id, server, offset, self._sizes[brick_id])
            for server, offset in self._index.get(brick_id, [])
        ]

    def servers_of(self, brick_id: int) -> list[int]:
        return [server for server, _ in self._index.get(brick_id, [])]

    def subfile_size(self, server: int) -> int:
        return sum(self._sizes[b] for b in self.bricklists[server])

    def to_lists(self) -> list[list[int]]:
        return [list(bl) for bl in self.bricklists]

    @classmethod
    def empty(cls, n_servers: int, sizes: Sequence[int]) -> "ReplicaMap":
        return cls.build(n_servers, [[] for _ in range(n_servers)], sizes)
