"""DPFS core: striping methods, placement, request combination, the file
system facade and its metadata layer."""

from .brick import (
    BrickLocation,
    BrickMap,
    BrickSlice,
    ReplicaMap,
    is_replica_subfile,
    replica_subfile,
)
from .cache import BrickCache, CacheStats
from .checksum import CRC_ALGORITHM, checksum, checksum_fn
from .combine import ServerRequest, SlicePlacement, plan_requests
from .crashpoints import SimulatedCrash, armed, crashpoint
from .crashpoints import arm as arm_crashpoint
from .crashpoints import disarm as disarm_crashpoint
from .crashpoints import registered as registered_crashpoints
from .dispatch import (
    Dispatcher,
    DispatcherStats,
    DispatchPolicy,
    DispatchResult,
    is_transient,
)
from .filesystem import DPFS
from .fsck import Finding, FsckReport, fsck
from .handle import FileHandle, IOStats
from .intent import Intent, IntentLog, RecoveryAction, RecoveryReport, recover
from .hints import DEFAULT_BRICK_SIZE, Hint
from .metadata import FileRecord, MetadataManager, normalize_path, split_path
from .placement import (
    Greedy,
    PlacementPolicy,
    RoundRobin,
    build_brick_map,
    build_replicated_maps,
    make_policy,
)
from .scrub import ScrubFinding, ScrubReport, scrub, verify_file_copies
from .striping import (
    ArrayStriping,
    FileLevel,
    LinearStriping,
    MultidimStriping,
    StripingMethod,
)
from .transfer import copy_within, export_file, import_file

__all__ = [
    "DPFS",
    "fsck",
    "FsckReport",
    "Finding",
    "scrub",
    "ScrubFinding",
    "ScrubReport",
    "verify_file_copies",
    "Intent",
    "IntentLog",
    "RecoveryAction",
    "RecoveryReport",
    "recover",
    "SimulatedCrash",
    "crashpoint",
    "armed",
    "arm_crashpoint",
    "disarm_crashpoint",
    "registered_crashpoints",
    "CRC_ALGORITHM",
    "checksum",
    "checksum_fn",
    "BrickCache",
    "CacheStats",
    "FileHandle",
    "IOStats",
    "Hint",
    "DEFAULT_BRICK_SIZE",
    "FileLevel",
    "StripingMethod",
    "LinearStriping",
    "MultidimStriping",
    "ArrayStriping",
    "BrickSlice",
    "BrickLocation",
    "BrickMap",
    "ReplicaMap",
    "replica_subfile",
    "is_replica_subfile",
    "PlacementPolicy",
    "RoundRobin",
    "Greedy",
    "make_policy",
    "build_brick_map",
    "build_replicated_maps",
    "plan_requests",
    "ServerRequest",
    "SlicePlacement",
    "Dispatcher",
    "DispatcherStats",
    "DispatchPolicy",
    "DispatchResult",
    "is_transient",
    "MetadataManager",
    "FileRecord",
    "normalize_path",
    "split_path",
    "import_file",
    "export_file",
    "copy_within",
]
