"""DPFS core: striping methods, placement, request combination, the file
system facade and its metadata layer."""

from .brick import BrickLocation, BrickMap, BrickSlice
from .cache import BrickCache, CacheStats
from .combine import ServerRequest, SlicePlacement, plan_requests
from .dispatch import (
    Dispatcher,
    DispatcherStats,
    DispatchPolicy,
    DispatchResult,
    is_transient,
)
from .filesystem import DPFS
from .fsck import Finding, FsckReport, fsck
from .handle import FileHandle, IOStats
from .hints import DEFAULT_BRICK_SIZE, Hint
from .metadata import FileRecord, MetadataManager, normalize_path, split_path
from .placement import Greedy, PlacementPolicy, RoundRobin, build_brick_map, make_policy
from .striping import (
    ArrayStriping,
    FileLevel,
    LinearStriping,
    MultidimStriping,
    StripingMethod,
)
from .transfer import copy_within, export_file, import_file

__all__ = [
    "DPFS",
    "fsck",
    "FsckReport",
    "Finding",
    "BrickCache",
    "CacheStats",
    "FileHandle",
    "IOStats",
    "Hint",
    "DEFAULT_BRICK_SIZE",
    "FileLevel",
    "StripingMethod",
    "LinearStriping",
    "MultidimStriping",
    "ArrayStriping",
    "BrickSlice",
    "BrickLocation",
    "BrickMap",
    "PlacementPolicy",
    "RoundRobin",
    "Greedy",
    "make_policy",
    "build_brick_map",
    "plan_requests",
    "ServerRequest",
    "SlicePlacement",
    "Dispatcher",
    "DispatcherStats",
    "DispatchPolicy",
    "DispatchResult",
    "is_transient",
    "MetadataManager",
    "FileRecord",
    "normalize_path",
    "split_path",
    "import_file",
    "export_file",
    "copy_within",
]
