"""Persistent intent journal for crash-consistent multi-step operations.

The paper's metadata consistency story is per-statement: every SQL
transaction is atomic (§5).  But DPFS's interesting mutations span the
metadata database *and* N storage servers — create, remove, rename,
grow, replica refill — and a client that dies between the database
commit and the last subfile operation leaves the two sources of truth
disagreeing (orphan subfiles, data stranded under an old name, ...).

This module supplies the standard cure: **write-ahead intents**.
Before its first side effect, an operation records an intent row in the
``dpfs_intent`` metadata table — the operation name, its arguments, the
ordered list of idempotent steps it will take, and which step is the
*commit point*.  Steps are marked off as they complete; the row is
retired when the operation finishes.  After a crash the journal names
exactly which operations were in flight, and the recovery engine
(:func:`recover`) applies one rule:

    *If the commit step completed, roll the intent forward (re-execute
    every remaining step — all steps are idempotent, so re-executing
    completed ones too is harmless).  Otherwise roll it back (undo in
    reverse).  Then retire the intent.*

An empty commit step means "always roll forward" (used by pure-repair
operations like replica refill, where re-running from scratch is both
safe and the only useful recovery).

Recovery runs automatically when a :class:`~repro.core.filesystem.DPFS`
instance is constructed (``auto_recover=True``, the default) and on
demand through ``dpfs recover`` / :meth:`DPFS.recover`.  The automatic
mount-time sweep only touches intents older than the mount's
``recover_grace_s`` (intents are stamped with their creation time), so
a second mount sharing the metadata database cannot roll back an
operation a *live* client is still executing; the explicit calls sweep
every pending intent regardless of age.  ``dpfs fsck`` surfaces
still-pending intents as ``pending-intent`` findings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..errors import IntentError, MetaDBError
from ..metadb import Database

if TYPE_CHECKING:  # pragma: no cover
    from .filesystem import DPFS

__all__ = [
    "Intent",
    "IntentLog",
    "RecoveryAction",
    "RecoveryReport",
    "recover",
]


@dataclass
class Intent:
    """One in-flight (or crashed) multi-step operation."""

    intent_id: str
    op: str
    args: dict[str, Any]
    steps: list[str]
    done: list[str]
    commit_step: str
    #: wall-clock creation time (``time.time()``); lets recovery tell a
    #: freshly-begun intent of a *live* client from one a dead client
    #: abandoned.  0.0 for rows migrated from pre-timestamp journals.
    created_at: float = 0.0

    def age_s(self, now: float | None = None) -> float:
        """Seconds since the intent was journalled."""
        return (time.time() if now is None else now) - self.created_at

    @property
    def committed(self) -> bool:
        """True when recovery must roll forward rather than back."""
        return not self.commit_step or self.commit_step in self.done

    @property
    def path(self) -> str:
        """Primary path the intent concerns (for reports/findings)."""
        return str(
            self.args.get("path") or self.args.get("old") or "?"
        )


class IntentLog:
    """The ``dpfs_intent`` table: write-ahead records of multi-step ops."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.db.execute(
            "CREATE TABLE IF NOT EXISTS dpfs_intent ("
            " intent_id TEXT PRIMARY KEY,"
            " op TEXT NOT NULL,"
            " args JSON NOT NULL,"
            " steps JSON NOT NULL,"
            " done JSON NOT NULL,"
            " commit_step TEXT NOT NULL,"
            " created_at REAL NOT NULL)"
        )
        self._migrate_missing_created_at()

    def _migrate_missing_created_at(self) -> None:
        """Rebuild a pre-timestamp journal with ``created_at`` rows.

        Migrated intents get ``created_at = 0.0`` — infinitely old — so
        a recovery sweep with any grace period still picks them up (a
        journal left by an older client is by definition abandoned).
        """
        try:
            self.db.execute("SELECT created_at FROM dpfs_intent")
            return
        except MetaDBError:
            pass
        rows = self.db.execute(
            "SELECT intent_id, op, args, steps, done, commit_step "
            "FROM dpfs_intent"
        ).rows
        with self.db.transaction():
            self.db.execute("DROP TABLE dpfs_intent")
            self.db.execute(
                "CREATE TABLE dpfs_intent ("
                " intent_id TEXT PRIMARY KEY,"
                " op TEXT NOT NULL,"
                " args JSON NOT NULL,"
                " steps JSON NOT NULL,"
                " done JSON NOT NULL,"
                " commit_step TEXT NOT NULL,"
                " created_at REAL NOT NULL)"
            )
            for row in rows:
                self.db.execute(
                    "INSERT INTO dpfs_intent VALUES (?, ?, ?, ?, ?, ?, ?)",
                    [
                        row["intent_id"],
                        row["op"],
                        row["args"],
                        row["steps"],
                        row["done"],
                        row["commit_step"],
                        0.0,
                    ],
                )

    # ------------------------------------------------------------------
    def begin(
        self,
        op: str,
        args: dict[str, Any],
        steps: list[str],
        commit_step: str,
    ) -> Intent:
        """Persist a new intent *before* the operation's first side effect."""
        if commit_step and commit_step not in steps:
            raise IntentError(
                f"commit step {commit_step!r} not among steps {steps}"
            )
        with self.db.transaction():
            existing = [
                row["intent_id"]
                for row in self.db.execute(
                    "SELECT intent_id FROM dpfs_intent"
                ).rows
            ]
            seq = 1 + max(
                (int(i[1:]) for i in existing if i[1:].isdigit()), default=0
            )
            intent = Intent(
                intent_id=f"i{seq:08d}",
                op=op,
                args=dict(args),
                steps=list(steps),
                done=[],
                commit_step=commit_step,
                created_at=time.time(),
            )
            self.db.execute(
                "INSERT INTO dpfs_intent VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    intent.intent_id,
                    intent.op,
                    intent.args,
                    intent.steps,
                    intent.done,
                    intent.commit_step,
                    intent.created_at,
                ],
            )
        return intent

    def mark(self, intent: Intent, step: str) -> None:
        """Record one completed step (single-statement, hence atomic)."""
        if step not in intent.steps:
            raise IntentError(
                f"step {step!r} not among {intent.op} steps {intent.steps}"
            )
        if step not in intent.done:
            intent.done.append(step)
        self.db.execute(
            "UPDATE dpfs_intent SET done = ? WHERE intent_id = ?",
            [intent.done, intent.intent_id],
        )

    def retire(self, intent: Intent) -> None:
        """Drop a finished (or undone) intent (idempotent)."""
        self.db.execute(
            "DELETE FROM dpfs_intent WHERE intent_id = ?", [intent.intent_id]
        )

    def pending(self, min_age_s: float = 0.0) -> list[Intent]:
        """Every unretired intent, oldest first.

        ``min_age_s`` filters to intents journalled at least that many
        seconds ago — the mount-time auto-recovery sweep uses it as a
        grace period so a *live* concurrent client's in-flight intents
        are never mistaken for crash debris.
        """
        rows = self.db.execute(
            "SELECT intent_id, op, args, steps, done, commit_step, "
            "created_at FROM dpfs_intent ORDER BY intent_id"
        ).rows
        now = time.time()
        intents = []
        for row in rows:
            intent = Intent(
                intent_id=row["intent_id"],
                op=row["op"],
                args=dict(row["args"]),
                steps=list(row["steps"]),
                done=list(row["done"]),
                commit_step=row["commit_step"],
                created_at=float(row["created_at"]),
            )
            if intent.age_s(now) >= min_age_s:
                intents.append(intent)
        return intents


# ---------------------------------------------------------------------------
# recovery engine
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RecoveryAction:
    """What recovery did about one pending intent."""

    intent_id: str
    op: str
    path: str
    direction: str        # "forward" | "back"
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "DONE" if self.ok else "STUCK"
        verb = "rolled forward" if self.direction == "forward" else "rolled back"
        tail = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.op} {self.path}: {verb}{tail}"


@dataclass
class RecoveryReport:
    """Outcome of one recovery sweep."""

    actions: list[RecoveryAction] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(a.ok for a in self.actions)

    @property
    def recovered(self) -> list[RecoveryAction]:
        return [a for a in self.actions if a.ok]

    @property
    def stuck(self) -> list[RecoveryAction]:
        return [a for a in self.actions if not a.ok]

    def __str__(self) -> str:
        lines = [
            f"recover: {len(self.actions)} pending intent(s), "
            f"{len(self.recovered)} recovered, {len(self.stuck)} stuck"
        ]
        lines += [str(a) for a in self.actions]
        return "\n".join(lines)


def _forward_create(fs: "DPFS", args: dict[str, Any]) -> None:
    fs._redo_create_subfiles(args["path"], bool(args.get("replicated")))


def _back_create(fs: "DPFS", args: dict[str, Any]) -> None:
    # If the path exists in metadata, this (uncommitted) intent lost a
    # create race: a concurrent winner committed and the subfiles now
    # belong to *its* file.  Rolling them back would strand the winner.
    if fs.meta.file_exists(args["path"]):
        return
    fs._undo_create_subfiles(args["path"])


def _forward_remove(fs: "DPFS", args: dict[str, Any]) -> None:
    fs._redo_remove_subfiles(args["path"])


def _forward_rename(fs: "DPFS", args: dict[str, Any]) -> None:
    fs._redo_rename_subfiles(
        args["old"], args["new"], bool(args.get("replicated"))
    )


def _forward_grow(fs: "DPFS", args: dict[str, Any]) -> None:
    # grow is a single metadata transaction (its commit step); once that
    # committed there is no storage-side work — bricks materialise
    # lazily on first write — and before it nothing happened at all.
    return None


def _forward_refill(fs: "DPFS", args: dict[str, Any]) -> None:
    server = args.get("server")
    fs._redo_refill_replicas(
        args["path"], int(server) if server is not None else None
    )


def _noop(fs: "DPFS", args: dict[str, Any]) -> None:
    return None


_FORWARD: dict[str, Callable[["DPFS", dict[str, Any]], None]] = {
    "create": _forward_create,
    "remove": _forward_remove,
    "rename": _forward_rename,
    "grow": _forward_grow,
    "refill": _forward_refill,
}

_BACK: dict[str, Callable[["DPFS", dict[str, Any]], None]] = {
    "create": _back_create,
    "remove": _noop,      # commit (metadata removal) never happened
    "rename": _noop,      # commit (metadata rekey) never happened
    "grow": _noop,
    "refill": _noop,      # refill always rolls forward (commit_step "")
}


def recover(fs: "DPFS", min_age_s: float = 0.0) -> RecoveryReport:
    """Roll every pending intent forward or back; retire what succeeds.

    Failures (an unreachable server, say) leave the intent pending so a
    later sweep — or ``dpfs fsck --repair`` — can finish the job; they
    never abort the sweep for the remaining intents.

    ``min_age_s`` limits the sweep to intents at least that old.  The
    mount-time auto sweep passes the mount's recovery grace period so it
    never "recovers" (i.e. corrupts) an operation a live client sharing
    the metadata database is still executing; an explicit
    ``dpfs recover`` / :meth:`DPFS.recover` call sweeps everything.
    """
    report = RecoveryReport()
    c_recovered = fs.metrics.counter(
        "dpfs_intents_recovered_total",
        "pending intents resolved by recovery, by direction",
    )
    c_stuck = fs.metrics.counter(
        "dpfs_intents_stuck_total",
        "pending intents recovery could not resolve",
    )
    for intent in fs.intents.pending(min_age_s):
        direction = "forward" if intent.committed else "back"
        handler = (_FORWARD if intent.committed else _BACK).get(intent.op)
        if handler is None:
            report.actions.append(
                RecoveryAction(
                    intent.intent_id, intent.op, intent.path, direction,
                    False, f"unknown intent op {intent.op!r}",
                )
            )
            c_stuck.inc(op=intent.op)
            continue
        try:
            handler(fs, intent.args)
        except Exception as exc:  # noqa: BLE001 - reported, intent kept
            report.actions.append(
                RecoveryAction(
                    intent.intent_id, intent.op, intent.path, direction,
                    False, str(exc),
                )
            )
            c_stuck.inc(op=intent.op)
            continue
        fs.intents.retire(intent)
        report.actions.append(
            RecoveryAction(
                intent.intent_id, intent.op, intent.path, direction, True
            )
        )
        c_recovered.inc(op=intent.op, direction=direction)
    return report
