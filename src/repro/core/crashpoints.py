"""Deterministic crash-point injection for crash-consistency testing.

Multi-step operations (:mod:`repro.core.intent`) call
:func:`crashpoint` at every step boundary::

    crashpoint("filesystem.rename.after_metadata")

In a real run the call is a no-op costing one global read.  Tests arm a
named point with :func:`arm`; the next time execution reaches it the
process "crashes" — either by raising :class:`SimulatedCrash` (which,
being a :class:`BaseException`, sails through every ``except Exception``
recovery path exactly like a genuine ``kill -9`` would skip them) or,
in ``mode="exit"``, by calling :func:`os._exit` so no ``finally`` block
and no atexit hook runs at all.  A point fires **once** and disarms
itself, so the recovery sweep that follows can safely re-execute the
same code path.

Subprocess crash tests arm through the environment instead of the API:
``DPFS_CRASHPOINT=<name>`` (and optionally
``DPFS_CRASHPOINT_MODE=exit``) arms the point at import time, which is
how the kill-9 acceptance test murders a real client mid-operation.

Every point must be declared with :func:`register` (done next to the
code that calls it) so the systematic crash sweep can enumerate
*every* registered point and prove recovery from each one.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "SimulatedCrash",
    "crashpoint",
    "register",
    "registered",
    "arm",
    "disarm",
    "armed_name",
    "armed",
]

#: exit status used by ``mode="exit"`` so a parent process can tell a
#: simulated crash apart from any ordinary failure
CRASH_EXIT_CODE = 86


class SimulatedCrash(BaseException):
    """An armed crash point fired.

    Deliberately *not* a :class:`repro.errors.DPFSError` — and not even
    an :class:`Exception` — so no error-handling or cleanup code in the
    library can absorb it: the operation dies mid-flight, exactly like
    the process it models.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"simulated crash at {name!r}")
        self.name = name


#: every declared crash point (populated by :func:`register` at import
#: time of the modules that call :func:`crashpoint`)
_REGISTRY: set[str] = set()

_lock = threading.Lock()


class _Armed:
    """One armed point; fires at most once."""

    __slots__ = ("name", "mode", "fired")

    def __init__(self, name: str, mode: str) -> None:
        self.name = name
        self.mode = mode
        self.fired = False


_armed: _Armed | None = None


def register(name: str) -> str:
    """Declare a crash point; returns the name for use as a constant."""
    _REGISTRY.add(name)
    return name


def registered(prefix: str = "") -> list[str]:
    """All declared crash points (optionally filtered by name prefix)."""
    return sorted(n for n in _REGISTRY if n.startswith(prefix))


def arm(name: str, *, mode: str = "raise", _validate: bool = True) -> None:
    """Arm one crash point; the next :func:`crashpoint(name)` fires it.

    ``mode="raise"`` raises :class:`SimulatedCrash`; ``mode="exit"``
    terminates the process with ``os._exit(CRASH_EXIT_CODE)``.
    """
    global _armed
    if mode not in ("raise", "exit"):
        raise ValueError(f"unknown crash mode {mode!r}")
    if _validate and name not in _REGISTRY:
        raise KeyError(
            f"unknown crash point {name!r}; registered points: "
            f"{registered()}"
        )
    with _lock:
        _armed = _Armed(name, mode)


def disarm() -> None:
    """Disarm whatever is armed (idempotent)."""
    global _armed
    with _lock:
        _armed = None


def armed_name() -> str | None:
    """Name of the currently armed point, if any."""
    a = _armed
    return a.name if a is not None else None


@contextmanager
def armed(name: str, *, mode: str = "raise") -> Iterator[None]:
    """``with armed("..."):`` — arm on entry, disarm on exit."""
    arm(name, mode=mode)
    try:
        yield
    finally:
        disarm()


def crashpoint(name: str) -> None:
    """Crash here if ``name`` is armed; otherwise do nothing.

    The disarmed path is a single global load and ``is None`` test so
    production code can call this on every step boundary for free.
    """
    a = _armed
    if a is None or a.name != name:
        return
    _fire(a)


def _fire(a: _Armed) -> None:
    global _armed
    with _lock:
        if a.fired:        # lost the race: another thread already fired
            return
        a.fired = True
        _armed = None
    if a.mode == "exit":
        os._exit(CRASH_EXIT_CODE)  # no cleanup, no flush: a real crash
    raise SimulatedCrash(a.name)


# -- environment arming (subprocess crash tests) ----------------------------
_env_point = os.environ.get("DPFS_CRASHPOINT")
if _env_point:  # pragma: no cover - exercised via subprocess tests
    arm(
        _env_point,
        mode=os.environ.get("DPFS_CRASHPOINT_MODE", "raise"),
        _validate=False,  # registration happens after interpreter start
    )
