"""The DPFS file system facade — DPFS-Open/Close plus namespace ops.

Binds together a storage backend (the I/O-node pool), the metadata
manager (four SQL tables, §5), the striping methods (§3), the placement
algorithms (§4.1) and the request planner (§4.2).

    fs = DPFS.memory(n_servers=4)
    fs.makedirs("/home/user")
    hint = Hint.multidim((1024, 1024), 8, (128, 128), placement="greedy")
    with fs.open("/home/user/field", "w", hint=hint) as f:
        f.write_array((0, 0), data)
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from ..backends.base import StorageBackend
from ..backends.local import LocalBackend
from ..backends.memory import MemoryBackend
from ..errors import (
    DPFSError,
    FileExists,
    FileNotFound,
    FileSystemError,
    InvalidHint,
    MultiServerError,
    PermissionDenied,
)
from ..metadb import Database
from ..obs import MetricsRegistry, Tracer
from .brick import BrickMap, ReplicaMap, replica_subfile
from .cache import BrickCache
from .crashpoints import crashpoint, register
from .dispatch import Dispatcher, DispatchPolicy
from .handle import FileHandle
from .hints import Hint
from .intent import IntentLog, RecoveryReport
from .intent import recover as _recover_intents
from .metadata import FileRecord, MetadataManager, normalize_path, split_path
from .placement import Greedy, PlacementPolicy, RoundRobin, make_policy
from .striping import FileLevel, LinearStriping

__all__ = ["DPFS"]

#: default permission bits for new files (the paper's example uses 744)
DEFAULT_PERMISSION = 0o744

# -- crash points ------------------------------------------------------------
# One per step boundary of every journalled multi-step operation; the
# systematic crash sweep (tests/core/test_crash_sweep.py) arms each of
# these in turn and proves recovery restores an fsck/scrub-clean
# namespace.  The ``mid_subfiles``/``mid_copy`` points sit *inside* the
# per-server fan-out, after one server's work, so they model a crash
# with the mutation half-applied across the cluster.  The ``in_commit``
# points sit inside the commit transaction, between the metadata
# mutation and the intent mark that shares its transaction: a crash
# there means the transaction never became durable, so recovery must
# see an unmarked commit step and roll back.
CP_CREATE_AFTER_INTENT = register("filesystem.create.after_intent")
CP_CREATE_MID_SUBFILES = register("filesystem.create.mid_subfiles")
CP_CREATE_AFTER_SUBFILES = register("filesystem.create.after_subfiles")
CP_CREATE_IN_COMMIT = register("filesystem.create.in_commit")
CP_CREATE_AFTER_METADATA = register("filesystem.create.after_metadata")
CP_REMOVE_AFTER_INTENT = register("filesystem.remove.after_intent")
CP_REMOVE_IN_COMMIT = register("filesystem.remove.in_commit")
CP_REMOVE_AFTER_METADATA = register("filesystem.remove.after_metadata")
CP_REMOVE_MID_SUBFILES = register("filesystem.remove.mid_subfiles")
CP_REMOVE_AFTER_SUBFILES = register("filesystem.remove.after_subfiles")
CP_RENAME_AFTER_INTENT = register("filesystem.rename.after_intent")
CP_RENAME_IN_COMMIT = register("filesystem.rename.in_commit")
CP_RENAME_AFTER_METADATA = register("filesystem.rename.after_metadata")
CP_RENAME_MID_SUBFILES = register("filesystem.rename.mid_subfiles")
CP_RENAME_AFTER_SUBFILES = register("filesystem.rename.after_subfiles")
CP_GROW_AFTER_INTENT = register("filesystem.grow.after_intent")
CP_GROW_IN_COMMIT = register("filesystem.grow.in_commit")
CP_GROW_AFTER_METADATA = register("filesystem.grow.after_metadata")
CP_REFILL_AFTER_INTENT = register("filesystem.refill.after_intent")
CP_REFILL_MID_COPY = register("filesystem.refill.mid_copy")
CP_REFILL_AFTER_COPY = register("filesystem.refill.after_copy")


class _CrcLockEntry:
    """One per-path CRC lock plus the count of threads holding/awaiting it."""

    __slots__ = ("lock", "refs")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.refs = 0


class _SubsetPolicy(PlacementPolicy):
    """Restrict any policy to a subset of servers (the user's suggested
    number of I/O nodes, a DPFS-Open argument)."""

    def __init__(self, inner: PlacementPolicy, subset: Sequence[int], n_total: int) -> None:
        super().__init__(n_total)
        self.inner = inner
        self.subset = list(subset)

    @property
    def name(self) -> str:
        return self.inner.name

    def assign_next(self) -> int:
        return self.subset[self.inner.assign_next()]

    def assign_excluding(self, exclude: set[int]) -> int:
        inner_exclude = {
            i for i, s in enumerate(self.subset) if s in exclude
        }
        return self.subset[self.inner.assign_excluding(inner_exclude)]

    def assign_replicas(self, n_copies: int) -> list[int]:
        if n_copies > len(self.subset):
            raise InvalidHint(
                f"{n_copies} replicas need {n_copies} distinct servers but "
                f"io_nodes restricts placement to {len(self.subset)}"
            )
        return super().assign_replicas(n_copies)


class DPFS:
    """One mounted DPFS instance."""

    def __init__(
        self,
        backend: StorageBackend,
        db: Database | None = None,
        *,
        owner: str = "dpfs",
        default_combine: bool = True,
        cache_bytes: int = 0,
        readahead_bricks: int = 0,
        io_workers: int = 4,
        io_timeout_s: float | None = None,
        io_retries: int = 3,
        io_backoff_s: float = 0.002,
        tracing: bool = False,
        auto_recover: bool = True,
        recover_grace_s: float = 60.0,
    ) -> None:
        self.backend = backend
        self.db = db if db is not None else Database()
        self.meta = MetadataManager(self.db)
        self.meta.register_servers(backend.servers)
        #: write-ahead journal of multi-step mutations (dpfs_intent table)
        self.intents = IntentLog(self.db)
        self.owner = owner
        self.default_combine = default_combine
        #: unified observability: one registry per instance is the
        #: source of truth for every counter/histogram (``dpfs stats``),
        #: and the tracer records per-request span trees when enabled
        #: (``tracing=True`` / ``dpfs trace``).  Disabled tracing is a
        #: no-op fast path.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=tracing)
        #: shared per-server request scheduler (repro.core.dispatch).
        #: ``io_workers`` caps the fan-out; backends that declare
        #: ``parallel_safe = False`` are driven sequentially regardless.
        workers = io_workers if getattr(backend, "parallel_safe", True) else 1
        self.dispatcher = Dispatcher(
            DispatchPolicy(
                max_workers=workers,
                timeout_s=io_timeout_s,
                retries=io_retries,
                backoff_s=io_backoff_s,
            ),
            registry=self.metrics,
        )
        #: optional client-side brick cache shared by every handle
        self.cache: BrickCache | None = (
            BrickCache(cache_bytes, registry=self.metrics) if cache_bytes else None
        )
        #: backends that understand metrics (the net RemoteBackend)
        #: adopt the instance registry so wire-level series land here
        bind = getattr(backend, "bind_metrics", None)
        if callable(bind):
            bind(self.metrics)
        #: bricks to prefetch ahead of sequential reads (cache required;
        #: note BrickCache defines __len__, so test identity, not truth)
        self.readahead_bricks = (
            readahead_bricks if self.cache is not None else 0
        )
        self._server_names = [info.name for info in backend.servers]
        #: copies that failed checksum verification and have not been
        #: repaired yet: (path, brick_id, server).  Copy selection skips
        #: these; read-repair and the scrubber clear them.
        self.quarantine: set[tuple[str, int, int]] = set()
        #: per-path locks serializing read-back + checksum update after a
        #: write: the last updater of a brick shared by concurrent
        #: disjoint-extent writers must hash a snapshot that already holds
        #: every earlier updater's bytes, or it persists a stale CRC.
        #: The map is bounded two ways: remove()/rename() evict a dead
        #: path's entry immediately, and the LRU cap below evicts idle
        #: entries of *live* paths, so a long-lived mount touching many
        #: files does not grow memory without bound.  Entries are
        #: refcounted; only an entry no thread holds (or is about to
        #: hold) is evictable, which keeps the lock-per-path guarantee.
        self._crc_locks: OrderedDict[str, _CrcLockEntry] = OrderedDict()
        self._crc_locks_guard = threading.Lock()
        self._crc_lock_cap = 1024
        self._c_failover = self.metrics.counter(
            "dpfs_read_failovers_total",
            "reads served from a non-preferred brick copy, by reason",
        )
        self._c_repairs = self.metrics.counter(
            "dpfs_repairs_total", "brick copies rewritten from a good copy"
        )
        self._c_checksum = self.metrics.counter(
            "dpfs_checksum_errors_total",
            "brick payloads that failed checksum verification",
        )
        self._c_degraded = self.metrics.counter(
            "dpfs_write_degraded_total",
            "writes that succeeded with fewer than all copies",
        )
        #: crash recovery: roll any intents a dead client left behind
        #: forward or back before this mount serves its first request.
        #: Only intents older than ``recover_grace_s`` are touched — an
        #: intent younger than that may belong to a *live* client
        #: sharing this metadata database (a second mount over the same
        #: <root>/dpfs.meta, say), and "recovering" it would corrupt an
        #: operation still in flight.  Pass ``recover_grace_s=0.0`` when
        #: the mount is known exclusive (or the previous client is known
        #: dead), or ``auto_recover=False`` plus an explicit
        #: :meth:`recover` to control the sweep entirely.
        self.recover_grace_s = recover_grace_s
        self.last_recovery: RecoveryReport | None = None
        if auto_recover:
            self.last_recovery = self.recover(min_age_s=recover_grace_s)

    # -- constructors --------------------------------------------------------
    @classmethod
    def memory(cls, n_servers: int = 4, **kwargs: Any) -> "DPFS":
        """All-in-memory instance (tests / examples)."""
        backend_kw = {
            k: kwargs.pop(k)
            for k in ("capacity", "performance", "names")
            if k in kwargs
        }
        return cls(MemoryBackend(n_servers, **backend_kw), **kwargs)

    @classmethod
    def remote(
        cls,
        addresses: Sequence[tuple[str, int]],
        **kwargs: Any,
    ) -> "DPFS":
        """TCP-backed instance over running ``dpfs server`` processes.

        Net knobs (``pool_size``, ``timeout``, ``busy_retries``,
        ``busy_backoff_s``, ``reconnect_attempts``,
        ``reconnect_backoff_s``, ``down_after``, ``ping_interval_s``)
        are forwarded to :class:`~repro.net.client.RemoteBackend`; the
        rest configure the mount as usual.
        """
        from ..net.client import RemoteBackend

        backend_kw = {
            k: kwargs.pop(k)
            for k in (
                "timeout",
                "pool_size",
                "busy_retries",
                "busy_backoff_s",
                "reconnect_attempts",
                "reconnect_backoff_s",
                "down_after",
                "ping_interval_s",
            )
            if k in kwargs
        }
        return cls(RemoteBackend(addresses, **backend_kw), **kwargs)

    @classmethod
    def local(
        cls,
        root: str | os.PathLike[str],
        n_servers: int = 4,
        *,
        meta_path: str | os.PathLike[str] | None = None,
        **kwargs: Any,
    ) -> "DPFS":
        """Directory-backed instance with a durable metadata database.

        ``meta_path`` defaults to ``<root>/dpfs.meta`` so re-opening the
        same root recovers the full namespace.
        """
        backend_kw = {
            k: kwargs.pop(k) for k in ("capacity", "performance") if k in kwargs
        }
        backend = LocalBackend(root, n_servers, **backend_kw)
        if meta_path is None:
            meta_path = os.path.join(os.fspath(root), "dpfs.meta")
        db = Database(meta_path)
        return cls(backend, db, **kwargs)

    def close(self) -> None:
        self.dispatcher.shutdown()
        self.db.close()
        self.backend.close()

    def __enter__(self) -> "DPFS":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- replication/checksum accounting --------------------------------------
    def _note_failover(self, reason: str) -> None:
        self._c_failover.inc(reason=reason)

    def _note_repair(self) -> None:
        self._c_repairs.inc()

    def _note_checksum_error(self) -> None:
        self._c_checksum.inc()

    def _note_degraded_write(self) -> None:
        self._c_degraded.inc()

    @contextmanager
    def _crc_lock(self, path: str) -> Iterator[None]:
        """Hold the per-path CRC update lock (``with fs._crc_lock(p):``).

        Entries are refcounted so the LRU eviction below can never hand
        two concurrent holders of the same live path different lock
        objects: an entry is only evictable while its refcount is zero,
        and the refcount is taken under the guard before the lock is
        ever acquired.
        """
        with self._crc_locks_guard:
            entry = self._crc_locks.get(path)
            if entry is None:
                entry = _CrcLockEntry()
                self._crc_locks[path] = entry
            entry.refs += 1
            self._crc_locks.move_to_end(path)
            if len(self._crc_locks) > self._crc_lock_cap:
                for stale in list(self._crc_locks):
                    if len(self._crc_locks) <= self._crc_lock_cap:
                        break
                    if self._crc_locks[stale].refs == 0:
                        del self._crc_locks[stale]
        entry.lock.acquire()
        try:
            yield
        finally:
            entry.lock.release()
            with self._crc_locks_guard:
                entry.refs -= 1

    def _evict_crc_lock(self, path: str) -> None:
        # the path is dead (removed/renamed): drop its entry regardless
        # of refcount — in-flight holders keep their entry object alive
        # and finish against subfiles that are going away anyway
        with self._crc_locks_guard:
            self._crc_locks.pop(path, None)

    def _forget_path(self, path: str) -> None:
        """Drop every in-memory trace of a removed/renamed path."""
        if self.cache is not None:
            self.cache.invalidate_file(path)
        self.quarantine = {q for q in self.quarantine if q[0] != path}
        self._evict_crc_lock(path)

    # -- recovery --------------------------------------------------------------
    def recover(self, min_age_s: float = 0.0) -> RecoveryReport:
        """Roll every pending intent forward or back (``dpfs recover``).

        An explicit call sweeps everything; the mount-time auto sweep
        passes ``min_age_s=recover_grace_s`` so it leaves a live
        concurrent client's fresh intents alone.
        """
        return _recover_intents(self, min_age_s)

    # -- namespace ------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        self.meta.mkdir(path)

    def makedirs(self, path: str) -> None:
        self.meta.makedirs(path)

    def rmdir(self, path: str) -> None:
        self.meta.rmdir(path)

    def listdir(self, path: str = "/") -> tuple[list[str], list[str]]:
        """(sub_dirs, files)."""
        return self.meta.listdir(path)

    def exists(self, path: str) -> bool:
        norm = normalize_path(path)
        return self.meta.file_exists(norm) or self.meta.dir_exists(norm)

    def isdir(self, path: str) -> bool:
        return self.meta.dir_exists(normalize_path(path))

    def isfile(self, path: str) -> bool:
        return self.meta.file_exists(normalize_path(path))

    def stat(self, path: str) -> dict[str, Any]:
        return self.meta.stat(path)

    def chmod(self, path: str, permission: int) -> None:
        self.meta.set_permission(path, permission)

    def remove(self, path: str) -> None:
        """rm — journalled: drop metadata (the commit point), then delete
        every server's subfiles (replicas too).

        The metadata drop and the intent's commit-step mark share one
        SQL transaction; the subfile deletes fan out through the
        dispatcher and run on *every* server even when some fail, so
        one DOWN server no longer strands the rest.
        Failures surface as one :class:`MultiServerError` and leave the
        intent journalled for a later recovery sweep to finish.
        """
        norm = normalize_path(path)
        if not self.meta.file_exists(norm):
            raise FileNotFound(norm)
        intent = self.intents.begin(
            "remove",
            {"path": norm},
            steps=["remove-metadata", "delete-subfiles"],
            commit_step="remove-metadata",
        )
        crashpoint(CP_REMOVE_AFTER_INTENT)
        try:
            # commit point: the metadata drop and the intent mark that
            # records it are ONE transaction, so recovery can never see
            # a committed remove whose commit step looks unreached
            with self.db.transaction():
                self.meta.remove_file(norm)
                crashpoint(CP_REMOVE_IN_COMMIT)
                self.intents.mark(intent, "remove-metadata")
        except Exception:
            self.intents.retire(intent)
            raise
        crashpoint(CP_REMOVE_AFTER_METADATA)
        self._forget_path(norm)
        self._redo_remove_subfiles(norm)   # raises MultiServerError, intent kept
        crashpoint(CP_REMOVE_AFTER_SUBFILES)
        self.intents.mark(intent, "delete-subfiles")
        self.intents.retire(intent)

    def rename(self, old: str, new: str) -> None:
        """mv — journalled: metadata re-key (the commit point), then
        per-server subfile renames fanned out through the dispatcher.

        Subfile renames are idempotent (skip a server that already
        holds the new name) and tolerate missing replica subfiles, so
        recovery can replay them and a partly-renamed cluster converges
        instead of erroring half-way.
        """
        old_norm = normalize_path(old)
        new_norm = normalize_path(new)
        if old_norm == new_norm:
            return
        replicated = False
        if self.meta.file_exists(old_norm):
            record, _ = self.meta.load_file(old_norm)
            replicated = record.replicas > 1
        intent = self.intents.begin(
            "rename",
            {"old": old_norm, "new": new_norm, "replicated": replicated},
            steps=["rekey-metadata", "rename-subfiles"],
            commit_step="rekey-metadata",
        )
        crashpoint(CP_RENAME_AFTER_INTENT)
        try:
            # commit point: metadata re-key + intent mark, atomically
            with self.db.transaction():
                self.meta.rename_file(old_norm, new_norm)
                crashpoint(CP_RENAME_IN_COMMIT)
                self.intents.mark(intent, "rekey-metadata")
        except Exception:
            self.intents.retire(intent)
            raise
        crashpoint(CP_RENAME_AFTER_METADATA)
        self._forget_path(old_norm)
        self._redo_rename_subfiles(old_norm, new_norm, replicated)
        crashpoint(CP_RENAME_AFTER_SUBFILES)
        self.intents.mark(intent, "rename-subfiles")
        self.intents.retire(intent)

    # -- journalled per-server fan-out (shared with crash recovery) ------------
    def _fanout_subfiles(self, op: str, fn) -> None:
        """Run ``fn(server)`` on every server through the dispatcher.

        Unlike a plain dispatch, failures don't stop the batch: every
        server is attempted, then the failures — if any — are raised as
        one aggregate :class:`MultiServerError`.
        """
        servers = list(range(self.backend.n_servers))
        results = self.dispatcher.run(
            servers, fn, server_of=lambda s: s, collect_errors=True
        )
        errors = [
            (s, r) for s, r in zip(servers, results) if isinstance(r, Exception)
        ]
        if errors:
            raise MultiServerError(op, errors)

    def _redo_create_subfiles(self, norm: str, replicated: bool) -> None:
        rname = replica_subfile(norm)

        def op(server: int) -> None:
            self.backend.create_subfile(server, norm)
            if replicated:
                self.backend.create_subfile(server, rname)
            crashpoint(CP_CREATE_MID_SUBFILES)

        self._fanout_subfiles("create", op)

    def _undo_create_subfiles(self, norm: str) -> None:
        rname = replica_subfile(norm)

        def op(server: int) -> None:
            self.backend.delete_subfile(server, norm)
            self.backend.delete_subfile(server, rname)

        self._fanout_subfiles("create-rollback", op)

    def _redo_remove_subfiles(self, norm: str) -> None:
        rname = replica_subfile(norm)

        def op(server: int) -> None:
            self.backend.delete_subfile(server, norm)
            self.backend.delete_subfile(server, rname)
            crashpoint(CP_REMOVE_MID_SUBFILES)

        self._fanout_subfiles("remove", op)

    def _redo_rename_subfiles(
        self, old_norm: str, new_norm: str, replicated: bool
    ) -> None:
        def op(server: int) -> None:
            self._rename_subfile_idempotent(server, old_norm, new_norm)
            if replicated:
                self._rename_subfile_idempotent(
                    server,
                    replica_subfile(old_norm),
                    replica_subfile(new_norm),
                )
            crashpoint(CP_RENAME_MID_SUBFILES)

        self._fanout_subfiles("rename", op)

    def _rename_subfile_idempotent(
        self, server: int, old_name: str, new_name: str
    ) -> None:
        """Converge one subfile toward its new name, whatever the start.

        Old exists → rename it.  Old gone but new present → a previous
        attempt already finished here, skip.  Neither → recreate the
        (sparse) subfile under the new name so metadata never references
        a missing one.
        """
        backend = self.backend
        if backend.subfile_exists(server, old_name):
            backend.rename_subfile(server, old_name, new_name)
        elif not backend.subfile_exists(server, new_name):
            backend.create_subfile(server, new_name)

    # -- replica refill (journalled; fsck --repair entry point) ----------------
    def refill_replica_subfile(self, path: str, server: int) -> bool:
        """Recreate a lost replica subfile and refill it from primaries.

        Journalled with an empty commit step, i.e. *always* rolled
        forward: re-running a refill from scratch is idempotent and the
        only useful recovery.  Returns False (keeping the intent
        pending for the next sweep) when a server is unreachable.
        """
        intent = self.intents.begin(
            "refill",
            {"path": path, "server": server},
            steps=["copy-bricks"],
            commit_step="",
        )
        crashpoint(CP_REFILL_AFTER_INTENT)
        try:
            record, bmap = self.meta.load_file(path)
            rmap = self.meta.load_replica_map(path, record)
            self._copy_replica_bricks(path, bmap, rmap, server)
        except (DPFSError, OSError):
            return False
        crashpoint(CP_REFILL_AFTER_COPY)
        self.intents.mark(intent, "copy-bricks")
        self.intents.retire(intent)
        return True

    def _copy_replica_bricks(
        self, path: str, bmap: BrickMap, rmap: ReplicaMap, server: int
    ) -> None:
        """(Re)write every replica brick one server holds, from primaries."""
        rname = replica_subfile(path)
        self.backend.create_subfile(server, rname)
        for rloc in (
            rl
            for b in rmap.bricklists[server]
            for rl in rmap.locations(b)
            if rl.server == server
        ):
            ploc = bmap.location(rloc.brick_id)
            data = self.backend.read_extents(
                ploc.server, path, [(ploc.local_offset, ploc.size)]
            )
            self.backend.write_extents(
                server, rname, [(rloc.local_offset, rloc.size)], bytes(data)
            )
            crashpoint(CP_REFILL_MID_COPY)

    def _redo_refill_replicas(self, path: str, server: int | None = None) -> None:
        """Crash-recovery redo: refill one server's (or every) replica set."""
        if not self.meta.file_exists(path):
            return  # the file is gone; nothing left to refill
        record, bmap = self.meta.load_file(path)
        if record.replicas <= 1:
            return
        rmap = self.meta.load_replica_map(path, record)
        targets = (
            [server]
            if server is not None
            else [
                s
                for s in range(self.backend.n_servers)
                if rmap.bricklists[s]
            ]
        )
        for s in targets:
            self._copy_replica_bricks(path, bmap, rmap, s)

    def du(self, path: str = "/") -> int:
        """Total logical bytes of all files at or under ``path``."""
        return self.meta.tree_usage(path)

    def df(self) -> list[dict[str, Any]]:
        """Per-server capacity report: the DPFS-SERVER table plus the
        physical bytes each server's bricks occupy."""
        usage = self.meta.server_usage()
        report = []
        for row in self.meta.servers():
            used = usage.get(row["server_id"], 0)
            report.append(
                {
                    **row,
                    "used": used,
                    "available": max(row["capacity"] - used, 0),
                }
            )
        return report

    def servers(self) -> list[dict[str, Any]]:
        """The DPFS-SERVER table contents."""
        return self.meta.servers()

    # -- open/create ---------------------------------------------------------
    def open(
        self,
        path: str,
        mode: str = "r",
        hint: Hint | None = None,
        *,
        rank: int = 0,
        combine: bool | None = None,
        stagger: bool = True,
    ) -> FileHandle:
        """DPFS-Open.

        Modes: ``"r"`` read existing, ``"r+"`` read/write existing,
        ``"w"`` create new (requires a hint; fails if the file exists —
        the paper's write-mode open is a create).
        """
        if mode not in ("r", "r+", "w"):
            raise FileSystemError(f"unsupported mode {mode!r}")
        norm = normalize_path(path)
        use_combine = self.default_combine if combine is None else combine

        if mode == "w":
            record, brick_map, replica_map = self._create(norm, hint or Hint())
        else:
            record, brick_map = self.meta.load_file(norm)
            wanted = 0o400 if mode == "r" else 0o600
            if (record.permission & wanted) != wanted:
                raise PermissionDenied(
                    f"{norm}: permission {oct(record.permission)} denies "
                    f"mode {mode!r}"
                )
            replica_map = (
                self.meta.load_replica_map(norm, record)
                if record.replicas > 1
                else None
            )

        striping = self._striping_for(record)
        return FileHandle(
            self,
            record,
            brick_map,
            striping,
            mode,
            rank=rank,
            combine=use_combine,
            stagger=stagger,
            replica_map=replica_map,
        )

    def _striping_for(self, record: FileRecord):
        hint = Hint(
            level=record.level,
            array_shape=record.array_shape,
            element_size=record.element_size,
            brick_shape=record.brick_shape,
            brick_size=record.brick_size,
            pattern=record.pattern,
            nprocs=record.nprocs,
            pgrid=record.pgrid,
            file_size=record.size,
        )
        return hint.striping()

    def _placement_policy(self, hint: Hint) -> PlacementPolicy:
        n = self.backend.n_servers
        performance = [info.performance for info in self.backend.servers]
        if hint.io_nodes is not None:
            if not 1 <= hint.io_nodes <= n:
                raise InvalidHint(
                    f"io_nodes {hint.io_nodes} outside [1, {n}]"
                )
            # Use the suggested number of I/O nodes, preferring the
            # fastest (smallest performance number).
            ranked = sorted(range(n), key=lambda i: (performance[i], i))
            subset = sorted(ranked[: hint.io_nodes])
            inner = make_policy(
                hint.placement,
                len(subset),
                [performance[i] for i in subset],
            )
            return _SubsetPolicy(inner, subset, n)
        return make_policy(hint.placement, n, performance)

    def _create(
        self, norm: str, hint: Hint
    ) -> tuple[FileRecord, BrickMap, ReplicaMap | None]:
        hint = hint.validate()
        if hint.replicas > self.backend.n_servers:
            raise InvalidHint(
                f"replicas={hint.replicas} exceeds the {self.backend.n_servers} "
                f"available servers (copies of a brick live on distinct servers)"
            )
        striping = hint.striping()
        policy = self._placement_policy(hint)
        sizes = striping.brick_sizes()
        brick_map = BrickMap(n_servers=self.backend.n_servers)
        replica_map: ReplicaMap | None = None
        if hint.replicas > 1:
            replica_map = ReplicaMap.empty(self.backend.n_servers, list(sizes))
            for brick_id, size in enumerate(sizes):
                servers = policy.assign_replicas(hint.replicas)
                brick_map.append(servers[0], size)
                replica_map.append(brick_id, servers[1:], size)
        else:
            for size in sizes:
                brick_map.append(policy.assign_next(), size)
        self._check_capacity(brick_map, replica_map)
        record = FileRecord(
            path=norm,
            owner=self.owner,
            permission=DEFAULT_PERMISSION,
            size=striping.total_bytes(),
            level=hint.level,
            element_size=hint.element_size,
            array_shape=hint.array_shape,
            brick_shape=hint.brick_shape,
            brick_size=hint.brick_size,
            pattern=hint.pattern,
            nprocs=hint.nprocs,
            pgrid=hint.pgrid,
            placement=hint.placement,
            brick_sizes=list(sizes),
            replicas=hint.replicas,
        )
        # pre-flight namespace checks so no subfile is created for a
        # request that was always going to fail (create_file re-checks
        # the same conditions atomically inside its transaction)
        parent, _base = split_path(norm)
        if not self.meta.dir_exists(parent):
            raise FileNotFound(f"no such directory: {parent}")
        if self.meta.file_exists(norm) or self.meta.dir_exists(norm):
            raise FileExists(norm)
        replicated = hint.replicas > 1
        # journalled create: subfiles first, metadata commit last — a
        # crash before the commit leaves only orphan subfiles, which
        # roll-back deletes; after it, roll-forward re-creates any
        # subfile the crash skipped (idempotent).
        intent = self.intents.begin(
            "create",
            {"path": norm, "replicated": replicated},
            steps=["create-subfiles", "write-metadata"],
            commit_step="write-metadata",
        )
        crashpoint(CP_CREATE_AFTER_INTENT)
        try:
            self._redo_create_subfiles(norm, replicated)
            self.intents.mark(intent, "create-subfiles")
            crashpoint(CP_CREATE_AFTER_SUBFILES)
            # commit point: metadata insert + intent mark, atomically
            with self.db.transaction():
                self.meta.create_file(
                    record, brick_map, self._server_names, replica_map
                )
                crashpoint(CP_CREATE_IN_COMMIT)
                self.intents.mark(intent, "write-metadata")
        except Exception:
            # undo whatever subfiles landed; if even that fails, the
            # intent stays journalled and the next sweep rolls it back.
            # When the path now exists in metadata, a concurrent create
            # won the race (ours raised FileExists): the subfiles belong
            # to the winner's file, so only the intent is dropped.
            try:
                if not self.meta.file_exists(norm):
                    self._undo_create_subfiles(norm)
                self.intents.retire(intent)
            except Exception:  # noqa: BLE001 - recovery owns the rest
                pass
            raise
        crashpoint(CP_CREATE_AFTER_METADATA)
        self.intents.retire(intent)
        return record, brick_map, replica_map

    def _check_capacity(
        self, brick_map: BrickMap, replica_map: ReplicaMap | None = None
    ) -> None:
        """Reject creations that would exceed a server's capacity (the
        DPFS-SERVER ``capacity`` attribute tells clients how much space
        each node can still take, §5).  Replica copies count in full."""
        usage = self.meta.server_usage()
        for info, server in zip(self.backend.servers, range(self.backend.n_servers)):
            needed = brick_map.subfile_size(server)
            if replica_map is not None:
                needed += replica_map.subfile_size(server)
            used = usage.get(server, 0)
            if needed and used + needed > info.capacity:
                raise FileSystemError(
                    f"server {server} ({info.name}) lacks capacity: "
                    f"{used + needed} > {info.capacity} bytes"
                )

    # -- internal hooks used by FileHandle ------------------------------------
    def _grow_file(self, handle: FileHandle, new_size: int) -> None:
        striping = handle.striping
        assert isinstance(striping, LinearStriping)
        record = handle.record
        new_bricks = striping.grow_to(new_size)
        if new_bricks:
            counts = handle.brick_map.bricks_per_server()
            replica_map = handle.replica_map
            if replica_map is not None:
                # greedy accumulated time covers replica bricks too
                for server, bricklist in enumerate(replica_map.bricklists):
                    counts[server] += len(bricklist)
            performance = [info.performance for info in self.backend.servers]
            if record.placement == "greedy":
                policy: PlacementPolicy = Greedy.resume(performance, counts)
            else:
                policy = RoundRobin(
                    self.backend.n_servers,
                    start=len(handle.brick_map) * record.replicas,
                )
            for _ in range(new_bricks):
                if record.replicas > 1 and replica_map is not None:
                    brick_id = len(handle.brick_map)
                    servers = policy.assign_replicas(record.replicas)
                    handle.brick_map.append(servers[0], striping.brick_size)
                    replica_map.append(
                        brick_id, servers[1:], striping.brick_size
                    )
                else:
                    handle.brick_map.append(
                        policy.assign_next(), striping.brick_size
                    )
            record.brick_sizes = [striping.brick_size] * len(handle.brick_map)
            record.brick_crcs = record.brick_crcs + [None] * (
                len(handle.brick_map) - len(record.brick_crcs)
            )
            # journalled grow: every metadata effect (geometry,
            # distribution, replica map, size) is ONE transaction — the
            # commit point.  No storage-side step exists: new bricks
            # materialise lazily on first write, so before the commit
            # nothing happened and after it nothing is left to do.
            intent = self.intents.begin(
                "grow",
                {"path": record.path, "new_size": new_size},
                steps=["update-metadata"],
                commit_step="update-metadata",
            )
            crashpoint(CP_GROW_AFTER_INTENT)
            try:
                # commit point: metadata growth + intent mark, atomically
                with self.db.transaction():
                    self.meta.grow_file(
                        record.path,
                        handle.brick_map,
                        record.brick_sizes,
                        self._server_names,
                        replica_map if record.replicas > 1 else None,
                        new_size,
                    )
                    crashpoint(CP_GROW_IN_COMMIT)
                    self.intents.mark(intent, "update-metadata")
            except Exception:
                self.intents.retire(intent)
                raise
            crashpoint(CP_GROW_AFTER_METADATA)
            self.intents.retire(intent)
        else:
            # no new bricks: the size update is a single (atomic) statement
            self.meta.update_file_size(record.path, new_size)
        record.size = new_size

    def _handle_closed(self, handle: FileHandle) -> None:
        """DPFS-Close hook — metadata is already durable; nothing to flush."""

    # -- convenience -----------------------------------------------------------
    def read_file(self, path: str) -> bytes:
        """Whole-file read (shell `cat` / export path)."""
        with self.open(path, "r") as handle:
            return handle.read(0, handle.size)

    def write_file(self, path: str, data: bytes, hint: Hint | None = None) -> None:
        """Create + write a whole file in one call."""
        if hint is None:
            hint = Hint.linear(file_size=len(data))
        with self.open(path, "w", hint=hint) as handle:
            if hint.level is FileLevel.LINEAR:
                handle.write(0, data)
            else:
                striping = handle.striping
                total = striping.total_bytes()
                if len(data) != total:
                    raise FileSystemError(
                        f"array file holds {total} bytes, got {len(data)}"
                    )
                assert hint.array_shape is not None
                handle.write_region(
                    tuple(0 for _ in hint.array_shape), hint.array_shape, data
                )
