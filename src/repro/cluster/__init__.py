"""Mini MPI-style runtime: thread-per-rank communicators for emulating
the paper's parallel client applications."""

from .communicator import Communicator, ParallelError, run_parallel

__all__ = ["Communicator", "ParallelError", "run_parallel"]
