"""A miniature MPI-style runtime on threads.

The paper's client programs are MPI applications on an IBM SP2; tests
and examples here emulate them with one thread per rank and an
MPI-flavoured :class:`Communicator` (barrier, bcast, scatter, gather,
allgather, allreduce, point-to-point send/recv).  Collectives follow
mpi4py's lowercase-object conventions: any picklable value, root
parameter, results returned from the call.

    def program(comm, fs):
        rank = comm.rank
        data = comm.scatter([...], root=0)
        ...
        return comm.gather(result, root=0)

    results = run_parallel(program, nprocs=8, fs=fs)

This is a *single-process emulation* — ranks share memory and the GIL —
adequate for driving DPFS request streams, not a performance tool.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable

from ..errors import DPFSError

__all__ = ["Communicator", "run_parallel", "ParallelError"]


class ParallelError(DPFSError):
    """A rank raised; carries every rank's failure."""

    def __init__(self, failures: dict[int, BaseException]) -> None:
        detail = "; ".join(
            f"rank {rank}: {exc!r}" for rank, exc in sorted(failures.items())
        )
        super().__init__(f"{len(failures)} rank(s) failed: {detail}")
        self.failures = failures


class _Shared:
    """State shared by all ranks of one communicator."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.lock = threading.Lock()
        self.slots: dict[tuple[int, int], Any] = {}
        # point-to-point mailboxes: (dest, tag) → queue
        self.mailboxes: dict[tuple[int, int], queue.Queue] = {}

    def mailbox(self, dest: int, tag: int) -> queue.Queue:
        with self.lock:
            key = (dest, tag)
            box = self.mailboxes.get(key)
            if box is None:
                box = queue.Queue()
                self.mailboxes[key] = box
            return box


class Communicator:
    """One rank's endpoint (mpi4py-flavoured lowercase API)."""

    def __init__(self, rank: int, shared: _Shared) -> None:
        self.rank = rank
        self._shared = shared
        #: per-rank collective sequence number.  MPI requires all ranks
        #: to issue collectives in the same order, so equal sequence
        #: numbers across ranks always denote the same operation.
        self._seq = 0

    @property
    def size(self) -> int:
        return self._shared.size

    # -- synchronization ------------------------------------------------------
    def barrier(self) -> None:
        self._shared.barrier.wait()

    def _exchange(self, name: str, value: Any) -> list[Any]:
        """All-to-all building block: deposit, sync, read all, sync.

        Keys are (sequence, rank), so a following collective — even one
        of the same kind — never collides with this one's slots.
        """
        shared = self._shared
        seq = self._seq
        self._seq += 1
        with shared.lock:
            shared.slots[(seq, self.rank)] = value
        shared.barrier.wait()
        values = [shared.slots[(seq, r)] for r in range(shared.size)]
        shared.barrier.wait()
        # everyone has read; each rank reclaims its own slot
        with shared.lock:
            shared.slots.pop((seq, self.rank), None)
        return values

    # -- collectives ------------------------------------------------------------
    def bcast(self, value: Any, root: int = 0) -> Any:
        values = self._exchange("bcast", value if self.rank == root else None)
        return values[root]

    def scatter(self, values: list[Any] | None, root: int = 0) -> Any:
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise DPFSError(
                    f"scatter needs exactly {self.size} values at the root"
                )
        deposited = self._exchange("scatter", values if self.rank == root else None)
        return deposited[root][self.rank]

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        values = self._exchange("gather", value)
        return values if self.rank == root else None

    def allgather(self, value: Any) -> list[Any]:
        return self._exchange("allgather", value)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        values = self._exchange("allreduce", value)
        if op is None:
            result = values[0]
            for v in values[1:]:
                result = result + v
            return result
        result = values[0]
        for v in values[1:]:
            result = op(result, v)
        return result

    # -- point-to-point ------------------------------------------------------------
    def send(self, value: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise DPFSError(f"dest {dest} outside [0, {self.size})")
        self._shared.mailbox(dest, tag).put((self.rank, value))

    def recv(self, source: int | None = None, tag: int = 0, timeout: float = 30.0) -> Any:
        box = self._shared.mailbox(self.rank, tag)
        while True:
            try:
                sender, value = box.get(timeout=timeout)
            except queue.Empty:
                raise DPFSError(
                    f"rank {self.rank} recv(tag={tag}) timed out"
                ) from None
            if source is None or sender == source:
                return value
            box.put((sender, value))  # not ours: requeue


def run_parallel(
    program: Callable[..., Any],
    nprocs: int,
    *args: Any,
    timeout: float = 60.0,
    **kwargs: Any,
) -> list[Any]:
    """Run ``program(comm, *args, **kwargs)`` on ``nprocs`` rank threads.

    Returns each rank's return value in rank order; raises
    :class:`ParallelError` if any rank raised (after joining all).
    """
    if nprocs < 1:
        raise DPFSError("nprocs must be >= 1")
    shared = _Shared(nprocs)
    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}

    def runner(rank: int) -> None:
        comm = Communicator(rank, shared)
        try:
            results[rank] = program(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            failures[rank] = exc
            shared.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"rank{rank}")
        for rank in range(nprocs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            shared.barrier.abort()
            raise DPFSError(f"{t.name} did not finish within {timeout}s")
    if failures:
        raise ParallelError(failures)
    return results
