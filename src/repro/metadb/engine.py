"""The embedded database engine: SQL execution, transactions, durability.

:class:`Database` is the single public entry point::

    db = Database("/path/meta.db")            # or Database() for in-memory
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO t VALUES (?, ?)", ["a", 1])
    rows = db.execute("SELECT v FROM t WHERE k = ?", ["a"]).rows

Durability design: a JSON snapshot plus a write-ahead log of committed
transactions.  Statements outside BEGIN/COMMIT autocommit.  ROLLBACK
applies the in-memory undo journal in reverse.  ``checkpoint()`` folds
the WAL into a fresh snapshot.

This replaces the POSTGRES instance the paper ran at Northwestern; the
DPFS metadata manager (:mod:`repro.core.metadata`) speaks plain SQL to
it exactly as §5 describes.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..errors import (
    MetaDBError,
    SchemaError,
    TransactionError,
)
from .ast_nodes import (
    Begin,
    Binary,
    ColumnRef,
    Commit,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Expr,
    FuncCall,
    Insert,
    Literal,
    Param,
    Rollback,
    Select,
    Statement,
    Update,
)
from . import ast_nodes as _ast
from .expr import evaluate, expr_name, truthy
from .parser import parse
from .table import Column, Table
from .wal import RedoOp, WriteAheadLog

__all__ = ["Database", "ResultSet"]

_SNAPSHOT_SUFFIX = ".snapshot.json"
_WAL_SUFFIX = ".wal"


@dataclass
class ResultSet:
    """Outcome of one statement: result rows and/or affected-row count."""

    rows: list[dict[str, Any]] = field(default_factory=list)
    rowcount: int = 0

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (aggregate shortcut)."""
        if not self.rows:
            return None
        first = self.rows[0]
        return next(iter(first.values())) if first else None


class Database:
    """Tables + SQL executor + transaction manager + WAL persistence."""

    def __init__(self, path: str | os.PathLike[str] | None = None) -> None:
        self.tables: dict[str, Table] = {}
        # Reentrant lock serializing statements; begin()/commit()/rollback()
        # hold it across the whole transaction so concurrent threads see
        # transactions atomically (POSTGRES gave the paper this for free).
        self._lock = threading.RLock()
        self._in_txn = False
        self._txn_owner: int | None = None
        self._undo: list[RedoOp] = []
        self._redo: list[RedoOp] = []
        self._plan_cache: dict[str, Statement] = {}
        self.path = Path(path) if path is not None else None
        self._wal: WriteAheadLog | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._wal = WriteAheadLog(str(self.path) + _WAL_SUFFIX)
            self._recover()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Parse (with plan caching) and execute one SQL statement.

        Thread-safe for single statements.  Multi-statement transactions
        must use :meth:`begin`/:meth:`commit`/:meth:`rollback` (or
        :meth:`transaction`), which hold the database lock across the
        whole transaction; issuing ``BEGIN`` through ``execute`` directly
        is not safe under concurrency.
        """
        with self._lock:
            stmt = self._plan_cache.get(sql)
            if stmt is None:
                stmt = parse(sql)
                if len(self._plan_cache) > 512:
                    self._plan_cache.clear()
                self._plan_cache[sql] = stmt
            return self._dispatch(stmt, list(params))

    def begin(self) -> None:
        """Start a transaction, holding the database lock until
        :meth:`commit` or :meth:`rollback`."""
        self._lock.acquire()
        try:
            self.execute("BEGIN")
        except BaseException:
            self._lock.release()
            raise
        self._txn_owner = threading.get_ident()

    def commit(self) -> None:
        try:
            self.execute("COMMIT")
        except TransactionError:
            raise                      # no transaction → lock was never ours
        except BaseException:
            self._lock.release()       # broken mid-commit: free the lock
            raise
        self._txn_owner = None
        self._lock.release()

    def rollback(self) -> None:
        try:
            self.execute("ROLLBACK")
        except TransactionError:
            raise
        except BaseException:
            self._lock.release()
            raise
        self._txn_owner = None
        self._lock.release()

    def transaction(self) -> "_TransactionContext":
        """``with db.transaction(): ...`` — commit on success, rollback on error."""
        return _TransactionContext(self)

    @property
    def in_transaction(self) -> bool:
        return self._in_txn

    def table_names(self) -> list[str]:
        return sorted(self.tables)

    def close(self) -> None:
        if self._in_txn:
            self.rollback()
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, stmt: Statement, params: list[Any]) -> ResultSet:
        if isinstance(stmt, Select):
            return self._select(stmt, params)
        if isinstance(stmt, Insert):
            return self._autocommit(lambda: self._insert(stmt, params))
        if isinstance(stmt, Update):
            return self._autocommit(lambda: self._update(stmt, params))
        if isinstance(stmt, Delete):
            return self._autocommit(lambda: self._delete(stmt, params))
        if isinstance(stmt, CreateTable):
            return self._autocommit(lambda: self._create_table(stmt))
        if isinstance(stmt, DropTable):
            return self._autocommit(lambda: self._drop_table(stmt))
        if isinstance(stmt, CreateIndex):
            return self._autocommit(lambda: self._create_index(stmt))
        if isinstance(stmt, DropIndex):
            return self._autocommit(lambda: self._drop_index(stmt))
        if isinstance(stmt, Begin):
            if self._in_txn:
                raise TransactionError("nested BEGIN is not supported")
            self._in_txn = True
            self._undo.clear()
            self._redo.clear()
            return ResultSet()
        if isinstance(stmt, Commit):
            if not self._in_txn:
                raise TransactionError("COMMIT outside a transaction")
            self._finish_commit()
            return ResultSet()
        if isinstance(stmt, Rollback):
            if not self._in_txn:
                raise TransactionError("ROLLBACK outside a transaction")
            self._apply_undo()
            self._in_txn = False
            self._undo.clear()
            self._redo.clear()
            return ResultSet()
        raise MetaDBError(f"unhandled statement {type(stmt).__name__}")

    def _autocommit(self, action) -> ResultSet:
        """Run a mutating action; if not inside BEGIN, commit immediately."""
        if self._in_txn:
            return action()
        self._undo.clear()
        self._redo.clear()
        try:
            result = action()
        except Exception:
            self._apply_undo()
            self._undo.clear()
            self._redo.clear()
            raise
        self._flush_redo()
        return result

    def _finish_commit(self) -> None:
        self._flush_redo()
        self._in_txn = False
        self._undo.clear()
        self._redo.clear()

    def _flush_redo(self) -> None:
        if self._redo and self._wal is not None:
            self._wal.append(list(self._redo))

    def _apply_undo(self) -> None:
        for op, table_name, rowid, payload in reversed(self._undo):
            if op == "insert":          # undo an insert → delete the row
                self.tables[table_name].delete(rowid)
            elif op == "delete":        # undo a delete → restore the row
                self.tables[table_name].insert_with_rowid(rowid, payload)
            elif op == "update":        # undo an update → restore old image
                table = self.tables[table_name]
                table.update(rowid, payload)
            elif op == "create_table":
                del self.tables[table_name]
            elif op == "drop_table":
                self.tables[table_name] = Table.from_dict(payload)
            elif op == "create_index":
                self.tables[table_name].create_secondary_index(
                    payload["name"], payload["column"]
                )
            elif op == "drop_index":
                self.tables[table_name].drop_secondary_index(payload["name"])
            else:  # pragma: no cover - defensive
                raise MetaDBError(f"unknown undo op {op!r}")

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _create_table(self, stmt: CreateTable) -> ResultSet:
        if stmt.table in self.tables:
            if stmt.if_not_exists:
                return ResultSet()
            raise SchemaError(f"table {stmt.table!r} already exists")
        columns = [Column.from_def(cdef) for cdef in stmt.columns]
        table = Table(stmt.table, columns)
        self.tables[stmt.table] = table
        self._undo.append(("create_table", stmt.table, 0, None))
        self._redo.append(("create_table", stmt.table, 0, table.to_dict()))
        return ResultSet()

    def _drop_table(self, stmt: DropTable) -> ResultSet:
        table = self.tables.get(stmt.table)
        if table is None:
            if stmt.if_exists:
                return ResultSet()
            raise SchemaError(f"no such table {stmt.table!r}")
        snapshot = table.to_dict()
        del self.tables[stmt.table]
        self._undo.append(("drop_table", stmt.table, 0, snapshot))
        self._redo.append(("drop_table", stmt.table, 0, None))
        return ResultSet()

    def _index_owner(self, name: str) -> Table | None:
        for table in self.tables.values():
            if name in table.secondary:
                return table
        return None

    def _create_index(self, stmt: CreateIndex) -> ResultSet:
        if self._index_owner(stmt.name) is not None:
            if stmt.if_not_exists:
                return ResultSet()
            raise SchemaError(f"index {stmt.name!r} already exists")
        table = self._get_table(stmt.table)
        table.create_secondary_index(stmt.name, stmt.column)
        payload = {"name": stmt.name, "column": stmt.column}
        self._undo.append(("drop_index", stmt.table, 0, {"name": stmt.name}))
        self._redo.append(("create_index", stmt.table, 0, payload))
        return ResultSet()

    def _drop_index(self, stmt: DropIndex) -> ResultSet:
        table = self._index_owner(stmt.name)
        if table is None:
            if stmt.if_exists:
                return ResultSet()
            raise SchemaError(f"no such index {stmt.name!r}")
        column, _index = table.secondary[stmt.name]
        table.drop_secondary_index(stmt.name)
        self._undo.append(
            ("create_index", table.name, 0, {"name": stmt.name, "column": column})
        )
        self._redo.append(("drop_index", table.name, 0, {"name": stmt.name}))
        return ResultSet()

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _get_table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise SchemaError(f"no such table {name!r}")
        return table

    def _insert(self, stmt: Insert, params: list[Any]) -> ResultSet:
        table = self._get_table(stmt.table)
        target_cols = list(stmt.columns) if stmt.columns else table.column_names
        count = 0
        for value_tuple in stmt.rows:
            if len(value_tuple) != len(target_cols):
                raise SchemaError(
                    f"INSERT into {stmt.table!r}: {len(target_cols)} columns "
                    f"but {len(value_tuple)} values"
                )
            values = {
                name: evaluate(expr, {}, params)
                for name, expr in zip(target_cols, value_tuple)
            }
            rowid = table.insert(values)
            row_image = dict(table.rows[rowid])
            self._undo.append(("insert", stmt.table, rowid, None))
            self._redo.append(("insert", stmt.table, rowid, row_image))
            count += 1
        return ResultSet(rowcount=count)

    def _matching_rowids(
        self, table: Table, where: Expr | None, params: list[Any]
    ) -> list[int]:
        """Row ids satisfying WHERE, via unique index when possible."""
        if where is not None:
            fast = self._index_probe(table, where, params)
            if fast is not None:
                return fast
        out: list[int] = []
        for rowid, row in table.scan():
            if where is None or truthy(evaluate(where, row, params)):
                out.append(rowid)
        return out

    def _index_probe(
        self, table: Table, where: Expr, params: list[Any]
    ) -> list[int] | None:
        """Recognize ``indexed_col = constant`` and serve it from the index."""
        if not isinstance(where, Binary) or where.op != "=":
            return None
        column: ColumnRef | None = None
        constant: Expr | None = None
        if isinstance(where.left, ColumnRef) and isinstance(
            where.right, (Literal, Param)
        ):
            column, constant = where.left, where.right
        elif isinstance(where.right, ColumnRef) and isinstance(
            where.left, (Literal, Param)
        ):
            column, constant = where.right, where.left
        if column is None:
            return None
        index = table.indexes.get(column.name) or table.secondary_for_column(
            column.name
        )
        if index is None:
            return None
        value = evaluate(constant, {}, params)
        if value is None:
            return []
        return sorted(index.lookup(value))

    def _update(self, stmt: Update, params: list[Any]) -> ResultSet:
        table = self._get_table(stmt.table)
        for name, _expr in stmt.assignments:
            table.column(name)  # validate early
        count = 0
        for rowid in self._matching_rowids(table, stmt.where, params):
            row = table.rows[rowid]
            changes = {
                name: evaluate(expr, row, params)
                for name, expr in stmt.assignments
            }
            old = table.update(rowid, changes)
            undo_image = {name: old[name] for name in changes}
            redo_image = {name: table.rows[rowid][name] for name in changes}
            self._undo.append(("update", stmt.table, rowid, undo_image))
            self._redo.append(("update", stmt.table, rowid, redo_image))
            count += 1
        return ResultSet(rowcount=count)

    def _delete(self, stmt: Delete, params: list[Any]) -> ResultSet:
        table = self._get_table(stmt.table)
        count = 0
        for rowid in self._matching_rowids(table, stmt.where, params):
            row = table.delete(rowid)
            self._undo.append(("delete", stmt.table, rowid, row))
            self._redo.append(("delete", stmt.table, rowid, None))
            count += 1
        return ResultSet(rowcount=count)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _select(self, stmt: Select, params: list[Any]) -> ResultSet:
        table = self._get_table(stmt.table)
        rowids = self._matching_rowids(table, stmt.where, params)
        rows = [table.rows[rowid] for rowid in rowids]

        # Grouped / aggregate path.
        if stmt.group_by or (
            stmt.columns is not None
            and any(
                _contains_aggregate(expr) for expr, _alias in stmt.columns
            )
        ):
            return self._select_grouped(stmt, rows, params)

        if stmt.order_by:
            def sort_key(row: dict[str, Any]):
                key = []
                for item in stmt.order_by:
                    value = evaluate(item.expr, row, params)
                    # POSTGRES convention: NULLs sort as largest — last
                    # ascending, first descending.
                    key.append(
                        (
                            (value is None) != item.descending,
                            _Reversor(value) if item.descending else value,
                        )
                    )
                return key

            rows = sorted(rows, key=sort_key)

        projected: list[dict[str, Any]] = []
        for row in rows:
            if stmt.columns is None:
                projected.append(dict(row))
            else:
                out: dict[str, Any] = {}
                for expr, alias in stmt.columns:
                    out[alias or expr_name(expr)] = evaluate(expr, row, params)
                projected.append(out)

        if stmt.distinct:
            seen: set[str] = set()
            unique: list[dict[str, Any]] = []
            for row in projected:
                fingerprint = json.dumps(row, sort_keys=True, default=str)
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    unique.append(row)
            projected = unique

        if stmt.limit is not None:
            projected = projected[: stmt.limit]
        return ResultSet(rows=projected, rowcount=len(projected))

    def _select_grouped(
        self, stmt: Select, rows: list[dict[str, Any]], params: list[Any]
    ) -> ResultSet:
        """GROUP BY / HAVING / aggregate evaluation.

        Without GROUP BY every row falls into one group (and an empty
        table still yields one aggregate row, as SQL requires).
        """
        if stmt.columns is None:
            raise MetaDBError("SELECT * cannot be combined with GROUP BY")

        groups: dict[str, list[dict[str, Any]]] = {}
        group_reps: dict[str, dict[str, Any]] = {}
        if stmt.group_by:
            for row in rows:
                key_values = [
                    evaluate(g, row, params) for g in stmt.group_by
                ]
                key = json.dumps(key_values, sort_keys=True, default=str)
                groups.setdefault(key, []).append(row)
                group_reps.setdefault(key, row)
        else:
            groups[""] = rows
            group_reps[""] = rows[0] if rows else {}

        projected: list[dict[str, Any]] = []
        for key, group in groups.items():
            rep = group_reps[key]
            if stmt.having is not None:
                folded = _fold_aggregates(stmt.having, group, params)
                if not truthy(evaluate(folded, rep, params)):
                    continue
            out: dict[str, Any] = {}
            for expr, alias in stmt.columns:
                folded = _fold_aggregates(expr, group, params)
                out[alias or expr_name(expr)] = evaluate(folded, rep, params)
            projected.append(out)

        if stmt.order_by:
            def sort_key(row: dict[str, Any]):
                key = []
                for item in stmt.order_by:
                    value = evaluate(item.expr, row, params)
                    key.append(
                        (
                            (value is None) != item.descending,
                            _Reversor(value) if item.descending else value,
                        )
                    )
                return key

            projected = sorted(projected, key=sort_key)
        if stmt.limit is not None:
            projected = projected[: stmt.limit]
        return ResultSet(rows=projected, rowcount=len(projected))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _snapshot_path(self) -> Path:
        assert self.path is not None
        return Path(str(self.path) + _SNAPSHOT_SUFFIX)

    def checkpoint(self) -> None:
        """Write an atomic snapshot and truncate the WAL."""
        if self.path is None:
            return
        if self._in_txn:
            raise TransactionError("checkpoint inside a transaction")
        assert self._wal is not None
        snapshot = {
            "format": 1,
            # the id this snapshot covers: if the crash lands between the
            # snapshot rename below and the WAL truncation, recovery must
            # not re-apply the (stale) records at or below it
            "last_txn": self._wal.last_txn,
            "tables": [table.to_dict() for table in self.tables.values()],
        }
        target = self._snapshot_path()
        fd, tmp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self._wal.truncate()
        self._wal.open_for_append()

    def _recover(self) -> None:
        """Load snapshot, then replay committed WAL transactions.

        Only transactions the snapshot does not already cover are
        replayed — a crash between the snapshot rewrite and the WAL
        truncation in :meth:`checkpoint` leaves a stale log behind, and
        re-applying it would resurrect deleted rows.  Snapshots written
        before ``last_txn`` existed cover nothing (id 0).
        """
        assert self._wal is not None
        last_txn = 0
        snap = self._snapshot_path()
        if snap.exists():
            data = json.loads(snap.read_text(encoding="utf-8"))
            last_txn = int(data.get("last_txn", 0))
            for table_data in data["tables"]:
                table = Table.from_dict(table_data)
                self.tables[table.name] = table
        for txn, ops in self._wal.replay():
            if txn > last_txn:
                self._apply_redo(ops)
        # ids stay monotone even when the log is empty, so the next
        # append can never collide with what the snapshot covers
        self._wal.advance_txn_counter(last_txn)
        self._wal.open_for_append()

    def _apply_redo(self, ops: list[RedoOp]) -> None:
        for op, table_name, rowid, payload in ops:
            if op == "create_table":
                self.tables[table_name] = Table.from_dict(payload)
            elif op == "drop_table":
                self.tables.pop(table_name, None)
            elif op == "insert":
                self.tables[table_name].insert_with_rowid(int(rowid), payload)
            elif op == "update":
                self.tables[table_name].update(int(rowid), payload)
            elif op == "delete":
                self.tables[table_name].delete(int(rowid))
            elif op == "create_index":
                self.tables[table_name].create_secondary_index(
                    payload["name"], payload["column"]
                )
            elif op == "drop_index":
                self.tables[table_name].drop_secondary_index(payload["name"])
            else:  # pragma: no cover - defensive
                raise MetaDBError(f"unknown redo op {op!r}")


def _contains_aggregate(expr: Expr) -> bool:
    if isinstance(expr, FuncCall):
        return True
    if isinstance(expr, _ast.Unary):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, _ast.Binary):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, _ast.InList):
        return _contains_aggregate(expr.operand) or any(
            _contains_aggregate(i) for i in expr.items
        )
    if isinstance(expr, _ast.IsNull):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, _ast.Like):
        return _contains_aggregate(expr.operand) or _contains_aggregate(expr.pattern)
    return False


def _compute_aggregate(
    fn: FuncCall, group: list[dict[str, Any]], params: list[Any]
) -> Any:
    """Evaluate one aggregate over a group of rows."""
    name = fn.name.upper()
    if name == "COUNT" and fn.argument is None:
        return len(group)
    if fn.argument is None:
        raise MetaDBError(f"{name}(*) is not valid")
    values = [evaluate(fn.argument, row, params) for row in group]
    values = [v for v in values if v is not None]
    if fn.distinct:
        seen: dict[str, Any] = {}
        for v in values:
            seen.setdefault(json.dumps(v, sort_keys=True, default=str), v)
        values = list(seen.values())
    if name == "COUNT":
        return len(values)
    if not values:
        return None                      # SQL: aggregates over nothing → NULL
    if name == "SUM":
        return sum(values)
    if name == "AVG":
        return sum(values) / len(values)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    raise MetaDBError(f"unsupported aggregate {name!r}")


def _fold_aggregates(
    expr: Expr, group: list[dict[str, Any]], params: list[Any]
) -> Expr:
    """Replace every aggregate call in ``expr`` with its computed value,
    yielding a plain expression evaluable against a representative row."""
    if isinstance(expr, FuncCall):
        return Literal(_compute_aggregate(expr, group, params))
    if isinstance(expr, _ast.Unary):
        return _ast.Unary(expr.op, _fold_aggregates(expr.operand, group, params))
    if isinstance(expr, _ast.Binary):
        return _ast.Binary(
            expr.op,
            _fold_aggregates(expr.left, group, params),
            _fold_aggregates(expr.right, group, params),
        )
    if isinstance(expr, _ast.InList):
        return _ast.InList(
            _fold_aggregates(expr.operand, group, params),
            tuple(_fold_aggregates(i, group, params) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, _ast.IsNull):
        return _ast.IsNull(
            _fold_aggregates(expr.operand, group, params), expr.negated
        )
    if isinstance(expr, _ast.Like):
        return _ast.Like(
            _fold_aggregates(expr.operand, group, params),
            _fold_aggregates(expr.pattern, group, params),
            expr.negated,
        )
    return expr


class _Reversor:
    """Inverts comparison order for ORDER BY ... DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversor) and self.value == other.value

    def __lt__(self, other: "_Reversor") -> bool:
        if self.value is None or other.value is None:
            return False
        return other.value < self.value


class _TransactionContext:
    """Context manager returned by :meth:`Database.transaction`.

    Nesting joins: entered while a transaction is already open (same
    thread — the database lock is an RLock held by the outer one), the
    inner context becomes part of the outer transaction and neither
    commits nor rolls back on its own.  This lets a caller make a
    multi-operation sequence atomic — e.g. a metadata commit plus the
    intent-journal mark of that commit — even though each operation
    opens ``db.transaction()`` internally.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self._owns = False

    def __enter__(self) -> Database:
        # join only a transaction *this thread* opened; another thread's
        # transaction makes begin() block on the database lock as before
        if not (
            self.db.in_transaction
            and self.db._txn_owner == threading.get_ident()
        ):
            self.db.begin()
            self._owns = True
        return self.db

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._owns:
            return False  # the outermost context commits or rolls back
        if exc_type is None:
            self.db.commit()
        else:
            if self.db.in_transaction:
                self.db.rollback()
        return False
