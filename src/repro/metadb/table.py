"""Table storage: schemas, typed columns, rows and constraint checks.

Rows are stored as a dict ``rowid -> dict(column -> value)``.  Row ids
are internal, monotonically increasing integers — they give UPDATE and
DELETE a stable handle, and let the transaction layer journal precise
undo records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import ConstraintError, SchemaError
from .ast_nodes import ColumnDef
from .index import HashIndex

__all__ = ["Column", "Table"]

_VALID_TYPES = {"INTEGER", "REAL", "TEXT", "JSON"}


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    default: Any = None
    has_default: bool = False

    @classmethod
    def from_def(cls, cdef: ColumnDef) -> "Column":
        if cdef.type_name not in _VALID_TYPES:
            raise SchemaError(f"unknown column type {cdef.type_name!r}")
        return cls(
            cdef.name,
            cdef.type_name,
            cdef.primary_key,
            cdef.not_null or cdef.primary_key,
            cdef.unique or cdef.primary_key,
            cdef.default,
            cdef.has_default,
        )

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this column's type; raise on impossibility."""
        if value is None:
            return None
        if self.type_name == "INTEGER":
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                try:
                    return int(value)
                except ValueError:
                    pass
            raise ConstraintError(
                f"column {self.name!r}: cannot store {value!r} as INTEGER"
            )
        if self.type_name == "REAL":
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                try:
                    return float(value)
                except ValueError:
                    pass
            raise ConstraintError(
                f"column {self.name!r}: cannot store {value!r} as REAL"
            )
        if self.type_name == "TEXT":
            if isinstance(value, str):
                return value
            if isinstance(value, (int, float)):
                return str(value)
            raise ConstraintError(
                f"column {self.name!r}: cannot store {value!r} as TEXT"
            )
        # JSON: any json-serialisable structure (the brick lists of
        # DPFS-FILE-DISTRIBUTION live here).
        try:
            json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise ConstraintError(
                f"column {self.name!r}: value is not JSON-serialisable: {exc}"
            ) from exc
        return value


class Table:
    """Heap of rows plus unique indexes for PK/UNIQUE columns."""

    def __init__(self, name: str, columns: list[Column]) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column name in table {name!r}")
        if sum(1 for c in columns if c.primary_key) > 1:
            raise SchemaError(f"table {name!r}: multiple PRIMARY KEY columns")
        self.name = name
        self.columns = list(columns)
        self.column_names = names
        self._by_name = {c.name: c for c in columns}
        self.rows: dict[int, dict[str, Any]] = {}
        self._next_rowid = 1
        self.indexes: dict[str, HashIndex] = {
            c.name: HashIndex(c.name) for c in columns if c.unique
        }
        #: non-unique secondary indexes: index name → (column, HashIndex)
        self.secondary: dict[str, tuple[str, HashIndex]] = {}

    # -- secondary indexes ---------------------------------------------------
    def create_secondary_index(self, name: str, column: str) -> None:
        """Build a non-unique hash index over an existing column."""
        self.column(column)  # validates
        if name in self.secondary:
            raise SchemaError(f"index {name!r} already exists")
        index = HashIndex(column)
        for rowid, row in self.rows.items():
            index.add(row.get(column), rowid)
        self.secondary[name] = (column, index)

    def drop_secondary_index(self, name: str) -> None:
        if name not in self.secondary:
            raise SchemaError(f"no such index {name!r}")
        del self.secondary[name]

    def secondary_for_column(self, column: str) -> HashIndex | None:
        for col, index in self.secondary.values():
            if col == column:
                return index
        return None

    def _all_indexes(self):
        yield from self.indexes.items()
        for _name, (column, index) in self.secondary.items():
            yield column, index

    # -- schema ------------------------------------------------------------
    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    @property
    def primary_key(self) -> Column | None:
        for col in self.columns:
            if col.primary_key:
                return col
        return None

    def __len__(self) -> int:
        return len(self.rows)

    def scan(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Iterate (rowid, row) in insertion order."""
        yield from list(self.rows.items())

    # -- row operations -------------------------------------------------------
    def prepare_row(self, values: dict[str, Any]) -> dict[str, Any]:
        """Coerce + fill defaults + check NOT NULL for an insert."""
        row: dict[str, Any] = {}
        for col in self.columns:
            if col.name in values:
                row[col.name] = col.coerce(values[col.name])
            elif col.has_default:
                row[col.name] = col.coerce(col.default)
            else:
                row[col.name] = None
            if row[col.name] is None and col.not_null:
                raise ConstraintError(
                    f"column {self.name}.{col.name} is NOT NULL"
                )
        unknown = set(values) - set(self.column_names)
        if unknown:
            raise SchemaError(
                f"table {self.name!r} has no column(s) {sorted(unknown)}"
            )
        return row

    def insert(self, values: dict[str, Any]) -> int:
        """Insert a row; returns its rowid.  Values are pre-validated here."""
        row = self.prepare_row(values)
        for col_name, index in self.indexes.items():
            value = row[col_name]
            if value is not None and index.lookup(value):
                raise ConstraintError(
                    f"duplicate value {value!r} for unique column "
                    f"{self.name}.{col_name}"
                )
        rowid = self._next_rowid
        self._next_rowid += 1
        self.rows[rowid] = row
        for col_name, index in self.indexes.items():
            index.add(row[col_name], rowid)
        for _name, (column, index) in self.secondary.items():
            index.add(row.get(column), rowid)
        return rowid

    def insert_with_rowid(self, rowid: int, row: dict[str, Any]) -> None:
        """Re-insert an exact row (transaction undo / WAL replay path)."""
        if rowid in self.rows:
            raise ConstraintError(f"rowid {rowid} already present")
        self.rows[rowid] = dict(row)
        self._next_rowid = max(self._next_rowid, rowid + 1)
        for col_name, index in self.indexes.items():
            index.add(row.get(col_name), rowid)
        for _name, (column, index) in self.secondary.items():
            index.add(row.get(column), rowid)

    def update(self, rowid: int, changes: dict[str, Any]) -> dict[str, Any]:
        """Apply ``changes``; returns the *previous* row for undo logging."""
        old = self.rows[rowid]
        new = dict(old)
        for name, value in changes.items():
            col = self.column(name)
            coerced = col.coerce(value)
            if coerced is None and col.not_null:
                raise ConstraintError(f"column {self.name}.{name} is NOT NULL")
            new[name] = coerced
        for col_name, index in self.indexes.items():
            if new[col_name] != old[col_name]:
                if new[col_name] is not None:
                    existing = index.lookup(new[col_name])
                    if existing and existing != {rowid}:
                        raise ConstraintError(
                            f"duplicate value {new[col_name]!r} for unique "
                            f"column {self.name}.{col_name}"
                        )
        for col_name, index in self.indexes.items():
            if new[col_name] != old[col_name]:
                index.remove(old[col_name], rowid)
                index.add(new[col_name], rowid)
        for _name, (column, index) in self.secondary.items():
            if new.get(column) != old.get(column):
                index.remove(old.get(column), rowid)
                index.add(new.get(column), rowid)
        self.rows[rowid] = new
        return old

    def delete(self, rowid: int) -> dict[str, Any]:
        """Delete a row; returns it for undo logging."""
        row = self.rows.pop(rowid)
        for col_name, index in self.indexes.items():
            index.remove(row.get(col_name), rowid)
        for _name, (column, index) in self.secondary.items():
            index.remove(row.get(column), rowid)
        return row

    # -- persistence helpers -----------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "columns": [
                {
                    "name": c.name,
                    "type": c.type_name,
                    "primary_key": c.primary_key,
                    "not_null": c.not_null,
                    "unique": c.unique,
                    "default": c.default,
                    "has_default": c.has_default,
                }
                for c in self.columns
            ],
            "next_rowid": self._next_rowid,
            "secondary": {
                name: column
                for name, (column, _index) in self.secondary.items()
            },
            "rows": [[rowid, row] for rowid, row in self.rows.items()],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Table":
        columns = [
            Column(
                c["name"],
                c["type"],
                c["primary_key"],
                c["not_null"],
                c["unique"],
                c.get("default"),
                c.get("has_default", False),
            )
            for c in data["columns"]
        ]
        table = cls(data["name"], columns)
        for rowid, row in data["rows"]:
            table.insert_with_rowid(int(rowid), row)
        for name, column in data.get("secondary", {}).items():
            table.create_secondary_index(name, column)
        table._next_rowid = max(table._next_rowid, int(data["next_rowid"]))
        return table
