"""AST node definitions for the embedded SQL engine.

Two families: *expressions* (evaluate to a value given a row binding)
and *statements* (executed by :class:`repro.metadb.engine.Database`).
All nodes are frozen dataclasses so plans can be hashed/cached safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    # expressions
    "Expr",
    "Literal",
    "ColumnRef",
    "Param",
    "Unary",
    "Binary",
    "InList",
    "IsNull",
    "Like",
    "FuncCall",
    # statements
    "Statement",
    "ColumnDef",
    "CreateTable",
    "DropTable",
    "CreateIndex",
    "DropIndex",
    "Insert",
    "Select",
    "OrderItem",
    "Update",
    "Delete",
    "Begin",
    "Commit",
    "Rollback",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # str, int, float or None


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str


@dataclass(frozen=True)
class Param(Expr):
    """A positional ``?`` parameter; ``index`` is its 0-based position."""

    index: int


@dataclass(frozen=True)
class Unary(Expr):
    op: str           # 'NOT' or '-'
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str           # '=' '!=' '<' '<=' '>' '>=' 'AND' 'OR' '+' '-' '*' '/' '||'
    left: Expr
    right: Expr


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class FuncCall(Expr):
    """COUNT(*) / COUNT(expr) — the only aggregate the metadata layer needs."""

    name: str
    argument: Expr | None  # None means '*'
    distinct: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement:
    """Marker base class for statement nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str                # INTEGER | REAL | TEXT | JSON
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    default: Any = None
    has_default: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    table: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    column: str
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropIndex(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: tuple[str, ...] | None   # None = all columns in schema order
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select(Statement):
    table: str
    columns: tuple[tuple[Expr, str | None], ...] | None  # None = '*'; else (expr, alias)
    where: Expr | None = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None
    distinct: bool = False
    group_by: tuple[Expr, ...] = field(default=())
    having: Expr | None = None


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Expr | None = None


@dataclass(frozen=True)
class Begin(Statement):
    pass


@dataclass(frozen=True)
class Commit(Statement):
    pass


@dataclass(frozen=True)
class Rollback(Statement):
    pass
