"""SQL tokenizer for the embedded metadata database.

Splits SQL text into a stream of :class:`Token` objects.  The dialect is
the small subset DPFS needs (§5 of the paper): CREATE TABLE / DROP TABLE
/ INSERT / SELECT / UPDATE / DELETE / BEGIN / COMMIT / ROLLBACK, with
``?`` positional parameters, quoted string literals, numeric literals
and the usual comparison / boolean operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from ..errors import SQLSyntaxError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]


class TokenType(Enum):
    KEYWORD = auto()
    IDENTIFIER = auto()
    STRING = auto()
    NUMBER = auto()
    PARAM = auto()        # ?
    OPERATOR = auto()     # = != < <= > >= + - * / ||
    PUNCT = auto()        # ( ) , . ;
    EOF = auto()


KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE",
        "SET", "DELETE", "CREATE", "DROP", "TABLE", "IF", "EXISTS",
        "PRIMARY", "KEY", "NOT", "NULL", "AND", "OR", "IN", "IS", "LIKE",
        "ORDER", "BY", "ASC", "DESC", "LIMIT", "BEGIN", "COMMIT",
        "ROLLBACK", "INTEGER", "REAL", "TEXT", "JSON", "UNIQUE",
        "DEFAULT", "COUNT", "DISTINCT", "AS", "GROUP", "SUM", "MIN",
        "MAX", "AVG", "HAVING", "INDEX", "ON",
    }
)

_SIMPLE_OPERATORS = {"=", "<", ">", "+", "-", "*", "/"}
_COMPOUND_OPERATORS = {"!=", "<>", "<=", ">=", "||"}
_PUNCT = {"(", ")", ",", ".", ";"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    pos: int

    def matches(self, ttype: TokenType, value: str | None = None) -> bool:
        if self.type is not ttype:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # -- comments ----------------------------------------------------
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        # -- string literal ('...' with '' escaping) ----------------------
        if ch == "'":
            j = i + 1
            buf: list[str] = []
            while True:
                if j >= n:
                    raise SQLSyntaxError(f"unterminated string literal at {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(sql[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        # -- quoted identifier ("...") ------------------------------------
        if ch == '"':
            j = sql.find('"', i + 1)
            if j == -1:
                raise SQLSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token(TokenType.IDENTIFIER, sql[i + 1 : j], i))
            i = j + 1
            continue
        # -- number -------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        # -- parameter ------------------------------------------------------
        if ch == "?":
            tokens.append(Token(TokenType.PARAM, "?", i))
            i += 1
            continue
        # -- operators ------------------------------------------------------
        two = sql[i : i + 2]
        if two in _COMPOUND_OPERATORS:
            canonical = "!=" if two == "<>" else two
            tokens.append(Token(TokenType.OPERATOR, canonical, i))
            i += 2
            continue
        if ch in _SIMPLE_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        # -- identifier / keyword -------------------------------------------
        if ch.isalpha() or ch == "_":
            # The paper's hyphenated table names (DPFS-SERVER...) are spelled
            # with underscores here (dpfs_server) since '-' is the minus
            # operator in SQL.
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
