"""Write-ahead log for the embedded database.

Every *committed* transaction is appended to the log as one JSON line::

    {"txn": 17, "ops": [["insert", "dpfs_file_attr", 3, {...}], ...]}

On open, the engine loads the last snapshot and replays the WAL; a torn
final line (crash mid-append) is detected and discarded.  ``checkpoint``
rewrites the snapshot and truncates the log.

Transaction ids are monotone across the life of the database and the
snapshot records the id it covers (``last_txn``), so a crash *between*
the snapshot rewrite and the log truncation is safe: recovery replays
only records with ids beyond the snapshot and the stale prefix is
ignored instead of re-applied.

Redo records are physical: (op, table, rowid, payload), so replay is a
mechanical re-application with no SQL re-execution.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..errors import MetaDBError

__all__ = ["WriteAheadLog", "RedoOp"]

#: (op, table, rowid, payload) — op in {"insert", "delete", "update",
#: "create_table", "drop_table"}; payload depends on op.
RedoOp = tuple[str, str, int, Any]


class WriteAheadLog:
    """Append-only redo log with torn-tail recovery."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._fh = None
        self._txn_counter = 0

    # -- writing ------------------------------------------------------------
    def open_for_append(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, ops: list[RedoOp]) -> int:
        """Durably append one committed transaction; returns its id."""
        if self._fh is None:
            self.open_for_append()
        assert self._fh is not None
        self._txn_counter += 1
        record = {"txn": self._txn_counter, "ops": ops}
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return self._txn_counter

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def last_txn(self) -> int:
        """Id of the most recent transaction appended or replayed."""
        return self._txn_counter

    def advance_txn_counter(self, txn: int) -> None:
        """Never reuse ids at or below ``txn`` (snapshot coverage)."""
        self._txn_counter = max(self._txn_counter, txn)

    # -- recovery -------------------------------------------------------------
    def replay(self) -> list[tuple[int, list[RedoOp]]]:
        """All complete transactions as ``(txn_id, ops)``; drops a torn
        trailing line."""
        if not self.path.exists():
            return []
        transactions: list[tuple[int, list[RedoOp]]] = []
        raw = self.path.read_text(encoding="utf-8")
        lines = raw.split("\n")
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1 or all(
                    not later.strip() for later in lines[lineno + 1 :]
                ):
                    # Torn tail from a crash mid-append: discard silently.
                    break
                raise MetaDBError(
                    f"corrupt WAL record at line {lineno + 1} of {self.path}"
                ) from None
            ops = [tuple(op) for op in record["ops"]]
            txn = int(record["txn"])
            transactions.append((txn, ops))  # type: ignore[arg-type]
            self._txn_counter = max(self._txn_counter, txn)
        return transactions

    def truncate(self) -> None:
        """Empty the log (after a checkpoint made it redundant)."""
        self.close()
        if self.path.exists():
            self.path.unlink()
