"""Recursive-descent parser: token stream → statement AST.

Grammar (informal)::

    statement  := create | drop | insert | select | update | delete
                | BEGIN | COMMIT | ROLLBACK
    create     := CREATE TABLE [IF NOT EXISTS] name '(' coldef (',' coldef)* ')'
    coldef     := name type [PRIMARY KEY] [NOT NULL] [UNIQUE] [DEFAULT literal]
    insert     := INSERT INTO name ['(' names ')'] VALUES tuple (',' tuple)*
    select     := SELECT [DISTINCT] ('*' | item (',' item)*) FROM name
                  [WHERE expr] [ORDER BY order (',' order)*] [LIMIT n]
    update     := UPDATE name SET name '=' expr (',' ...)* [WHERE expr]
    delete     := DELETE FROM name [WHERE expr]

Expression precedence (loosest first): OR, AND, NOT, comparison
(= != < <= > >= IN IS LIKE), additive (+ - ||), multiplicative (* /),
unary minus, atoms.
"""

from __future__ import annotations

from typing import Any

from ..errors import SQLSyntaxError
from .ast_nodes import (
    Begin,
    CreateIndex,
    DropIndex,
    Binary,
    ColumnDef,
    ColumnRef,
    Commit,
    CreateTable,
    Delete,
    DropTable,
    Expr,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    OrderItem,
    Param,
    Rollback,
    Select,
    Statement,
    Unary,
    Update,
)
from .tokenizer import Token, TokenType, tokenize

__all__ = ["parse", "parse_expression"]

_TYPE_NAMES = {"INTEGER", "REAL", "TEXT", "JSON"}
_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.param_count = 0

    # -- token helpers ----------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def check(self, ttype: TokenType, value: str | None = None) -> bool:
        return self.peek().matches(ttype, value)

    def accept(self, ttype: TokenType, value: str | None = None) -> Token | None:
        if self.check(ttype, value):
            return self.advance()
        return None

    def expect(self, ttype: TokenType, value: str | None = None) -> Token:
        tok = self.peek()
        if not tok.matches(ttype, value):
            want = value or ttype.name
            raise SQLSyntaxError(
                f"expected {want} at position {tok.pos}, got {tok.value!r}"
            )
        return self.advance()

    def keyword(self, *words: str) -> bool:
        """Accept any of the given keywords; True if one was consumed."""
        tok = self.peek()
        if tok.type is TokenType.KEYWORD and tok.value in words:
            self.advance()
            return True
        return False

    def identifier(self) -> str:
        tok = self.peek()
        # Allow non-reserved keywords to double as identifiers where
        # unambiguous (e.g. a column literally named "key" won't happen in
        # DPFS but costs nothing to forbid — keep it strict instead).
        if tok.type is TokenType.IDENTIFIER:
            self.advance()
            return tok.value
        raise SQLSyntaxError(f"expected identifier at position {tok.pos}, got {tok.value!r}")

    # -- statements ---------------------------------------------------------
    def statement(self) -> Statement:
        tok = self.peek()
        if tok.type is not TokenType.KEYWORD:
            raise SQLSyntaxError(f"expected statement keyword, got {tok.value!r}")
        handler = {
            "CREATE": self._create,
            "DROP": self._drop,
            "INSERT": self._insert,
            "SELECT": self._select,
            "UPDATE": self._update,
            "DELETE": self._delete,
            "BEGIN": self._begin,
            "COMMIT": self._commit,
            "ROLLBACK": self._rollback,
        }.get(tok.value)
        if handler is None:
            raise SQLSyntaxError(f"unsupported statement {tok.value!r}")
        stmt = handler()
        self.accept(TokenType.PUNCT, ";")
        tail = self.peek()
        if tail.type is not TokenType.EOF:
            raise SQLSyntaxError(
                f"trailing input at position {tail.pos}: {tail.value!r}"
            )
        return stmt

    def _begin(self) -> Begin:
        self.expect(TokenType.KEYWORD, "BEGIN")
        return Begin()

    def _commit(self) -> Commit:
        self.expect(TokenType.KEYWORD, "COMMIT")
        return Commit()

    def _rollback(self) -> Rollback:
        self.expect(TokenType.KEYWORD, "ROLLBACK")
        return Rollback()

    def _create(self):
        self.expect(TokenType.KEYWORD, "CREATE")
        if self.keyword("INDEX"):
            return self._create_index()
        self.expect(TokenType.KEYWORD, "TABLE")
        if_not_exists = False
        if self.keyword("IF"):
            self.expect(TokenType.KEYWORD, "NOT")
            self.expect(TokenType.KEYWORD, "EXISTS")
            if_not_exists = True
        table = self.identifier()
        self.expect(TokenType.PUNCT, "(")
        columns = [self._column_def()]
        while self.accept(TokenType.PUNCT, ","):
            columns.append(self._column_def())
        self.expect(TokenType.PUNCT, ")")
        return CreateTable(table, tuple(columns), if_not_exists)

    def _column_def(self) -> ColumnDef:
        name = self.identifier()
        type_tok = self.peek()
        if type_tok.type is TokenType.KEYWORD and type_tok.value in _TYPE_NAMES:
            self.advance()
            type_name = type_tok.value
        else:
            raise SQLSyntaxError(
                f"expected column type at position {type_tok.pos}, got {type_tok.value!r}"
            )
        primary_key = not_null = unique = has_default = False
        default: Any = None
        while True:
            if self.keyword("PRIMARY"):
                self.expect(TokenType.KEYWORD, "KEY")
                primary_key = True
            elif self.keyword("NOT"):
                self.expect(TokenType.KEYWORD, "NULL")
                not_null = True
            elif self.keyword("UNIQUE"):
                unique = True
            elif self.keyword("DEFAULT"):
                default = self._literal_value()
                has_default = True
            else:
                break
        return ColumnDef(name, type_name, primary_key, not_null, unique, default, has_default)

    def _literal_value(self) -> Any:
        tok = self.peek()
        if tok.type is TokenType.STRING:
            self.advance()
            return tok.value
        if tok.type is TokenType.NUMBER:
            self.advance()
            return _number(tok.value)
        if tok.matches(TokenType.KEYWORD, "NULL"):
            self.advance()
            return None
        if tok.matches(TokenType.OPERATOR, "-"):
            self.advance()
            num = self.expect(TokenType.NUMBER)
            return -_number(num.value)
        raise SQLSyntaxError(f"expected literal at position {tok.pos}")

    def _create_index(self) -> CreateIndex:
        if_not_exists = False
        if self.keyword("IF"):
            self.expect(TokenType.KEYWORD, "NOT")
            self.expect(TokenType.KEYWORD, "EXISTS")
            if_not_exists = True
        name = self.identifier()
        self.expect(TokenType.KEYWORD, "ON")
        table = self.identifier()
        self.expect(TokenType.PUNCT, "(")
        column = self.identifier()
        self.expect(TokenType.PUNCT, ")")
        return CreateIndex(name, table, column, if_not_exists)

    def _drop(self):
        self.expect(TokenType.KEYWORD, "DROP")
        if self.keyword("INDEX"):
            if_exists = False
            if self.keyword("IF"):
                self.expect(TokenType.KEYWORD, "EXISTS")
                if_exists = True
            return DropIndex(self.identifier(), if_exists)
        self.expect(TokenType.KEYWORD, "TABLE")
        if_exists = False
        if self.keyword("IF"):
            self.expect(TokenType.KEYWORD, "EXISTS")
            if_exists = True
        return DropTable(self.identifier(), if_exists)

    def _insert(self) -> Insert:
        self.expect(TokenType.KEYWORD, "INSERT")
        self.expect(TokenType.KEYWORD, "INTO")
        table = self.identifier()
        columns: tuple[str, ...] | None = None
        if self.accept(TokenType.PUNCT, "("):
            names = [self.identifier()]
            while self.accept(TokenType.PUNCT, ","):
                names.append(self.identifier())
            self.expect(TokenType.PUNCT, ")")
            columns = tuple(names)
        self.expect(TokenType.KEYWORD, "VALUES")
        rows = [self._value_tuple()]
        while self.accept(TokenType.PUNCT, ","):
            rows.append(self._value_tuple())
        return Insert(table, columns, tuple(rows))

    def _value_tuple(self) -> tuple[Expr, ...]:
        self.expect(TokenType.PUNCT, "(")
        values = [self.expression()]
        while self.accept(TokenType.PUNCT, ","):
            values.append(self.expression())
        self.expect(TokenType.PUNCT, ")")
        return tuple(values)

    def _select(self) -> Select:
        self.expect(TokenType.KEYWORD, "SELECT")
        distinct = self.keyword("DISTINCT")
        columns: tuple[tuple[Expr, str | None], ...] | None
        if self.accept(TokenType.OPERATOR, "*"):
            columns = None
        else:
            items = [self._select_item()]
            while self.accept(TokenType.PUNCT, ","):
                items.append(self._select_item())
            columns = tuple(items)
        self.expect(TokenType.KEYWORD, "FROM")
        table = self.identifier()
        where = self.expression() if self.keyword("WHERE") else None
        group_by: list[Expr] = []
        having: Expr | None = None
        if self.keyword("GROUP"):
            self.expect(TokenType.KEYWORD, "BY")
            group_by.append(self.expression())
            while self.accept(TokenType.PUNCT, ","):
                group_by.append(self.expression())
            if self.keyword("HAVING"):
                having = self.expression()
        order_by: list[OrderItem] = []
        if self.keyword("ORDER"):
            self.expect(TokenType.KEYWORD, "BY")
            order_by.append(self._order_item())
            while self.accept(TokenType.PUNCT, ","):
                order_by.append(self._order_item())
        limit = None
        if self.keyword("LIMIT"):
            tok = self.expect(TokenType.NUMBER)
            limit = int(tok.value)
        return Select(
            table, columns, where, tuple(order_by), limit, distinct,
            tuple(group_by), having,
        )

    def _select_item(self) -> tuple[Expr, str | None]:
        expr = self.expression()
        alias = None
        if self.keyword("AS"):
            alias = self.identifier()
        return (expr, alias)

    def _order_item(self) -> OrderItem:
        expr = self.expression()
        descending = False
        if self.keyword("DESC"):
            descending = True
        else:
            self.keyword("ASC")
        return OrderItem(expr, descending)

    def _update(self) -> Update:
        self.expect(TokenType.KEYWORD, "UPDATE")
        table = self.identifier()
        self.expect(TokenType.KEYWORD, "SET")
        assignments = [self._assignment()]
        while self.accept(TokenType.PUNCT, ","):
            assignments.append(self._assignment())
        where = self.expression() if self.keyword("WHERE") else None
        return Update(table, tuple(assignments), where)

    def _assignment(self) -> tuple[str, Expr]:
        name = self.identifier()
        self.expect(TokenType.OPERATOR, "=")
        return (name, self.expression())

    def _delete(self) -> Delete:
        self.expect(TokenType.KEYWORD, "DELETE")
        self.expect(TokenType.KEYWORD, "FROM")
        table = self.identifier()
        where = self.expression() if self.keyword("WHERE") else None
        return Delete(table, where)

    # -- expressions ----------------------------------------------------------
    def expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self.keyword("OR"):
            left = Binary("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self.keyword("AND"):
            left = Binary("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self.keyword("NOT"):
            return Unary("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        tok = self.peek()
        if tok.type is TokenType.OPERATOR and tok.value in _COMPARISONS:
            self.advance()
            return Binary(tok.value, left, self._additive())
        if tok.matches(TokenType.KEYWORD, "IS"):
            self.advance()
            negated = self.keyword("NOT")
            self.expect(TokenType.KEYWORD, "NULL")
            return IsNull(left, negated)
        negated = False
        if tok.matches(TokenType.KEYWORD, "NOT"):
            # NOT IN / NOT LIKE
            nxt = self.tokens[self.pos + 1]
            if nxt.type is TokenType.KEYWORD and nxt.value in ("IN", "LIKE"):
                self.advance()
                negated = True
                tok = self.peek()
        if tok.matches(TokenType.KEYWORD, "IN"):
            self.advance()
            self.expect(TokenType.PUNCT, "(")
            items = [self.expression()]
            while self.accept(TokenType.PUNCT, ","):
                items.append(self.expression())
            self.expect(TokenType.PUNCT, ")")
            return InList(left, tuple(items), negated)
        if tok.matches(TokenType.KEYWORD, "LIKE"):
            self.advance()
            return Like(left, self._additive(), negated)
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            tok = self.peek()
            if tok.type is TokenType.OPERATOR and tok.value in ("+", "-", "||"):
                self.advance()
                left = Binary(tok.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            tok = self.peek()
            if tok.type is TokenType.OPERATOR and tok.value in ("*", "/"):
                self.advance()
                left = Binary(tok.value, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self.accept(TokenType.OPERATOR, "-"):
            return Unary("-", self._unary())
        return self._atom()

    def _atom(self) -> Expr:
        tok = self.peek()
        if tok.type is TokenType.NUMBER:
            self.advance()
            return Literal(_number(tok.value))
        if tok.type is TokenType.STRING:
            self.advance()
            return Literal(tok.value)
        if tok.type is TokenType.PARAM:
            self.advance()
            param = Param(self.param_count)
            self.param_count += 1
            return param
        if tok.matches(TokenType.KEYWORD, "NULL"):
            self.advance()
            return Literal(None)
        if tok.type is TokenType.KEYWORD and tok.value in (
            "COUNT", "SUM", "MIN", "MAX", "AVG"
        ):
            self.advance()
            self.expect(TokenType.PUNCT, "(")
            distinct = self.keyword("DISTINCT")
            if self.accept(TokenType.OPERATOR, "*"):
                if tok.value != "COUNT":
                    raise SQLSyntaxError(f"{tok.value}(*) is not valid")
                arg: Expr | None = None
            else:
                arg = self.expression()
            self.expect(TokenType.PUNCT, ")")
            return FuncCall(tok.value, arg, distinct)
        if tok.type is TokenType.IDENTIFIER:
            self.advance()
            return ColumnRef(tok.value)
        if self.accept(TokenType.PUNCT, "("):
            inner = self.expression()
            self.expect(TokenType.PUNCT, ")")
            return inner
        raise SQLSyntaxError(
            f"unexpected token {tok.value!r} at position {tok.pos}"
        )


def _number(text: str) -> int | float:
    if any(c in text for c in ".eE"):
        return float(text)
    return int(text)


def parse(sql: str) -> Statement:
    """Parse one SQL statement into its AST."""
    return _Parser(tokenize(sql)).statement()


def parse_expression(sql: str) -> Expr:
    """Parse a standalone expression (used by tests)."""
    parser = _Parser(tokenize(sql))
    expr = parser.expression()
    tok = parser.peek()
    if tok.type is not TokenType.EOF:
        raise SQLSyntaxError(f"trailing input at position {tok.pos}")
    return expr
