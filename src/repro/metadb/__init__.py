"""Embedded relational database for DPFS metadata (replaces POSTGRES, §5).

A from-scratch SQL subset engine: tokenizer → parser → executor, with
typed tables, unique hash indexes, ACID-ish transactions (undo journal +
write-ahead redo log) and atomic snapshots.

    from repro.metadb import Database

    db = Database()                     # in-memory
    db = Database("/data/dpfs.meta")    # durable (snapshot + WAL)
"""

from .engine import Database, ResultSet
from .parser import parse, parse_expression
from .table import Column, Table
from .tokenizer import Token, TokenType, tokenize

__all__ = [
    "Database",
    "ResultSet",
    "parse",
    "parse_expression",
    "tokenize",
    "Token",
    "TokenType",
    "Column",
    "Table",
]
