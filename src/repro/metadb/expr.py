"""Expression evaluation with SQL three-valued-ish semantics.

``evaluate(expr, row, params)`` computes the value of an expression AST
node against a row (a ``dict`` column → value) and positional parameter
list.  NULL propagates through comparisons and arithmetic (any operand
NULL → result NULL), and ``truthy`` treats NULL as false, which matches
how WHERE clauses behave in real SQL engines.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Mapping, Sequence

from ..errors import MetaDBError, SchemaError
from .ast_nodes import (
    Binary,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Param,
    Unary,
)

__all__ = ["evaluate", "truthy", "expr_columns", "expr_name"]


def truthy(value: Any) -> bool:
    """SQL WHERE semantics: NULL and 0 are not matches."""
    if value is None:
        return False
    return bool(value)


@lru_cache(maxsize=256)
def _like_regex(pattern: str) -> re.Pattern[str]:
    """Translate a SQL LIKE pattern (% and _) into a compiled regex."""
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise MetaDBError("division by zero")
            result = left / right
            # Integer division stays integral when exact, like most engines'
            # numeric affinity would give for INTEGER columns.
            if isinstance(left, int) and isinstance(right, int) and result == int(result):
                return int(result)
            return result
    except TypeError as exc:
        raise MetaDBError(f"type error in {op!r}: {exc}") from exc
    raise MetaDBError(f"unknown arithmetic operator {op!r}")


def _compare(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
    except TypeError as exc:
        raise MetaDBError(f"uncomparable values in {op!r}: {exc}") from exc
    raise MetaDBError(f"unknown comparison operator {op!r}")


def evaluate(
    expr: Expr,
    row: Mapping[str, Any],
    params: Sequence[Any] = (),
) -> Any:
    """Evaluate ``expr`` against ``row`` with positional ``params``."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        if expr.name not in row:
            raise SchemaError(f"unknown column {expr.name!r}")
        return row[expr.name]
    if isinstance(expr, Param):
        if expr.index >= len(params):
            raise MetaDBError(
                f"statement needs at least {expr.index + 1} parameters, "
                f"got {len(params)}"
            )
        return params[expr.index]
    if isinstance(expr, Unary):
        value = evaluate(expr.operand, row, params)
        if expr.op == "NOT":
            if value is None:
                return None
            return int(not truthy(value))
        if expr.op == "-":
            return None if value is None else -value
        raise MetaDBError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Binary):
        if expr.op == "AND":
            left = evaluate(expr.left, row, params)
            if left is not None and not truthy(left):
                return 0
            right = evaluate(expr.right, row, params)
            if right is not None and not truthy(right):
                return 0
            if left is None or right is None:
                return None
            return 1
        if expr.op == "OR":
            left = evaluate(expr.left, row, params)
            if left is not None and truthy(left):
                return 1
            right = evaluate(expr.right, row, params)
            if right is not None and truthy(right):
                return 1
            if left is None or right is None:
                return None
            return 0
        left = evaluate(expr.left, row, params)
        right = evaluate(expr.right, row, params)
        if expr.op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        if expr.op in ("=", "!=", "<", "<=", ">", ">="):
            return _compare(expr.op, left, right)
        return _arith(expr.op, left, right)
    if isinstance(expr, InList):
        value = evaluate(expr.operand, row, params)
        if value is None:
            return None
        found = any(
            evaluate(item, row, params) == value for item in expr.items
        )
        return int(found != expr.negated)
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, row, params)
        return int((value is None) != expr.negated)
    if isinstance(expr, Like):
        value = evaluate(expr.operand, row, params)
        pattern = evaluate(expr.pattern, row, params)
        if value is None or pattern is None:
            return None
        matched = _like_regex(str(pattern)).match(str(value)) is not None
        return int(matched != expr.negated)
    if isinstance(expr, FuncCall):
        raise MetaDBError(
            f"aggregate {expr.name} not allowed here (only in SELECT lists)"
        )
    raise MetaDBError(f"unknown expression node {type(expr).__name__}")


def expr_columns(expr: Expr) -> set[str]:
    """All column names referenced by ``expr`` (for validation/planning)."""
    cols: set[str] = set()
    stack: list[Expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ColumnRef):
            cols.add(node.name)
        elif isinstance(node, Unary):
            stack.append(node.operand)
        elif isinstance(node, Binary):
            stack.extend((node.left, node.right))
        elif isinstance(node, InList):
            stack.append(node.operand)
            stack.extend(node.items)
        elif isinstance(node, (IsNull, Like)):
            stack.append(node.operand)
            if isinstance(node, Like):
                stack.append(node.pattern)
        elif isinstance(node, FuncCall) and node.argument is not None:
            stack.append(node.argument)
    return cols


def expr_name(expr: Expr) -> str:
    """Derive a result-column name for an un-aliased SELECT item."""
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FuncCall):
        return f"{expr.name.lower()}"
    if isinstance(expr, Literal):
        return repr(expr.value)
    return "expr"
