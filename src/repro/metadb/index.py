"""Hash index mapping column values to row ids.

Used for UNIQUE/PRIMARY KEY enforcement and as an access path for
equality predicates (``WHERE pk = ?``) — the dominant query shape in the
DPFS metadata workload (lookup by file name / server name).

Values that are unhashable (JSON lists) are indexed by their canonical
JSON encoding.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["HashIndex"]


def _key(value: Any) -> Any:
    """Hashable proxy for an arbitrary column value."""
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True)
    return value


class HashIndex:
    """value -> set of rowids (NULLs are not indexed, as in SQL)."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._map: dict[Any, set[int]] = {}

    def add(self, value: Any, rowid: int) -> None:
        if value is None:
            return
        self._map.setdefault(_key(value), set()).add(rowid)

    def remove(self, value: Any, rowid: int) -> None:
        if value is None:
            return
        key = _key(value)
        bucket = self._map.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._map[key]

    def lookup(self, value: Any) -> set[int]:
        if value is None:
            return set()
        return set(self._map.get(_key(value), ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._map.values())
