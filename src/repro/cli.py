"""Command-line entry points: ``dpfs shell | server | bench | figures``.

``dpfs shell --root DIR``          interactive shell on a local-directory DPFS
``dpfs server --root DIR --port P`` run one storage server (§2)
``dpfs bench fig11|fig12|fig13|fig14|all``  regenerate the §8 figures
``dpfs fsck --root DIR [--repair] [--json]`` check metadata/storage consistency
``dpfs scrub --root DIR [--repair] [--json]`` checksum-verify every brick copy
``dpfs recover --root DIR [--json]`` finish operations a crashed client left
``dpfs stats``                      Prometheus metrics after a demo roundtrip
``dpfs trace``                      span trees + server-side span log

``stats`` and ``trace`` run a small write/read workload over the real
TCP transport — against ``--connect host:port`` servers, or against
ephemeral local servers in a temporary directory — and print what the
observability layer recorded.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dpfs",
        description="DPFS — Distributed Parallel File System (ICPP 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    shell_p = sub.add_parser("shell", help="interactive DPFS shell (§7)")
    shell_p.add_argument(
        "--root", default="./dpfs-data", help="directory holding the server dirs"
    )
    shell_p.add_argument("--servers", type=int, default=4, help="number of I/O nodes")
    shell_p.add_argument(
        "-c", dest="command_line", default=None, help="run one command and exit"
    )

    server_p = sub.add_parser("server", help="run one DPFS storage server (§2)")
    server_p.add_argument("--root", required=True, help="storage directory")
    server_p.add_argument("--host", default="127.0.0.1")
    server_p.add_argument("--port", type=int, default=7001)
    server_p.add_argument("--performance", type=float, default=1.0)
    server_p.add_argument("--capacity", type=int, default=1 << 30)

    bench_p = sub.add_parser("bench", help="regenerate the §8 figures")
    bench_p.add_argument(
        "figure",
        choices=["fig11", "fig12", "fig13", "fig14", "all"],
        help="which figure to regenerate",
    )
    bench_p.add_argument(
        "--rows", type=int, default=2048, help="array rows (elements)"
    )
    bench_p.add_argument(
        "--cols", type=int, default=8192, help="array cols (elements)"
    )

    fsck_p = sub.add_parser("fsck", help="metadata/storage consistency check")
    fsck_p.add_argument("--root", required=True, help="DPFS root directory")
    fsck_p.add_argument("--servers", type=int, default=4)
    fsck_p.add_argument(
        "--repair", action="store_true", help="fix what can be fixed"
    )
    fsck_p.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )

    scrub_p = sub.add_parser(
        "scrub", help="checksum-verify every brick copy; repair from replicas"
    )
    scrub_p.add_argument("--root", required=True, help="DPFS root directory")
    scrub_p.add_argument("--servers", type=int, default=4)
    scrub_p.add_argument(
        "--repair",
        action="store_true",
        help="rewrite bad copies from good ones and refresh stale checksums",
    )
    scrub_p.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )

    recover_p = sub.add_parser(
        "recover",
        help="roll forward/back multi-step operations a crashed client "
        "left in the intent journal",
    )
    recover_p.add_argument("--root", required=True, help="DPFS root directory")
    recover_p.add_argument("--servers", type=int, default=4)
    recover_p.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )

    for name, help_text in (
        ("stats", "run a demo roundtrip, print Prometheus metrics"),
        ("trace", "run a traced roundtrip, print client + server spans"),
    ):
        obs_p = sub.add_parser(name, help=help_text)
        obs_p.add_argument(
            "--connect",
            nargs="+",
            metavar="HOST:PORT",
            default=None,
            help="existing dpfs servers (default: ephemeral local ones)",
        )
        obs_p.add_argument(
            "--servers",
            type=int,
            default=2,
            help="ephemeral servers to start when --connect is absent",
        )
        obs_p.add_argument(
            "--size",
            type=int,
            default=256 * 1024,
            help="bytes written+read by the demo workload",
        )
        obs_p.add_argument(
            "--cache-kib",
            type=int,
            default=1024,
            help="client brick cache size (0 disables)",
        )
        obs_p.add_argument(
            "--pool-size",
            type=int,
            default=4,
            help="TCP connections kept per server",
        )
        obs_p.add_argument(
            "--ping-interval",
            type=float,
            default=None,
            help="background health-probe interval in seconds (default off)",
        )
    return parser


def _cmd_shell(args: argparse.Namespace) -> int:
    from .core.filesystem import DPFS
    from .errors import DPFSError
    from .shell import Shell

    fs = DPFS.local(args.root, n_servers=args.servers)
    shell = Shell(fs)
    if args.command_line is not None:
        try:
            output = shell.run_line(args.command_line)
        except DPFSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if output:
            print(output)
        return 0
    shell.repl()
    return 0


def _cmd_server(args: argparse.Namespace) -> int:
    from .net.server import DPFSServer

    server = DPFSServer(
        args.root,
        host=args.host,
        port=args.port,
        capacity=args.capacity,
        performance=args.performance,
    )
    server.start()
    host, port = server.address
    print(f"dpfs server on {host}:{port}, storage at {args.root} — Ctrl-C stops")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import (
        figure11,
        figure12,
        figure13,
        figure14,
        render_file_level,
        render_placement,
    )

    shape = (args.rows, args.cols)
    wanted = (
        ["fig11", "fig12", "fig13", "fig14"]
        if args.figure == "all"
        else [args.figure]
    )
    for fig in wanted:
        if fig == "fig11":
            print(render_file_level(figure11(shape), "Figure 11 — file levels"))
        elif fig == "fig12":
            print(render_file_level(figure12(shape), "Figure 12 — file levels"))
        elif fig == "fig13":
            print(render_placement(figure13(shape), "Figure 13 — placement"))
        else:
            print(render_placement(figure14(shape), "Figure 14 — placement"))
        print()
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    import json

    from .core import fsck
    from .core.filesystem import DPFS

    # auto_recover stays off: a checker that silently recovered on mount
    # would report a clean tree without ever showing what was wrong
    fs = DPFS.local(args.root, n_servers=args.servers, auto_recover=False)
    report = fsck(fs, repair=args.repair)
    if args.json:
        print(
            json.dumps(
                {
                    "tool": "fsck",
                    "clean": report.clean,
                    "files_checked": report.files_checked,
                    "directories_checked": report.directories_checked,
                    "findings": [
                        {
                            "kind": f.kind,
                            "path": f.path,
                            "detail": f.detail,
                            "repaired": f.repaired,
                        }
                        for f in report.findings
                    ],
                },
                indent=2,
            )
        )
    else:
        print(report)
    fs.close()
    # nonzero whenever findings remain after this run: a --repair pass
    # that could not fix everything must not report success
    return 0 if all(f.repaired for f in report.findings) else 1


def _cmd_scrub(args: argparse.Namespace) -> int:
    import json

    from .core import scrub
    from .core.filesystem import DPFS

    fs = DPFS.local(args.root, n_servers=args.servers, auto_recover=False)
    report = scrub(fs, repair=args.repair)
    if args.json:
        print(
            json.dumps(
                {
                    "tool": "scrub",
                    "clean": report.clean,
                    "files_checked": report.files_checked,
                    "bricks_checked": report.bricks_checked,
                    "copies_checked": report.copies_checked,
                    "checksums_backfilled": report.checksums_backfilled,
                    "findings": [
                        {
                            "kind": f.kind,
                            "path": f.path,
                            "brick_id": f.brick_id,
                            "server": f.server,
                            "detail": f.detail,
                            "repaired": f.repaired,
                        }
                        for f in report.findings
                    ],
                },
                indent=2,
            )
        )
    else:
        print(report)
    fs.close()
    return 0 if not report.unrepaired else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    import json

    from .core.filesystem import DPFS

    fs = DPFS.local(args.root, n_servers=args.servers, auto_recover=False)
    report = fs.recover()
    if args.json:
        print(
            json.dumps(
                {
                    "tool": "recover",
                    "clean": report.clean,
                    "pending": len(report.actions),
                    "recovered": len(report.recovered),
                    "stuck": len(report.stuck),
                    "actions": [
                        {
                            "intent_id": a.intent_id,
                            "op": a.op,
                            "path": a.path,
                            "direction": a.direction,
                            "ok": a.ok,
                            "detail": a.detail,
                        }
                        for a in report.actions
                    ],
                },
                indent=2,
            )
        )
    else:
        print(report)
    fs.close()
    return 0 if report.clean else 1


def _obs_session(args: argparse.Namespace, *, tracing: bool):
    """(fs, exit-stack) — a DPFS over the TCP backend, per CLI options.

    Without ``--connect`` this starts ``--servers`` ephemeral
    :class:`~repro.net.server.DPFSServer` instances in a temporary
    directory, so the command demonstrates the full client/server wire
    path out of the box.
    """
    import contextlib
    import tempfile
    from pathlib import Path

    from .core.filesystem import DPFS
    from .net.server import DPFSServer

    stack = contextlib.ExitStack()
    try:
        if args.connect:
            addresses = []
            for spec in args.connect:
                host, _, port = spec.rpartition(":")
                addresses.append((host or "127.0.0.1", int(port)))
        else:
            root = Path(
                stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="dpfs-obs-")
                )
            )
            servers = [
                stack.enter_context(DPFSServer(root / f"server{i}", port=0))
                for i in range(max(1, args.servers))
            ]
            addresses = [s.address for s in servers]
        fs = DPFS.remote(
            addresses,
            pool_size=args.pool_size,
            ping_interval_s=args.ping_interval,
            cache_bytes=args.cache_kib << 10,
            tracing=tracing,
        )
        stack.callback(fs.close)
    except BaseException:
        stack.close()
        raise
    return fs, stack


def _demo_roundtrip(fs, nbytes: int) -> None:
    """Write then read ``nbytes`` twice (second read exercises the cache)."""
    from .core.hints import Hint

    data = bytes(range(256)) * (nbytes // 256 + 1)
    data = data[:nbytes]
    hint = Hint(file_size=nbytes, brick_size=max(4096, nbytes // 8))
    if fs.exists("/obs-demo"):
        fs.remove("/obs-demo")
    with fs.open("/obs-demo", "w", hint) as handle:
        handle.write(0, data)
    with fs.open("/obs-demo") as handle:
        for _ in range(2):
            back = handle.read(0, nbytes)
            if bytes(back) != data:
                raise RuntimeError("demo roundtrip corrupted data")


def _cmd_stats(args: argparse.Namespace) -> int:
    fs, stack = _obs_session(args, tracing=False)
    with stack:
        _demo_roundtrip(fs, args.size)
        print("# == client metrics ==")
        print(fs.metrics.render(), end="")
        print("# == server health ==")
        print(
            "# server  address                health    fails  pool(open/idle)"
            "  reconnects  discarded"
        )
        for row in fs.backend.health():
            addr = f"{row['host']}:{row['port']}"
            print(
                f"# {row['server']:<7} {addr:<22} {row['health']:<9} "
                f"{row['consecutive_failures']:<6} "
                f"{row['open']}/{row['idle']:<14} "
                f"{row['reconnects']:<11} {row['discarded']}"
            )
        for entry in fs.backend.server_stats():
            print(f"# == server {entry['name']} ==")
            print(entry["metrics"], end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    fs, stack = _obs_session(args, tracing=True)
    with stack:
        _demo_roundtrip(fs, args.size)
        rids = set()
        for tr in fs.tracer.traces():
            rids.add(tr.trace_id)
            print(tr.render())
            print()
        print("# server span log (rid-matched)")
        for entry in fs.backend.server_stats():
            for rec in entry["spans"]:
                if rec.get("rid") in rids:
                    print(
                        f"{entry['name']}  rid={rec['rid']}  {rec['name']}  "
                        f"{rec['duration_s'] * 1000:.2f} ms  "
                        f"nbytes={rec.get('nbytes', 0)}"
                    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "shell":
        return _cmd_shell(args)
    if args.command == "server":
        return _cmd_server(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    if args.command == "scrub":
        return _cmd_scrub(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return _cmd_bench(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
