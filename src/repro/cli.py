"""Command-line entry points: ``dpfs shell | server | bench | figures``.

``dpfs shell --root DIR``          interactive shell on a local-directory DPFS
``dpfs server --root DIR --port P`` run one storage server (§2)
``dpfs bench fig11|fig12|fig13|fig14|all``  regenerate the §8 figures
``dpfs fsck --root DIR [--repair]`` check metadata/storage consistency
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dpfs",
        description="DPFS — Distributed Parallel File System (ICPP 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    shell_p = sub.add_parser("shell", help="interactive DPFS shell (§7)")
    shell_p.add_argument(
        "--root", default="./dpfs-data", help="directory holding the server dirs"
    )
    shell_p.add_argument("--servers", type=int, default=4, help="number of I/O nodes")
    shell_p.add_argument(
        "-c", dest="command_line", default=None, help="run one command and exit"
    )

    server_p = sub.add_parser("server", help="run one DPFS storage server (§2)")
    server_p.add_argument("--root", required=True, help="storage directory")
    server_p.add_argument("--host", default="127.0.0.1")
    server_p.add_argument("--port", type=int, default=7001)
    server_p.add_argument("--performance", type=float, default=1.0)
    server_p.add_argument("--capacity", type=int, default=1 << 30)

    bench_p = sub.add_parser("bench", help="regenerate the §8 figures")
    bench_p.add_argument(
        "figure",
        choices=["fig11", "fig12", "fig13", "fig14", "all"],
        help="which figure to regenerate",
    )
    bench_p.add_argument(
        "--rows", type=int, default=2048, help="array rows (elements)"
    )
    bench_p.add_argument(
        "--cols", type=int, default=8192, help="array cols (elements)"
    )

    fsck_p = sub.add_parser("fsck", help="metadata/storage consistency check")
    fsck_p.add_argument("--root", required=True, help="DPFS root directory")
    fsck_p.add_argument("--servers", type=int, default=4)
    fsck_p.add_argument(
        "--repair", action="store_true", help="fix what can be fixed"
    )
    return parser


def _cmd_shell(args: argparse.Namespace) -> int:
    from .core.filesystem import DPFS
    from .errors import DPFSError
    from .shell import Shell

    fs = DPFS.local(args.root, n_servers=args.servers)
    shell = Shell(fs)
    if args.command_line is not None:
        try:
            output = shell.run_line(args.command_line)
        except DPFSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if output:
            print(output)
        return 0
    shell.repl()
    return 0


def _cmd_server(args: argparse.Namespace) -> int:
    from .net.server import DPFSServer

    server = DPFSServer(
        args.root,
        host=args.host,
        port=args.port,
        capacity=args.capacity,
        performance=args.performance,
    )
    server.start()
    host, port = server.address
    print(f"dpfs server on {host}:{port}, storage at {args.root} — Ctrl-C stops")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import (
        figure11,
        figure12,
        figure13,
        figure14,
        render_file_level,
        render_placement,
    )

    shape = (args.rows, args.cols)
    wanted = (
        ["fig11", "fig12", "fig13", "fig14"]
        if args.figure == "all"
        else [args.figure]
    )
    for fig in wanted:
        if fig == "fig11":
            print(render_file_level(figure11(shape), "Figure 11 — file levels"))
        elif fig == "fig12":
            print(render_file_level(figure12(shape), "Figure 12 — file levels"))
        elif fig == "fig13":
            print(render_placement(figure13(shape), "Figure 13 — placement"))
        else:
            print(render_placement(figure14(shape), "Figure 14 — placement"))
        print()
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from .core import fsck
    from .core.filesystem import DPFS

    fs = DPFS.local(args.root, n_servers=args.servers)
    report = fsck(fs, repair=args.repair)
    print(report)
    fs.close()
    return 0 if report.clean or args.repair else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "shell":
        return _cmd_shell(args)
    if args.command == "server":
        return _cmd_server(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    return _cmd_bench(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
