"""Request-scoped tracing: spans, traces, contextvar propagation.

A *trace* is one logical I/O (a ``handle.read``, a ``handle.write``, a
shell command); a *span* is one timed phase inside it (plan build,
cache lookup, one per-server dispatch, one network round trip).  The
current span travels in a :mod:`contextvars` context variable, so
nested phases attach themselves without any plumbing — and
:func:`use_span` re-roots a worker thread onto the span that submitted
its work, which is how dispatcher pool workers join the request's
trace.

The *request id* is the trace id.  The network client stamps it into
every wire header while a trace is active, and servers echo it into
their own span log, so one id correlates client-side and server-side
timings of the same I/O.

Disabled fast path: with no active trace, :func:`span` returns a
no-op singleton after a single contextvar read — cheap enough to leave
call sites unconditional.  Root creation (:meth:`Tracer.trace`) checks
``Tracer.enabled`` first, so a disabled tracer never activates the
context at all.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextvars import ContextVar
from typing import Any, Iterator

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "current_span",
    "current_trace_id",
    "span",
    "use_span",
]

#: the innermost active span of the calling context (None = not tracing)
_current: ContextVar["Span | None"] = ContextVar("dpfs_current_span", default=None)

_trace_seq = itertools.count(1)


class Span:
    """One timed phase of a trace.  Use as a context manager."""

    __slots__ = (
        "trace",
        "name",
        "span_id",
        "parent_id",
        "tags",
        "start_s",
        "end_s",
        "_token",
    )

    def __init__(
        self,
        trace: "Trace",
        name: str,
        parent_id: int | None,
        tags: dict[str, Any],
    ) -> None:
        self.trace = trace
        self.name = name
        self.span_id = trace._next_span_id()
        self.parent_id = parent_id
        self.tags = tags
        self.start_s = time.perf_counter()
        self.end_s: float | None = None
        self._token = None

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def tag(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        self._token = _current.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end_s = time.perf_counter()
        if exc is not None:
            self.tags["error"] = f"{type(exc).__name__}: {exc}"
        if self._token is not None:
            _current.reset(self._token)
            self._token = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} #{self.span_id} {self.duration_s * 1000:.3f}ms>"


class Trace:
    """One request: an id plus the spans recorded under it."""

    def __init__(self, trace_id: str, name: str) -> None:
        self.trace_id = trace_id
        self.name = name
        self.started_at = time.time()
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._span_seq = itertools.count(1)

    def _next_span_id(self) -> int:
        return next(self._span_seq)

    def add_span(self, name: str, parent_id: int | None, tags: dict[str, Any]) -> Span:
        new = Span(self, name, parent_id, tags)
        with self._lock:
            self.spans.append(new)
        return new

    @property
    def root(self) -> Span | None:
        return self.spans[0] if self.spans else None

    @property
    def duration_s(self) -> float:
        root = self.root
        return root.duration_s if root is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            spans = list(self.spans)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_at": self.started_at,
            "spans": [s.to_dict() for s in spans],
        }

    def render(self) -> str:
        """Indented span tree with durations and tags."""
        with self._lock:
            spans = list(self.spans)
        children: dict[int | None, list[Span]] = {}
        for s in spans:
            children.setdefault(s.parent_id, []).append(s)
        header = f"trace {self.trace_id} — {self.name} ({self.duration_s * 1000:.2f} ms)"
        lines = [header]

        def walk(parent_id: int | None, depth: int) -> None:
            for s in children.get(parent_id, []):
                tags = " ".join(f"{k}={_short(v)}" for k, v in s.tags.items())
                pad = "  " * depth
                line = f"{pad}{s.name} {s.duration_s * 1000:.2f} ms"
                lines.append(f"{line}  {tags}" if tags else line)
                walk(s.span_id, depth + 1)

        walk(None, 1)
        return "\n".join(lines)


def _short(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class _NoopSpan:
    """Singleton stand-in when tracing is off: every op is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def tag(self, **tags: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _UseSpan:
    """Context manager re-rooting the calling context onto ``span``."""

    __slots__ = ("_span", "_token")

    def __init__(self, target: "Span | None") -> None:
        self._span = target
        self._token = None

    def __enter__(self) -> "Span | None":
        if self._span is not None:
            self._token = _current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None


def current_span() -> Span | None:
    """The innermost active span of this context, if any."""
    return _current.get()


def current_trace_id() -> str | None:
    """The active request id, if a trace is underway in this context."""
    active = _current.get()
    return active.trace.trace_id if active is not None else None


def span(name: str, **tags: Any):
    """Open a child span of the current one (no-op outside a trace)."""
    parent = _current.get()
    if parent is None:
        return NOOP_SPAN
    return parent.trace.add_span(name, parent.span_id, tags)


def use_span(target: Span | None) -> _UseSpan:
    """Adopt ``target`` as the current span (cross-thread propagation).

    Passing ``None`` yields a no-op, so call sites can propagate
    unconditionally: ``with use_span(parent): ...``.
    """
    return _UseSpan(target)


class Tracer:
    """Creates and retains traces for one DPFS instance.

    ``enabled=False`` (the default) keeps the fast path: roots are
    no-ops, the context variable is never set, and every nested
    :func:`span` call short-circuits on the ``None`` contextvar read.
    Completed traces are kept in a bounded ring (``keep`` most recent).
    """

    def __init__(self, enabled: bool = False, *, keep: int = 64) -> None:
        self.enabled = enabled
        self.keep = keep
        self._lock = threading.Lock()
        self._traces: list[Trace] = []
        self._prefix = f"t{os.getpid() % 0xFFFF:04x}"

    def trace(self, name: str, **tags: Any):
        """Root span: starts a new trace, or nests if one is active."""
        if not self.enabled:
            return NOOP_SPAN
        parent = _current.get()
        if parent is not None:
            return parent.trace.add_span(name, parent.span_id, tags)
        trace_id = f"{self._prefix}-{next(_trace_seq):06d}"
        new = Trace(trace_id, name)
        with self._lock:
            self._traces.append(new)
            if len(self._traces) > self.keep:
                del self._traces[: len(self._traces) - self.keep]
        return new.add_span(name, None, tags)

    # -- retrieval ---------------------------------------------------------
    def traces(self) -> list[Trace]:
        with self._lock:
            return list(self._traces)

    def last(self) -> Trace | None:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def find(self, trace_id: str) -> Trace | None:
        with self._lock:
            for t in reversed(self._traces):
                if t.trace_id == trace_id:
                    return t
        return None

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces())
