"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

Design goals, in order:

1. **cheap on the hot path** — an increment is one lock acquire plus one
   dict update; callers that increment the same labeled series
   repeatedly should hold a bound series (:meth:`Counter.labels`) so the
   label-key tuple is built once, not per event;
2. **bounded** — every metric caps its label cardinality
   (``max_series``); series beyond the cap collapse into a single
   ``{"overflow": "true"}`` series instead of growing without bound;
3. **zero dependencies** — Prometheus *text* export only
   (:meth:`MetricsRegistry.render`) plus a JSON-friendly
   :meth:`MetricsRegistry.snapshot` for benchmark artifacts.

Metric names follow Prometheus conventions: ``dpfs_<subsystem>_<what>``
with ``_total`` for counters and ``_seconds`` / ``_bytes`` units.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

from ..errors import ConfigError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: label key under which over-cardinality series are collapsed
_OVERFLOW_KEY = (("overflow", "true"),)

#: default histogram buckets — geometric, micro-seconds to seconds,
#: suitable for both in-memory dispatch (~us) and TCP round trips (~ms)
DEFAULT_BUCKETS = (
    0.000_05,
    0.000_2,
    0.001,
    0.005,
    0.02,
    0.1,
    0.5,
    2.0,
    10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Normalize a label mapping into a hashable, sorted key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class _Metric:
    """Shared machinery: a lock, a series table, a cardinality cap."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", *, max_series: int = 256) -> None:
        if max_series < 1:
            raise ConfigError("max_series must be >= 1")
        self.name = name
        self.help = help
        self.max_series = max_series
        self._lock = threading.Lock()
        self._series: dict[LabelKey, Any] = {}

    def _admit(self, key: LabelKey) -> LabelKey:
        """Return ``key``, or the overflow key once the cap is reached.

        Callers hold ``self._lock``.
        """
        if key in self._series or len(self._series) < self.max_series:
            return key
        return _OVERFLOW_KEY

    # -- introspection -----------------------------------------------------
    def series(self) -> dict[LabelKey, Any]:
        """Point-in-time copy of every labeled series."""
        with self._lock:
            return dict(self._series)

    def render(self) -> str:
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        raise NotImplementedError

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class _Cell:
    """One counter series: a mutable float slot with its own lock.

    Per-series locking keeps concurrent writers to *different* label
    sets (e.g. dispatch workers on different servers) from contending
    on one metric-wide lock.  Readers that aggregate across series take
    only the metric lock and read ``v`` directly — a float load is
    atomic, so a point-in-time sum is merely (harmlessly) stale with
    respect to in-flight increments.
    """

    __slots__ = ("v", "lock")

    def __init__(self) -> None:
        self.v = 0.0
        self.lock = threading.Lock()


class _BoundCounter:
    """A counter pre-bound to one label set (hot-path helper).

    Caches the series cell after the first increment, so the steady
    state is one lock acquire plus one float add — no label-key hashing,
    no admission check.
    """

    __slots__ = ("_metric", "_key", "_cell")

    def __init__(self, metric: "Counter", key: LabelKey) -> None:
        self._metric = metric
        self._key = key
        self._cell: _Cell | None = None

    def inc(self, amount: float = 1.0) -> None:
        cell = self._cell
        if cell is None:
            cell = self._metric._cell_for(self._key)
            self._cell = cell
        with cell.lock:
            cell.v += amount

    def value(self) -> float:
        cell = self._cell
        if cell is None:
            with self._metric._lock:
                cell = self._metric._series.get(self._key)
        return cell.v if cell is not None else 0.0


class Counter(_Metric):
    """A monotonically increasing float, optionally labeled."""

    kind = "counter"

    def _cell_for(self, key: LabelKey) -> _Cell:
        with self._lock:
            key = self._admit(key)
            cell = self._series.get(key)
            if cell is None:
                cell = _Cell()
                self._series[key] = cell
            return cell

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ConfigError("counters only go up")
        cell = self._cell_for(_label_key(labels))
        with cell.lock:
            cell.v += amount

    def labels(self, **labels: Any) -> _BoundCounter:
        return _BoundCounter(self, _label_key(labels))

    def value(self, **labels: Any) -> float:
        with self._lock:
            cell = self._series.get(_label_key(labels))
            return cell.v if cell is not None else 0.0

    def total(self) -> float:
        """Sum over every labeled series."""
        with self._lock:
            return sum(cell.v for cell in self._series.values())

    def by_label(self, label: str) -> dict[str, float]:
        """Aggregate series values keyed by one label's value."""
        out: dict[str, float] = {}
        with self._lock:
            for key, cell in self._series.items():
                for k, v in key:
                    if k == label:
                        out[v] = out.get(v, 0.0) + cell.v
        return out

    def render(self) -> str:
        lines = self._header()
        with self._lock:
            items = sorted((k, cell.v) for k, cell in self._series.items())
        for key, value in items:
            lines.append(f"{self.name}{_render_labels(key)} {_fmt(value)}")
        return "\n".join(lines)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            items = sorted((k, cell.v) for k, cell in self._series.items())
        return {
            "type": "counter",
            "help": self.help,
            "series": [{"labels": dict(k), "value": v} for k, v in items],
        }


class Gauge(_Metric):
    """A value that can go up and down (pool sizes, bytes in use)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            key = self._admit(key)
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            key = self._admit(key)
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def render(self) -> str:
        lines = self._header()
        with self._lock:
            items = sorted(self._series.items())
        for key, value in items:
            lines.append(f"{self.name}{_render_labels(key)} {_fmt(value)}")
        return "\n".join(lines)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            items = sorted(self._series.items())
        return {
            "type": "gauge",
            "help": self.help,
            "series": [{"labels": dict(k), "value": v} for k, v in items],
        }


class _HistSeries:
    """One labeled histogram series: bucket counts + sum + count.

    Carries its own lock (see :class:`_Cell`) so concurrent observers
    of different label sets never contend; readers copy the triple
    under this lock for a consistent view.
    """

    __slots__ = ("buckets", "sum", "count", "lock")

    def __init__(self, n_buckets: int) -> None:
        self.buckets = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.lock = threading.Lock()

    def _copy(self) -> tuple[list[int], float, int]:
        with self.lock:
            return list(self.buckets), self.sum, self.count


class _BoundHistogram:
    """A histogram pre-bound to one label set (hot-path helper).

    Caches the series object after the first observation, so the steady
    state is one bisect plus one lock acquire plus three updates.
    """

    __slots__ = ("_metric", "_key", "_series", "_bounds")

    def __init__(self, metric: "Histogram", key: LabelKey) -> None:
        self._metric = metric
        self._key = key
        self._bounds = metric.bucket_bounds
        self._series: _HistSeries | None = None

    def observe(self, value: float) -> None:
        series = self._series
        if series is None:
            series = self._metric._series_for(self._key)
            self._series = series
        idx = bisect_left(self._bounds, value)
        with series.lock:
            series.buckets[idx] += 1
            series.sum += value
            series.count += 1


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative buckets on export).

    Bucket bounds are *upper* edges; an observation equal to an edge
    falls into that edge's bucket, matching Prometheus ``le`` semantics.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        max_series: int = 256,
    ) -> None:
        super().__init__(name, help, max_series=max_series)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigError("histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ConfigError("histogram buckets must be distinct")
        self.bucket_bounds = bounds

    def observe(self, value: float, **labels: Any) -> None:
        self._observe_key(_label_key(labels), value)

    def labels(self, **labels: Any) -> _BoundHistogram:
        return _BoundHistogram(self, _label_key(labels))

    def _series_for(self, key: LabelKey) -> _HistSeries:
        with self._lock:
            key = self._admit(key)
            series = self._series.get(key)
            if series is None:
                series = _HistSeries(len(self.bucket_bounds))
                self._series[key] = series
            return series

    def _observe_key(self, key: LabelKey, value: float) -> None:
        idx = bisect_left(self.bucket_bounds, value)
        series = self._series_for(key)
        with series.lock:
            series.buckets[idx] += 1
            series.sum += value
            series.count += 1

    # -- reads -------------------------------------------------------------
    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.sum if series else 0.0

    def total_count(self) -> int:
        with self._lock:
            return sum(s.count for s in self._series.values())

    def total_sum(self) -> float:
        with self._lock:
            return sum(s.sum for s in self._series.values())

    def bucket_counts(self, **labels: Any) -> dict[str, int]:
        """Cumulative counts keyed by the ``le`` edge (as rendered)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
        if series is None:
            raw = [0] * (len(self.bucket_bounds) + 1)
        else:
            raw, _sum, _count = series._copy()
        out: dict[str, int] = {}
        running = 0
        for bound, n in zip(self.bucket_bounds, raw):
            running += n
            out[_fmt(bound)] = running
        out["+Inf"] = running + raw[-1]
        return out

    def render(self) -> str:
        lines = self._header()
        with self._lock:
            items = sorted((k, *s._copy()) for k, s in self._series.items())
        for key, raw, total, count in items:
            running = 0
            for bound, n in zip(self.bucket_bounds, raw):
                running += n
                le_key = key + (("le", _fmt(bound)),)
                lines.append(f"{self.name}_bucket{_render_labels(le_key)} {running}")
            inf_key = key + (("le", "+Inf"),)
            lines.append(f"{self.name}_bucket{_render_labels(inf_key)} {count}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {_fmt(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return "\n".join(lines)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            items = sorted((k, *s._copy()) for k, s in self._series.items())
        series = []
        for key, raw, total, count in items:
            series.append(
                {
                    "labels": dict(key),
                    "buckets": {_fmt(b): n for b, n in zip(self.bucket_bounds, raw)},
                    "inf": raw[-1],
                    "sum": total,
                    "count": count,
                }
            )
        return {"type": "histogram", "help": self.help, "series": series}


def _fmt(value: float) -> str:
    """Render a float the way Prometheus likes (ints without .0)."""
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


class MetricsRegistry:
    """A named collection of metrics; the process-wide source of truth.

    Metric creation is get-or-create: asking twice for the same name
    returns the same object, so independent subsystems can share series
    without coordination.  Asking for an existing name with a different
    metric *type* is a :class:`~repro.errors.ConfigError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- creation ----------------------------------------------------------
    def counter(self, name: str, help: str = "", **kwargs: Any) -> Counter:
        return self._get_or_create(Counter, name, help, **kwargs)

    def gauge(self, name: str, help: str = "", **kwargs: Any) -> Gauge:
        return self._get_or_create(Gauge, name, help, **kwargs)

    def histogram(self, name: str, help: str = "", **kwargs: Any) -> Histogram:
        return self._get_or_create(Histogram, name, help, **kwargs)

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs: Any):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ConfigError(
                    f"metric {name!r} already registered as {metric.kind}",
                )
            return metric

    # -- access ------------------------------------------------------------
    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    # -- export ------------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition of every metric, name-sorted."""
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        blocks = [m.render() for m in metrics]
        return "\n".join(blocks) + ("\n" if blocks else "")

    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly dump (the ``BENCH_obs.json`` payload)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].snapshot() for name in sorted(metrics)}
