"""Unified observability: metrics registry + request tracing.

Every subsystem that used to keep ad-hoc counters (``handle.stats``,
``CacheStats``, the dispatcher's retry maps) now records through one
:class:`MetricsRegistry`, and request-scoped timing is captured by a
zero-dependency :mod:`~repro.obs.trace` span API whose request ids
travel over the wire protocol so client and server phases of one I/O
can be correlated.

Entry points:

- ``DPFS.metrics`` — the per-instance registry (Prometheus text via
  :meth:`MetricsRegistry.render`, JSON via
  :meth:`MetricsRegistry.snapshot`);
- ``DPFS(..., tracing=True)`` + ``DPFS.tracer`` — per-request span
  trees (``dpfs trace`` renders them);
- ``dpfs stats`` / ``dpfs trace`` — CLI front ends.
"""

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    Span,
    Trace,
    Tracer,
    current_span,
    current_trace_id,
    span,
    use_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "current_span",
    "current_trace_id",
    "span",
    "use_span",
]
