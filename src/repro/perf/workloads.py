"""Workload generation for the §8 experiments.

The crucial property: the request streams fed to the simulator are
produced by the *same* code the functional file system uses — the §3
striping methods, the §4.1 placement algorithms and the §4.2 request
planner.  The simulator only prices those streams.

Transfer granularity: for linear and multidimensional files the unit of
access is the brick — a client fetches whole bricks and discards what
it does not need ("only the first two elements of each brick are really
useful, the second half will be discarded", §3.2).  Array-level chunks
are whole bricks by construction.  ``useful_bytes`` tracks the data the
application actually wanted, so bandwidth numbers match the paper's
definition (application bytes / elapsed time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..core.brick import BrickMap, BrickSlice
from ..core.combine import plan_requests
from ..core.placement import PlacementPolicy, build_brick_map
from ..core.striping import (
    ArrayStriping,
    FileLevel,
    LinearStriping,
    MultidimStriping,
    StripingMethod,
)
from ..errors import ConfigError
from ..hpf.distribution import decompose
from ..hpf.regions import Region
from ..netsim.node import WireRequest
from ..util import coalesce_extents

__all__ = ["WorkloadSpec", "RankPlan", "Workload", "build_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one §8 configuration."""

    level: FileLevel
    combine: bool
    nprocs: int
    nservers: int
    #: logical array: shape in elements + element size in bytes
    array_shape: tuple[int, int] = (2048, 2048)
    element_size: int = 8
    #: linear striping unit (bytes); default = one array row
    linear_brick_size: int | None = None
    #: multidim striping unit (elements)
    brick_shape: tuple[int, int] = (64, 64)
    #: HPF access pattern of the application processes
    access_pattern: str = "(*, BLOCK)"
    is_read: bool = True
    #: stagger combined requests across servers (§4.2's schedule)
    stagger: bool = True

    def validate(self) -> "WorkloadSpec":
        if self.nprocs < 1 or self.nservers < 1:
            raise ConfigError("nprocs and nservers must be >= 1")
        rows, cols = self.array_shape
        if rows < 1 or cols < 1 or self.element_size < 1:
            raise ConfigError("invalid array geometry")
        return self

    @property
    def total_bytes(self) -> int:
        rows, cols = self.array_shape
        return rows * cols * self.element_size

    def row_bytes(self) -> int:
        return self.array_shape[1] * self.element_size


@dataclass
class RankPlan:
    """The ordered wire requests one application process will issue."""

    rank: int
    requests: list[WireRequest] = field(default_factory=list)
    useful_bytes: int = 0


@dataclass
class Workload:
    """A complete experiment input."""

    spec: WorkloadSpec
    striping: StripingMethod
    brick_map: BrickMap
    plans: list[RankPlan]

    @property
    def useful_bytes(self) -> int:
        return sum(p.useful_bytes for p in self.plans)

    @property
    def total_requests(self) -> int:
        return sum(len(p.requests) for p in self.plans)

    @property
    def transfer_bytes(self) -> int:
        return sum(r.transfer_bytes for p in self.plans for r in p.requests)


def _make_striping(spec: WorkloadSpec) -> StripingMethod:
    if spec.level is FileLevel.LINEAR:
        brick = spec.linear_brick_size or spec.row_bytes()
        return LinearStriping(brick, spec.total_bytes)
    if spec.level is FileLevel.MULTIDIM:
        return MultidimStriping(spec.array_shape, spec.element_size, spec.brick_shape)
    return ArrayStriping(
        spec.array_shape, spec.element_size, spec.access_pattern, spec.nprocs
    )


def _rank_region(spec: WorkloadSpec, rank: int) -> Region:
    return decompose(spec.array_shape, spec.access_pattern, spec.nprocs)[rank]


def _region_slices(
    spec: WorkloadSpec, striping: StripingMethod, region: Region
) -> list[BrickSlice]:
    """Slices a rank's access generates, via the level's natural addressing."""
    if spec.level is FileLevel.LINEAR:
        # A linear file is addressed as the flattened byte stream: the
        # rank turns its 2-D region into per-row byte extents.
        elem = spec.element_size
        cols = spec.array_shape[1]
        extents = []
        for start_cell, run in region.rows():
            offset = (start_cell[0] * cols + start_cell[1]) * elem
            extents.append((offset, run * elem))
        return striping.slices_for_extents(extents)
    return striping.slices_for_region(region)


def _brick_granular(
    slices: Sequence[BrickSlice], brick_map: BrickMap
) -> list[BrickSlice]:
    """Round slices up to whole bricks, first-touch order, deduplicated."""
    seen: set[int] = set()
    out: list[BrickSlice] = []
    payload = 0
    for s in slices:
        if s.brick_id in seen:
            continue
        seen.add(s.brick_id)
        size = brick_map.location(s.brick_id).size
        out.append(BrickSlice(s.brick_id, 0, size, payload))
        payload += size
    return out


def build_workload(spec: WorkloadSpec, policy: PlacementPolicy) -> Workload:
    """Assemble the full experiment input for one configuration."""
    spec = spec.validate()
    if policy.n_servers != spec.nservers:
        raise ConfigError("placement policy server count mismatch")
    striping = _make_striping(spec)
    brick_map = build_brick_map(policy, striping.brick_sizes())

    plans: list[RankPlan] = []
    for rank in range(spec.nprocs):
        region = _rank_region(spec, rank)
        slices = _region_slices(spec, striping, region)
        useful = region.volume * spec.element_size
        # Whole-brick transfer granularity (see module docstring).  At
        # the array level slices already are whole chunks.
        granular = (
            _brick_granular(slices, brick_map)
            if spec.level in (FileLevel.LINEAR, FileLevel.MULTIDIM)
            else slices
        )
        requests = plan_requests(
            granular,
            brick_map,
            combine=spec.combine,
            rank=rank,
            stagger=spec.stagger,
        )
        plan = RankPlan(rank=rank, useful_bytes=useful)
        for req in requests:
            extents = tuple(coalesce_extents(req.extents))
            plan.requests.append(
                WireRequest(
                    server=req.server,
                    extents=extents,
                    transfer_bytes=req.payload_bytes,
                    is_read=spec.is_read,
                )
            )
        plans.append(plan)
    return Workload(spec=spec, striping=striping, brick_map=brick_map, plans=plans)
