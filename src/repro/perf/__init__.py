"""Performance evaluation harness: §8 workloads, experiments, figures."""

from .experiments import DEFAULT_COSTS, ExperimentResult, run_workload
from .figures import (
    FILE_LEVEL_CONFIGS,
    PLACEMENT_CONFIGS,
    FileLevelSeries,
    PlacementSeries,
    figure11,
    figure12,
    figure13,
    figure14,
)
from .report import render_file_level, render_placement
from .workloads import RankPlan, Workload, WorkloadSpec, build_workload

__all__ = [
    "WorkloadSpec",
    "RankPlan",
    "Workload",
    "build_workload",
    "ExperimentResult",
    "run_workload",
    "DEFAULT_COSTS",
    "FileLevelSeries",
    "PlacementSeries",
    "FILE_LEVEL_CONFIGS",
    "PLACEMENT_CONFIGS",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "render_file_level",
    "render_placement",
]
