"""Experiment execution: price a workload on a simulated topology.

One application process = one simulation process issuing its wire
requests *synchronously* in plan order (DPFS clients block per
request).  Aggregate I/O bandwidth is the paper's metric: useful
application bytes divided by the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..errors import ConfigError
from ..netsim.classes import StorageClassParams, build_topology
from ..netsim.node import CostParams, SimServer, serve_request
from ..sim import Environment
from ..util import MiB
from .workloads import RankPlan, Workload

__all__ = ["ExperimentResult", "run_workload", "DEFAULT_COSTS"]

DEFAULT_COSTS = CostParams()


@dataclass
class ExperimentResult:
    """Outcome of one simulated run."""

    makespan_s: float
    useful_bytes: int
    transfer_bytes: int
    total_requests: int
    bandwidth_mbps: float                 # useful MiB/s — the paper's metric
    per_server_requests: list[int] = field(default_factory=list)
    per_server_disk_busy: list[float] = field(default_factory=list)
    per_rank_finish: list[float] = field(default_factory=list)

    def __str__(self) -> str:
        return (
            f"{self.bandwidth_mbps:6.2f} MB/s "
            f"(makespan {self.makespan_s:8.2f} s, "
            f"{self.total_requests} requests, "
            f"{self.transfer_bytes / MiB:.0f} MiB moved)"
        )


def _client(env: Environment, servers: Sequence[SimServer], plan: RankPlan,
            costs: CostParams, finish: list[float], rank: int):
    for request in plan.requests:
        yield from serve_request(env, servers[request.server], request, costs)
    finish[rank] = env.now


def run_workload(
    workload: Workload,
    class_per_server: Sequence[StorageClassParams],
    costs: CostParams = DEFAULT_COSTS,
) -> ExperimentResult:
    """Simulate one workload on one topology; returns aggregate metrics."""
    if len(class_per_server) != workload.spec.nservers:
        raise ConfigError(
            f"workload wants {workload.spec.nservers} servers, topology has "
            f"{len(class_per_server)}"
        )
    env = Environment()
    servers = build_topology(env, class_per_server)
    finish = [0.0] * len(workload.plans)
    for plan in workload.plans:
        env.process(
            _client(env, servers, plan, costs, finish, plan.rank),
            name=f"rank{plan.rank}",
        )
    env.run()
    makespan = env.now
    useful = workload.useful_bytes
    return ExperimentResult(
        makespan_s=makespan,
        useful_bytes=useful,
        transfer_bytes=workload.transfer_bytes,
        total_requests=workload.total_requests,
        bandwidth_mbps=(useful / MiB) / makespan if makespan > 0 else 0.0,
        per_server_requests=[s.requests_served for s in servers],
        per_server_disk_busy=[s.disk.busy_time for s in servers],
        per_rank_finish=finish,
    )
