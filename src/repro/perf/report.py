"""Text rendering of experiment results (the bench harness output)."""

from __future__ import annotations

from .figures import (
    FILE_LEVEL_CONFIGS,
    PLACEMENT_CONFIGS,
    FileLevelSeries,
    PlacementSeries,
)

__all__ = ["render_file_level", "render_placement"]


def render_file_level(series: FileLevelSeries, title: str) -> str:
    """ASCII table shaped like Figs. 11/12: rows = configs, cols = classes."""
    labels = [label for label, _lvl, _c in FILE_LEVEL_CONFIGS]
    classes = sorted(series.results)
    width = max(len(label) for label in labels) + 2
    lines = [
        title,
        f"({series.nprocs} compute nodes, {series.nservers} I/O nodes; "
        "I/O bandwidth, MB/s)",
        "-" * (width + 12 * len(classes)),
        "".ljust(width) + "".join(f"Class {c}".rjust(12) for c in classes),
    ]
    for label in labels:
        row = label.ljust(width)
        for c in classes:
            row += f"{series.results[c][label].bandwidth_mbps:12.2f}"
        lines.append(row)
    return "\n".join(lines)


def render_placement(series: PlacementSeries, title: str) -> str:
    """ASCII table shaped like Figs. 13/14: rows = configs, cols = algos."""
    labels = [label for label, _r, _c in PLACEMENT_CONFIGS]
    algos = ["round_robin", "greedy"]
    width = max(len(label) for label in labels) + 2
    lines = [
        title,
        f"({series.nprocs} compute nodes, {series.nservers} I/O nodes; "
        "half class 1, half class 3; I/O bandwidth, MB/s)",
        "-" * (width + 14 * len(algos)),
        "".ljust(width) + "".join(a.rjust(14) for a in algos),
    ]
    for label in labels:
        row = label.ljust(width)
        for algo in algos:
            row += f"{series.results[algo][label].bandwidth_mbps:14.2f}"
        lines.append(row)
    return "\n".join(lines)
