r"""Regeneration of every figure in the paper's evaluation (§8).

=========  ==============================================================
Figure 11  file-level comparison, 8 compute nodes, 4 I/O nodes,
           (\*, BLOCK) access, per storage class
Figure 12  same at 16 compute nodes, 8 I/O nodes
Figure 13  round-robin vs greedy placement, 8 compute / 8 I/O nodes,
           half class 1 + half class 3, write & read
Figure 14  same at 16 compute / 16 I/O nodes
=========  ==============================================================

Workload scaling: the paper's 32K×32K (256 MB) array is scaled to a
2048×8192×8 B (128 MiB) array by default so a full sweep runs in tens
of seconds; the request-count *ratios* that drive the effects are
preserved (linear bricks = one array row, multidim bricks tile the
array, array chunks = one per process), and the column count is chosen
so every process's (\*, BLOCK) strip spans at least one brick column
per I/O node at both figure scales — the paper's geometry has the same
property.  Pass a larger ``array_shape`` for paper-sized request
streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.placement import Greedy, RoundRobin
from ..core.striping import FileLevel
from ..netsim.classes import CLASS1, CLASS3, CLASSES, StorageClassParams
from ..netsim.node import CostParams
from .experiments import DEFAULT_COSTS, ExperimentResult, run_workload
from .workloads import WorkloadSpec, build_workload

__all__ = [
    "FileLevelSeries",
    "PlacementSeries",
    "FILE_LEVEL_CONFIGS",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
]

#: the six bar groups of Figs. 11/12, in the paper's order
FILE_LEVEL_CONFIGS: list[tuple[str, FileLevel, bool]] = [
    ("Linear", FileLevel.LINEAR, False),
    ("Combined Linear", FileLevel.LINEAR, True),
    ("Multi-dim", FileLevel.MULTIDIM, False),
    ("Combined Multi-dim", FileLevel.MULTIDIM, True),
    ("Array", FileLevel.ARRAY, False),
    ("Combined Array", FileLevel.ARRAY, True),
]


@dataclass
class FileLevelSeries:
    """One Fig. 11/12-style dataset: class → config label → result."""

    nprocs: int
    nservers: int
    results: dict[int, dict[str, ExperimentResult]] = field(default_factory=dict)

    def bandwidth(self, storage_class: int, label: str) -> float:
        return self.results[storage_class][label].bandwidth_mbps


@dataclass
class PlacementSeries:
    """One Fig. 13/14-style dataset: algorithm → config label → result."""

    nprocs: int
    nservers: int
    results: dict[str, dict[str, ExperimentResult]] = field(default_factory=dict)

    def bandwidth(self, algorithm: str, label: str) -> float:
        return self.results[algorithm][label].bandwidth_mbps


def _file_level_figure(
    nprocs: int,
    nservers: int,
    array_shape: tuple[int, int],
    element_size: int,
    brick_shape: tuple[int, int],
    costs: CostParams,
    storage_classes: tuple[int, ...] = (1, 2, 3),
) -> FileLevelSeries:
    series = FileLevelSeries(nprocs=nprocs, nservers=nservers)
    for class_id in storage_classes:
        params = CLASSES[class_id]
        topology = [params] * nservers
        per_class: dict[str, ExperimentResult] = {}
        for label, level, combine in FILE_LEVEL_CONFIGS:
            spec = WorkloadSpec(
                level=level,
                combine=combine,
                nprocs=nprocs,
                nservers=nservers,
                array_shape=array_shape,
                element_size=element_size,
                brick_shape=brick_shape,
                access_pattern="(*, BLOCK)",
                is_read=True,
            )
            workload = build_workload(spec, RoundRobin(nservers))
            per_class[label] = run_workload(workload, topology, costs)
        series.results[class_id] = per_class
    return series


def figure11(
    array_shape: tuple[int, int] = (2048, 8192),
    element_size: int = 8,
    brick_shape: tuple[int, int] = (64, 64),
    costs: CostParams = DEFAULT_COSTS,
) -> FileLevelSeries:
    """Fig. 11: file-level comparison, 8 compute nodes, 4 I/O nodes."""
    return _file_level_figure(
        8, 4, array_shape, element_size, brick_shape, costs
    )


def figure12(
    array_shape: tuple[int, int] = (2048, 8192),
    element_size: int = 8,
    brick_shape: tuple[int, int] = (64, 64),
    costs: CostParams = DEFAULT_COSTS,
) -> FileLevelSeries:
    """Fig. 12: file-level comparison, 16 compute nodes, 8 I/O nodes."""
    return _file_level_figure(
        16, 8, array_shape, element_size, brick_shape, costs
    )


#: the four bar groups of Figs. 13/14, in the paper's order
PLACEMENT_CONFIGS: list[tuple[str, bool, bool]] = [
    ("Write", False, False),
    ("Combined Write", False, True),
    ("Read", True, False),
    ("Combined Read", True, True),
]


def _placement_figure(
    nprocs: int,
    nservers: int,
    array_shape: tuple[int, int],
    element_size: int,
    brick_shape: tuple[int, int],
    costs: CostParams,
) -> PlacementSeries:
    """Half class-1, half class-3 servers; multidim file, (BLOCK, \\*)."""
    if nservers % 2:
        raise ValueError("placement figures want an even server count")
    topology: list[StorageClassParams] = [CLASS1] * (nservers // 2) + [
        CLASS3
    ] * (nservers // 2)
    performance = [p.performance for p in topology]
    series = PlacementSeries(nprocs=nprocs, nservers=nservers)
    for algorithm in ("round_robin", "greedy"):
        per_algo: dict[str, ExperimentResult] = {}
        for label, is_read, combine in PLACEMENT_CONFIGS:
            spec = WorkloadSpec(
                level=FileLevel.MULTIDIM,
                combine=combine,
                nprocs=nprocs,
                nservers=nservers,
                array_shape=array_shape,
                element_size=element_size,
                brick_shape=brick_shape,
                access_pattern="(BLOCK, *)",
                is_read=is_read,
            )
            policy = (
                RoundRobin(nservers)
                if algorithm == "round_robin"
                else Greedy(performance)
            )
            workload = build_workload(spec, policy)
            per_algo[label] = run_workload(workload, topology, costs)
        series.results[algorithm] = per_algo
    return series


def figure13(
    array_shape: tuple[int, int] = (2048, 8192),
    element_size: int = 8,
    brick_shape: tuple[int, int] = (64, 64),
    costs: CostParams = DEFAULT_COSTS,
) -> PlacementSeries:
    """Fig. 13: round-robin vs greedy, 8 compute / 8 I/O nodes."""
    return _placement_figure(8, 8, array_shape, element_size, brick_shape, costs)


def figure14(
    array_shape: tuple[int, int] = (2048, 8192),
    element_size: int = 8,
    brick_shape: tuple[int, int] = (64, 64),
    costs: CostParams = DEFAULT_COSTS,
) -> PlacementSeries:
    """Fig. 14: round-robin vs greedy, 16 compute / 16 I/O nodes."""
    return _placement_figure(16, 16, array_shape, element_size, brick_shape, costs)
