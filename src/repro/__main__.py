"""``python -m repro`` — same as the ``dpfs`` console script."""

import sys

from .cli import main

sys.exit(main())
