"""HPF-notation data distributions and N-d region algebra (§3.3)."""

from .distribution import (
    Dist,
    decompose,
    grid_shape,
    owned_regions,
    parse_pattern,
    pattern_str,
)
from .regions import Region

__all__ = [
    "Dist",
    "Region",
    "parse_pattern",
    "pattern_str",
    "grid_shape",
    "decompose",
    "owned_regions",
]
