"""N-dimensional rectangular region algebra.

A :class:`Region` is a half-open box ``[starts, stops)`` over an integer
lattice — the shape every HPF BLOCK/\\* decomposition hands out, and the
shape the multidimensional striping method reasons about when deciding
which bricks a request touches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from ..errors import DistributionError

__all__ = ["Region"]


@dataclass(frozen=True)
class Region:
    """Half-open N-d box: cell ``c`` is inside iff starts <= c < stops."""

    starts: tuple[int, ...]
    stops: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.starts) != len(self.stops):
            raise DistributionError("starts/stops rank mismatch")
        if not self.starts:
            raise DistributionError("region rank must be >= 1")
        for start, stop in zip(self.starts, self.stops):
            if start < 0 or stop < start:
                raise DistributionError(
                    f"invalid region bounds [{start}, {stop})"
                )

    # -- constructors -----------------------------------------------------
    @classmethod
    def of(cls, *bounds: tuple[int, int]) -> "Region":
        """``Region.of((r0, r1), (c0, c1))`` convenience constructor."""
        return cls(tuple(b[0] for b in bounds), tuple(b[1] for b in bounds))

    @classmethod
    def full(cls, shape: Sequence[int]) -> "Region":
        """The whole array of the given shape."""
        return cls(tuple(0 for _ in shape), tuple(shape))

    # -- basic properties ---------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.starts)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(b - a for a, b in zip(self.starts, self.stops))

    @property
    def volume(self) -> int:
        """Number of lattice cells inside."""
        return math.prod(self.shape)

    @property
    def empty(self) -> bool:
        return any(a >= b for a, b in zip(self.starts, self.stops))

    # -- algebra -----------------------------------------------------------
    def intersect(self, other: "Region") -> "Region | None":
        """Intersection box, or ``None`` when disjoint/empty."""
        if self.rank != other.rank:
            raise DistributionError("rank mismatch in intersect")
        starts = tuple(max(a, b) for a, b in zip(self.starts, other.starts))
        stops = tuple(min(a, b) for a, b in zip(self.stops, other.stops))
        if any(a >= b for a, b in zip(starts, stops)):
            return None
        return Region(starts, stops)

    def contains(self, coords: Sequence[int]) -> bool:
        if len(coords) != self.rank:
            raise DistributionError("rank mismatch in contains")
        return all(a <= c < b for c, a, b in zip(coords, self.starts, self.stops))

    def covers(self, other: "Region") -> bool:
        """True when ``other`` lies entirely inside this region."""
        if self.rank != other.rank:
            raise DistributionError("rank mismatch in covers")
        if other.empty:
            return True
        return all(
            sa <= oa and ob <= sb
            for sa, sb, oa, ob in zip(self.starts, self.stops, other.starts, other.stops)
        )

    def translate(self, offsets: Sequence[int]) -> "Region":
        """Shift the region by per-dimension offsets."""
        if len(offsets) != self.rank:
            raise DistributionError("rank mismatch in translate")
        return Region(
            tuple(a + d for a, d in zip(self.starts, offsets)),
            tuple(b + d for b, d in zip(self.stops, offsets)),
        )

    def relative_to(self, origin: Sequence[int]) -> "Region":
        """Re-express in coordinates local to ``origin``."""
        return self.translate([-o for o in origin])

    # -- iteration -----------------------------------------------------------
    def cells(self) -> Iterator[tuple[int, ...]]:
        """Iterate all lattice cells in row-major order (small regions!)."""
        if self.empty:
            return
        coords = list(self.starts)
        while True:
            yield tuple(coords)
            for d in range(self.rank - 1, -1, -1):
                coords[d] += 1
                if coords[d] < self.stops[d]:
                    break
                coords[d] = self.starts[d]
            else:
                return

    def rows(self) -> Iterator[tuple[tuple[int, ...], int]]:
        """Iterate contiguous innermost-dimension runs.

        Yields ``(start_coords, run_length)`` — the natural unit for
        converting a region to byte extents of a row-major array.
        """
        if self.empty:
            return
        run = self.stops[-1] - self.starts[-1]
        if self.rank == 1:
            yield (self.starts, run)
            return
        outer = Region(self.starts[:-1], self.stops[:-1])
        for coords in outer.cells():
            yield (coords + (self.starts[-1],), run)

    def __repr__(self) -> str:
        bounds = ", ".join(
            f"[{a},{b})" for a, b in zip(self.starts, self.stops)
        )
        return f"Region({bounds})"
