"""HPF-style data distributions: (BLOCK, \\*), (\\*, BLOCK), (BLOCK, BLOCK)...

The array file level of DPFS (§3.3) stores each processor's chunk as one
brick, where chunks follow High Performance Fortran conventions.  This
module computes those chunks.

A distribution spec is one symbol per array dimension:

- ``Dist.BLOCK`` — dimension split into ``ceil(n/p)``-sized contiguous
  blocks over that axis of the processor grid (HPF BLOCK rule; the last
  processor may get a short block),
- ``Dist.STAR`` (``*``) — dimension not distributed,
- ``Dist.CYCLIC`` — round-robin by single index (extension beyond the
  paper's examples; supported for completeness).

``decompose`` returns, for each processor rank (row-major over the
processor grid), the :class:`~repro.hpf.regions.Region` it owns — or a
list of regions for CYCLIC dimensions.
"""

from __future__ import annotations

import math
from enum import Enum
from collections.abc import Sequence

from ..errors import DistributionError
from ..util import ceil_div
from .regions import Region

__all__ = ["Dist", "parse_pattern", "pattern_str", "grid_shape", "decompose", "owned_regions"]


class Dist(Enum):
    """Per-dimension distribution symbol."""

    BLOCK = "BLOCK"
    CYCLIC = "CYCLIC"
    STAR = "*"


def parse_pattern(pattern: str | Sequence[Dist | str]) -> tuple[Dist, ...]:
    """Parse ``"(BLOCK, *)"``, ``["BLOCK", "*"]``... into Dist symbols."""
    if isinstance(pattern, str):
        text = pattern.strip()
        if text.startswith("(") and text.endswith(")"):
            text = text[1:-1]
        parts: Sequence[str] = [p.strip() for p in text.split(",")]
    else:
        parts = list(pattern)  # type: ignore[arg-type]
    symbols: list[Dist] = []
    for part in parts:
        if isinstance(part, Dist):
            symbols.append(part)
            continue
        token = str(part).strip().upper()
        if token in ("*", "STAR"):
            symbols.append(Dist.STAR)
        elif token == "BLOCK":
            symbols.append(Dist.BLOCK)
        elif token == "CYCLIC":
            symbols.append(Dist.CYCLIC)
        else:
            raise DistributionError(f"unknown distribution symbol {part!r}")
    if not symbols:
        raise DistributionError("empty distribution pattern")
    return tuple(symbols)


def pattern_str(pattern: Sequence[Dist]) -> str:
    """Render a pattern back to HPF notation, e.g. ``(BLOCK, *)``."""
    return "(" + ", ".join(
        "*" if p is Dist.STAR else p.value for p in pattern
    ) + ")"


def grid_shape(pattern: Sequence[Dist], nprocs: int) -> tuple[int, ...]:
    """Choose a processor-grid shape matching the pattern.

    Distributed dimensions share the processors as evenly as possible
    (most-square grid, earlier dimensions get the larger factors, as HPF
    compilers conventionally do); STAR dimensions get grid extent 1.
    """
    if nprocs < 1:
        raise DistributionError("need at least one processor")
    distributed = [i for i, p in enumerate(pattern) if p is not Dist.STAR]
    shape = [1] * len(pattern)
    if not distributed:
        if nprocs != 1:
            raise DistributionError(
                "a fully-replicated (*, *, ...) pattern admits only 1 processor"
            )
        return tuple(shape)
    if len(distributed) == 1:
        shape[distributed[0]] = nprocs
        return tuple(shape)
    # Factor nprocs as evenly as possible across the distributed dims.
    remaining = nprocs
    dims_left = len(distributed)
    for position, dim in enumerate(distributed):
        target = round(remaining ** (1.0 / dims_left))
        # find a divisor of `remaining` closest to target (>=1)
        best = 1
        for candidate in range(1, remaining + 1):
            if remaining % candidate == 0 and abs(candidate - target) < abs(best - target):
                best = candidate
        shape[dim] = best
        remaining //= best
        dims_left -= 1
    shape[distributed[-1]] *= remaining if remaining > 1 else 1
    if math.prod(shape) != nprocs:
        raise DistributionError(
            f"cannot factor {nprocs} processors over pattern {pattern_str(pattern)}"
        )
    return tuple(shape)


def _block_bounds(n: int, parts: int, index: int) -> tuple[int, int]:
    """HPF BLOCK rule: block size ceil(n/parts); trailing ranks may be empty."""
    size = ceil_div(n, parts)
    start = min(index * size, n)
    stop = min(start + size, n)
    return start, stop


def decompose(
    shape: Sequence[int],
    pattern: str | Sequence[Dist | str],
    nprocs: int,
    pgrid: Sequence[int] | None = None,
) -> list[Region]:
    """Owned region per rank for BLOCK/STAR patterns.

    Ranks are row-major over the processor grid.  CYCLIC dims are not
    representable as one box — use :func:`owned_regions` for those.
    """
    symbols = parse_pattern(pattern)
    if len(symbols) != len(shape):
        raise DistributionError(
            f"pattern rank {len(symbols)} != array rank {len(shape)}"
        )
    if any(s is Dist.CYCLIC for s in symbols):
        raise DistributionError(
            "decompose() handles BLOCK/* only; use owned_regions() for CYCLIC"
        )
    grid = tuple(pgrid) if pgrid is not None else grid_shape(symbols, nprocs)
    if len(grid) != len(shape):
        raise DistributionError("processor grid rank mismatch")
    if math.prod(grid) != nprocs:
        raise DistributionError(
            f"processor grid {grid} does not hold {nprocs} processors"
        )
    for dim, (symbol, g) in enumerate(zip(symbols, grid)):
        if symbol is Dist.STAR and g != 1:
            raise DistributionError(
                f"dimension {dim} is '*' but grid extent is {g}"
            )

    regions: list[Region] = []
    for rank in range(nprocs):
        coords = []
        rest = rank
        for g in reversed(grid):
            coords.append(rest % g)
            rest //= g
        coords.reverse()
        starts = []
        stops = []
        for n, symbol, g, c in zip(shape, symbols, grid, coords):
            if symbol is Dist.STAR:
                starts.append(0)
                stops.append(n)
            else:
                a, b = _block_bounds(n, g, c)
                starts.append(a)
                stops.append(b)
        regions.append(Region(tuple(starts), tuple(stops)))
    return regions


def owned_regions(
    shape: Sequence[int],
    pattern: str | Sequence[Dist | str],
    nprocs: int,
    rank: int,
    pgrid: Sequence[int] | None = None,
) -> list[Region]:
    """All regions owned by ``rank`` — handles CYCLIC by emitting one
    region per owned index along each cyclic dimension."""
    symbols = parse_pattern(pattern)
    if len(symbols) != len(shape):
        raise DistributionError("pattern rank mismatch")
    if not 0 <= rank < nprocs:
        raise DistributionError(f"rank {rank} outside [0, {nprocs})")
    grid = tuple(pgrid) if pgrid is not None else grid_shape(symbols, nprocs)
    if math.prod(grid) != nprocs:
        raise DistributionError("processor grid does not hold nprocs")

    coords = []
    rest = rank
    for g in reversed(grid):
        coords.append(rest % g)
        rest //= g
    coords.reverse()

    # Per dimension: list of (start, stop) runs owned by this rank.
    per_dim: list[list[tuple[int, int]]] = []
    for n, symbol, g, c in zip(shape, symbols, grid, coords):
        if symbol is Dist.STAR:
            per_dim.append([(0, n)])
        elif symbol is Dist.BLOCK:
            per_dim.append([_block_bounds(n, g, c)])
        else:  # CYCLIC
            per_dim.append([(i, i + 1) for i in range(c, n, g)])

    if any(not runs for runs in per_dim):
        return []  # a cyclic dim with fewer indices than processors

    regions: list[Region] = []
    odometer = [0] * len(per_dim)
    while True:
        starts = tuple(per_dim[d][odometer[d]][0] for d in range(len(per_dim)))
        stops = tuple(per_dim[d][odometer[d]][1] for d in range(len(per_dim)))
        region = Region(starts, stops)
        if not region.empty:
            regions.append(region)
        for d in range(len(per_dim) - 1, -1, -1):
            odometer[d] += 1
            if odometer[d] < len(per_dim[d]):
                break
            odometer[d] = 0
        else:
            return regions
