"""Small shared helpers: byte formatting, extent math, validation.

Extents — ``(offset, length)`` pairs in bytes — are the lingua franca
between the datatype layer, the striping layer and the storage backends,
so the coalescing and arithmetic helpers live here.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = [
    "Extent",
    "coalesce_extents",
    "total_extent_bytes",
    "clip_extent",
    "split_extent",
    "ceil_div",
    "format_bytes",
    "parse_size",
    "require",
    "KiB",
    "MiB",
    "GiB",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: An extent is a half-open byte range ``[offset, offset + length)``.
Extent = tuple[int, int]


def require(condition: bool, exc: type[Exception], message: str) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)


def coalesce_extents(extents: Iterable[Extent]) -> list[Extent]:
    """Sort extents and merge adjacent/overlapping ones.

    This is the optimisation a server applies before touching the disk:
    a combined request whose bricks happen to be contiguous in the
    subfile becomes one sequential I/O.
    """
    ordered = sorted((off, ln) for off, ln in extents if ln > 0)
    merged: list[Extent] = []
    for off, ln in ordered:
        if merged and off <= merged[-1][0] + merged[-1][1]:
            prev_off, prev_len = merged[-1]
            merged[-1] = (prev_off, max(prev_off + prev_len, off + ln) - prev_off)
        else:
            merged.append((off, ln))
    return merged


def total_extent_bytes(extents: Iterable[Extent]) -> int:
    """Total byte count of a list of (possibly uncoalesced) extents."""
    return sum(ln for _off, ln in extents)


def clip_extent(extent: Extent, window: Extent) -> Extent | None:
    """Intersect ``extent`` with ``window``; ``None`` if disjoint."""
    off, ln = extent
    w_off, w_len = window
    lo = max(off, w_off)
    hi = min(off + ln, w_off + w_len)
    if hi <= lo:
        return None
    return (lo, hi - lo)


def split_extent(extent: Extent, chunk: int) -> list[Extent]:
    """Split an extent into pieces of at most ``chunk`` bytes."""
    require(chunk > 0, ValueError, "chunk must be positive")
    off, ln = extent
    out: list[Extent] = []
    while ln > 0:
        take = min(chunk, ln)
        out.append((off, take))
        off += take
        ln -= take
    return out


_UNITS = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]


def format_bytes(n: int | float) -> str:
    """Human-readable byte count (``format_bytes(2097152) == '2.0 MiB'``)."""
    if n < 0:
        return "-" + format_bytes(-n)
    if n < 1024:
        return f"{int(n)} B"
    exp = min(int(math.log(n, 1024)), len(_UNITS) - 1)
    return f"{n / 1024 ** exp:.1f} {_UNITS[exp]}"


_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}


def parse_size(text: str) -> int:
    """Parse ``'64K'``, ``'4MiB'``, ``'123'`` ... into a byte count."""
    s = text.strip().lower()
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit() and s[idx - 1] != ".":
        idx -= 1
    num, suffix = s[:idx], s[idx:].strip()
    if not num or suffix not in _SUFFIXES:
        raise ValueError(f"unparsable size: {text!r}")
    value = float(num) * _SUFFIXES[suffix]
    if value != int(value):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(value)


def row_major_index(coords: Sequence[int], shape: Sequence[int]) -> int:
    """Flatten N-d ``coords`` into a row-major linear index."""
    if len(coords) != len(shape):
        raise ValueError("coords/shape rank mismatch")
    idx = 0
    for c, s in zip(coords, shape):
        if not 0 <= c < s:
            raise ValueError(f"coordinate {coords} out of bounds for shape {shape}")
        idx = idx * s + c
    return idx


def row_major_coords(index: int, shape: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`row_major_index`."""
    size = math.prod(shape)
    if not 0 <= index < size:
        raise ValueError(f"index {index} out of bounds for shape {shape}")
    coords = []
    for s in reversed(shape):
        coords.append(index % s)
        index //= s
    return tuple(reversed(coords))
