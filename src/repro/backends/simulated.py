"""Simulated storage backend: functional I/O plus a simulated clock.

Bytes are stored in memory (so reads return real data), while every
operation is also *priced* on the discrete-event models of
:mod:`repro.netsim` — a sequential client's view of the paper's
hardware.  ``fs.backend.clock`` then tells you the simulated seconds a
workload would have cost, which the examples use to contrast striping
choices without running the full §8 harness.

Operations are priced one at a time (the caller is a single synchronous
client); for multi-client contention experiments use
:mod:`repro.perf`, which simulates all ranks concurrently.

Pricing runs under a lock so the backend tolerates the parallel
dispatch layer's concurrent workers (the DES environment itself is
single-threaded).  With ``realtime_scale`` set, each operation also
*sleeps* its simulated duration scaled by that factor, outside the
lock — so concurrently dispatched requests to different servers overlap
in wall-clock time, which is what the dispatch benchmarks measure.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence

from ..errors import FileSystemError
from ..netsim.classes import StorageClassParams, build_topology
from ..netsim.node import CostParams, WireRequest, serve_request
from ..sim import Environment
from ..util import Extent, coalesce_extents
from .base import ServerInfo, StorageBackend
from .memory import MemoryBackend

__all__ = ["SimulatedBackend"]


class SimulatedBackend(StorageBackend):
    """Memory-backed data + DES-priced timing."""

    def __init__(
        self,
        classes: Sequence[StorageClassParams],
        costs: CostParams | None = None,
        *,
        realtime_scale: float = 0.0,
    ) -> None:
        if not classes:
            raise FileSystemError("need at least one server")
        if realtime_scale < 0:
            raise FileSystemError("realtime_scale must be >= 0")
        self.classes = list(classes)
        self.costs = costs or CostParams()
        self.realtime_scale = realtime_scale
        self._price_lock = threading.Lock()
        self.env = Environment()
        self.sim_servers = build_topology(self.env, self.classes)
        self._store = MemoryBackend(
            len(self.classes),
            performance=[c.performance for c in self.classes],
            names=[f"sim:c{c.class_id}.s{i}" for i, c in enumerate(self.classes)],
        )

    @property
    def clock(self) -> float:
        """Simulated seconds consumed so far."""
        return self.env.now

    @property
    def servers(self) -> list[ServerInfo]:
        return self._store.servers

    # -- pricing -----------------------------------------------------------
    def _price(self, server: int, extents: Sequence[Extent], *, is_read: bool) -> None:
        merged = tuple(coalesce_extents(extents))
        nbytes = sum(ln for _o, ln in merged)
        request = WireRequest(
            server=server, extents=merged, transfer_bytes=nbytes, is_read=is_read
        )
        with self._price_lock:
            start = self.env.now
            proc = self.env.process(
                serve_request(self.env, self.sim_servers[server], request, self.costs)
            )
            self.env.run(until=proc)
            duration = self.env.now - start
        if self.realtime_scale:
            # replay the priced duration in wall time, outside the lock,
            # so concurrent dispatch to independent servers overlaps
            time.sleep(duration * self.realtime_scale)

    # -- lifecycle (un-priced metadata ops) ----------------------------------
    def create_subfile(self, server: int, name: str) -> None:
        self._store.create_subfile(server, name)

    def delete_subfile(self, server: int, name: str) -> None:
        self._store.delete_subfile(server, name)

    def subfile_exists(self, server: int, name: str) -> bool:
        return self._store.subfile_exists(server, name)

    def rename_subfile(self, server: int, old: str, new: str) -> None:
        self._store.rename_subfile(server, old, new)

    def list_subfiles(self, server: int) -> list[str]:
        return self._store.list_subfiles(server)

    def subfile_size(self, server: int, name: str) -> int:
        return self._store.subfile_size(server, name)

    # -- priced I/O -----------------------------------------------------------
    def read_extents(
        self, server: int, name: str, extents: Sequence[Extent]
    ) -> bytes:
        data = self._store.read_extents(server, name, extents)
        self._price(server, extents, is_read=True)
        return data

    def write_extents(
        self, server: int, name: str, extents: Sequence[Extent], data: bytes
    ) -> None:
        self._store.write_extents(server, name, extents, data)
        self._price(server, extents, is_read=False)
