"""In-memory storage backend (tests, examples, quick experiments)."""

from __future__ import annotations

import threading
from collections.abc import Sequence

from ..errors import FileSystemError
from ..util import Extent
from .base import ServerInfo, StorageBackend

__all__ = ["MemoryBackend"]


class MemoryBackend(StorageBackend):
    """Each server is a dict of subfile name → bytearray."""

    def __init__(
        self,
        n_servers: int,
        *,
        capacity: int = 1 << 30,
        performance: Sequence[float] | None = None,
        names: Sequence[str] | None = None,
    ) -> None:
        if n_servers < 1:
            raise FileSystemError("need at least one server")
        perf = list(performance) if performance is not None else [1.0] * n_servers
        if len(perf) != n_servers:
            raise FileSystemError("performance list length mismatch")
        if names is None:
            names = [f"mem{i}" for i in range(n_servers)]
        if len(names) != n_servers:
            raise FileSystemError("names list length mismatch")
        self._servers = [
            ServerInfo(name=names[i], capacity=capacity, performance=perf[i])
            for i in range(n_servers)
        ]
        self._store: list[dict[str, bytearray]] = [dict() for _ in range(n_servers)]
        # one lock per server: extents from concurrent dispatch workers
        # may interleave on the same subfile (the grow-then-assign in
        # write_extents is not atomic), mirroring the real server's
        # per-device I/O serialization
        self._io_locks = [threading.Lock() for _ in range(n_servers)]

    @property
    def servers(self) -> list[ServerInfo]:
        return list(self._servers)

    # -- lifecycle ---------------------------------------------------------
    def create_subfile(self, server: int, name: str) -> None:
        self._check_server(server)
        self._store[server].setdefault(name, bytearray())

    def delete_subfile(self, server: int, name: str) -> None:
        self._check_server(server)
        self._store[server].pop(name, None)

    def subfile_exists(self, server: int, name: str) -> bool:
        self._check_server(server)
        return name in self._store[server]

    def rename_subfile(self, server: int, old: str, new: str) -> None:
        self._check_server(server)
        blob = self._store[server].pop(old, None)
        if blob is not None:
            self._store[server][new] = blob

    def list_subfiles(self, server: int) -> list[str]:
        self._check_server(server)
        return sorted(self._store[server])

    def subfile_size(self, server: int, name: str) -> int:
        self._check_server(server)
        try:
            return len(self._store[server][name])
        except KeyError:
            raise FileSystemError(
                f"no subfile {name!r} on server {server}"
            ) from None

    # -- I/O ---------------------------------------------------------------
    def read_extents(
        self, server: int, name: str, extents: Sequence[Extent]
    ) -> bytes:
        self._check_server(server)
        with self._io_locks[server]:
            blob = self._store[server].get(name)
            if blob is None:
                raise FileSystemError(f"no subfile {name!r} on server {server}")
            out = bytearray()
            size = len(blob)
            for off, ln in extents:
                if off < 0 or ln < 0:
                    raise FileSystemError(f"invalid extent ({off}, {ln})")
                chunk = bytes(blob[off : min(off + ln, size)])
                if len(chunk) < ln:                   # sparse tail → zeros
                    chunk += b"\x00" * (ln - len(chunk))
                out += chunk
            return bytes(out)

    def write_extents(
        self, server: int, name: str, extents: Sequence[Extent], data: bytes
    ) -> None:
        self._check_server(server)
        self._check_payload(extents, data)
        with self._io_locks[server]:
            blob = self._store[server].get(name)
            if blob is None:
                raise FileSystemError(f"no subfile {name!r} on server {server}")
            pos = 0
            for off, ln in extents:
                if off < 0 or ln < 0:
                    raise FileSystemError(f"invalid extent ({off}, {ln})")
                end = off + ln
                if end > len(blob):
                    blob.extend(b"\x00" * (end - len(blob)))
                blob[off:end] = data[pos : pos + ln]
                pos += ln
