"""Storage backend interface.

A backend is the set of DPFS *servers* (I/O nodes).  Each server stores
*subfiles* — the per-server local files holding a DPFS file's bricks —
and services extent-list reads/writes against them (§2: "as long as the
server receives the request, it uses the local file system API to
actually perform I/O").

Four implementations:

========== =================================================================
memory     dict-backed, for tests and examples
local      one directory per server on the local file system
remote     real TCP connections to ``dpfs server`` processes (:mod:`repro.net`)
simulated  discrete-event timing model (no real bytes) for the §8 evaluation
========== =================================================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Sequence

from ..errors import FileSystemError
from ..util import Extent, total_extent_bytes

__all__ = ["ServerInfo", "StorageBackend"]


@dataclass(frozen=True)
class ServerInfo:
    """What the DPFS-SERVER metadata table records about one I/O node."""

    name: str
    capacity: int          # bytes available
    performance: float     # normalized brick access time (fastest = 1)


class StorageBackend(ABC):
    """Abstract DPFS server pool."""

    #: Whether :meth:`read_extents`/:meth:`write_extents` may be called
    #: concurrently from multiple threads (the parallel dispatch layer
    #: does).  Backends that cannot tolerate that set this False and the
    #: file system drives them with one worker.
    parallel_safe: bool = True

    @property
    @abstractmethod
    def servers(self) -> list[ServerInfo]:
        """Static description of every server, index = server id."""

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    # -- subfile lifecycle -------------------------------------------------
    @abstractmethod
    def create_subfile(self, server: int, name: str) -> None:
        """Create an empty subfile (idempotent)."""

    @abstractmethod
    def delete_subfile(self, server: int, name: str) -> None:
        """Remove a subfile (idempotent)."""

    @abstractmethod
    def subfile_exists(self, server: int, name: str) -> bool:
        ...

    @abstractmethod
    def rename_subfile(self, server: int, old: str, new: str) -> None:
        """Rename a subfile.

        The in-process backends treat a missing old name as a no-op;
        the TCP server raises (surfacing metadata/storage divergence),
        which the remote backend maps to :class:`FileSystemError`.
        """

    @abstractmethod
    def list_subfiles(self, server: int) -> list[str]:
        """Names of every subfile on one server (fsck support)."""

    @abstractmethod
    def subfile_size(self, server: int, name: str) -> int:
        """Current physical size in bytes."""

    # -- I/O ---------------------------------------------------------------
    @abstractmethod
    def read_extents(
        self, server: int, name: str, extents: Sequence[Extent]
    ) -> bytes:
        """Read the given subfile extents, concatenated in list order.

        Reading past the current physical end returns zero bytes for the
        missing tail (sparse-file semantics — bricks are materialised
        lazily on first write).
        """

    @abstractmethod
    def write_extents(
        self, server: int, name: str, extents: Sequence[Extent], data: bytes
    ) -> None:
        """Write ``data`` across the given extents in list order,
        extending the subfile as needed."""

    # -- shared validation --------------------------------------------------
    def _check_server(self, server: int) -> None:
        if not 0 <= server < self.n_servers:
            raise FileSystemError(
                f"server {server} outside [0, {self.n_servers})"
            )

    @staticmethod
    def _check_payload(extents: Sequence[Extent], data: bytes) -> None:
        need = total_extent_bytes(extents)
        if need != len(data):
            raise FileSystemError(
                f"extent list covers {need} bytes but payload is {len(data)}"
            )

    # -- optional hooks -----------------------------------------------------
    def server_health(self, server: int) -> int:
        """Health of one server: 2 = UP, 1 = DEGRADED, 0 = DOWN.

        In-process backends are always UP; the TCP backend overrides
        this from its connection pools so replicated reads can prefer
        healthy copies.  Values match :class:`repro.net.client.ServerHealth`.
        """
        return 2

    def close(self) -> None:
        """Release resources (network connections...)."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
