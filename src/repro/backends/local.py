"""Directory-backed storage backend.

Each DPFS server is a directory on the local machine; subfiles are
regular files inside it.  This mirrors the paper's deployment — the
DPFS server "is built on top of the local file system of each storage
resource ... and can take advantage of I/O optimizations such as
caching and prefetching of the local file system" — collapsed onto one
host for reproducibility.

Subfile names (DPFS paths like ``/home/xhshen/dpfs.test``) are escaped
into flat file names.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from collections.abc import Sequence

from ..errors import FileSystemError
from ..util import Extent
from .base import ServerInfo, StorageBackend

__all__ = ["LocalBackend", "escape_subfile_name", "unescape_subfile_name"]


def escape_subfile_name(name: str) -> str:
    """Escape a DPFS path into a safe flat file name.

    ``%`` escapes itself so the mapping is injective:
    ``/a/b`` → ``%2Fa%2Fb``-style but readable: we use ``__`` for ``/``
    and ``%`` escapes for the two metacharacters.
    """
    out = []
    for ch in name:
        if ch == "%":
            out.append("%25")
        elif ch == "/":
            out.append("%2F")
        elif ch == "\x00":
            raise FileSystemError("NUL byte in subfile name")
        else:
            out.append(ch)
    return "".join(out) or "%empty"


def unescape_subfile_name(name: str) -> str:
    """Inverse of :func:`escape_subfile_name`."""
    if name == "%empty":
        return ""
    out = []
    i = 0
    while i < len(name):
        if name.startswith("%2F", i):
            out.append("/")
            i += 3
        elif name.startswith("%25", i):
            out.append("%")
            i += 3
        else:
            out.append(name[i])
            i += 1
    return "".join(out)


class LocalBackend(StorageBackend):
    """Servers are subdirectories ``server_0 .. server_{n-1}`` of a root."""

    def __init__(
        self,
        root: str | os.PathLike[str],
        n_servers: int,
        *,
        capacity: int = 1 << 30,
        performance: Sequence[float] | None = None,
    ) -> None:
        if n_servers < 1:
            raise FileSystemError("need at least one server")
        perf = list(performance) if performance is not None else [1.0] * n_servers
        if len(perf) != n_servers:
            raise FileSystemError("performance list length mismatch")
        self.root = Path(root)
        self._dirs = [self.root / f"server_{i}" for i in range(n_servers)]
        for d in self._dirs:
            d.mkdir(parents=True, exist_ok=True)
        self._servers = [
            ServerInfo(
                name=f"local:{self._dirs[i].name}",
                capacity=capacity,
                performance=perf[i],
            )
            for i in range(n_servers)
        ]

    @property
    def servers(self) -> list[ServerInfo]:
        return list(self._servers)

    def _path(self, server: int, name: str) -> Path:
        self._check_server(server)
        return self._dirs[server] / escape_subfile_name(name)

    # -- lifecycle -----------------------------------------------------------
    def create_subfile(self, server: int, name: str) -> None:
        self._path(server, name).touch()

    def delete_subfile(self, server: int, name: str) -> None:
        path = self._path(server, name)
        if path.exists():
            path.unlink()

    def subfile_exists(self, server: int, name: str) -> bool:
        return self._path(server, name).exists()

    def rename_subfile(self, server: int, old: str, new: str) -> None:
        src = self._path(server, old)
        if src.exists():
            src.replace(self._path(server, new))

    def list_subfiles(self, server: int) -> list[str]:
        self._check_server(server)
        return sorted(
            unescape_subfile_name(p.name)
            for p in self._dirs[server].iterdir()
            if p.is_file()
        )

    def subfile_size(self, server: int, name: str) -> int:
        path = self._path(server, name)
        if not path.exists():
            raise FileSystemError(f"no subfile {name!r} on server {server}")
        return path.stat().st_size

    # -- I/O -----------------------------------------------------------------
    def read_extents(
        self, server: int, name: str, extents: Sequence[Extent]
    ) -> bytes:
        path = self._path(server, name)
        if not path.exists():
            raise FileSystemError(f"no subfile {name!r} on server {server}")
        out = bytearray()
        with open(path, "rb") as fh:
            size = os.fstat(fh.fileno()).st_size
            for off, ln in extents:
                if off < 0 or ln < 0:
                    raise FileSystemError(f"invalid extent ({off}, {ln})")
                if off < size:
                    fh.seek(off)
                    chunk = fh.read(min(ln, size - off))
                else:
                    chunk = b""
                if len(chunk) < ln:                   # sparse tail → zeros
                    chunk += b"\x00" * (ln - len(chunk))
                out += chunk
        return bytes(out)

    def write_extents(
        self, server: int, name: str, extents: Sequence[Extent], data: bytes
    ) -> None:
        path = self._path(server, name)
        if not path.exists():
            raise FileSystemError(f"no subfile {name!r} on server {server}")
        self._check_payload(extents, data)
        pos = 0
        with open(path, "r+b") as fh:
            for off, ln in extents:
                if off < 0 or ln < 0:
                    raise FileSystemError(f"invalid extent ({off}, {ln})")
                fh.seek(off)
                fh.write(data[pos : pos + ln])
                pos += ln

    # -- extras ----------------------------------------------------------------
    def wipe(self) -> None:
        """Delete every subfile on every server (format helper)."""
        for d in self._dirs:
            shutil.rmtree(d)
            d.mkdir(parents=True, exist_ok=True)
